//! `clara` — command-line offloading-insight tool.
//!
//! ```console
//! $ clara list                         # show the NF corpus
//! $ clara analyze mazunat              # full insight bundle for one NF
//! $ clara analyze cmsketch --small-flows --packets 4000
//! $ clara ir iplookup                  # print the NF's IR
//! $ clara asm iplookup                 # print the vendor compiler output
//! $ clara sweep mazunat                # core-count sweep table
//! $ clara cache-verify                 # check CLARA_CACHE_DIR artifacts
//! ```

use clara_repro::clara::{Clara, ClaraConfig, ClaraError};
use clara_repro::click::NfElement;
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::obs;
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn pool() -> Vec<NfElement> {
    clara_repro::click::extended_corpus()
}

fn find(name: &str) -> NfElement {
    pool()
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown element `{name}`; run `clara list`");
            std::process::exit(2);
        })
}

fn usage() -> ! {
    eprintln!("usage: clara <list|analyze|ir|asm|sweep|cache-verify> [element] [options]");
    eprintln!(
        "  options: --small-flows  --packets N  --seed N  --cores N  --model FILE  \
         --report FILE"
    );
    eprintln!(
        "  environment: CLARA_THREADS=N  CLARA_CACHE_DIR=DIR  \
         CLARA_FAULTS=<seed>:<rate>[:<depth>]  CLARA_REPORT=FILE"
    );
    eprintln!(
        "  exit codes: 0 success, 1 other errors, 2 usage, 3 degraded run \
         (engine tasks failed permanently), 4 cache corruption, 5 I/O failure"
    );
    std::process::exit(2);
}

struct Opts {
    small_flows: bool,
    packets: usize,
    seed: u64,
    cores: Option<u32>,
    model: Option<String>,
    report: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        small_flows: false,
        packets: 3000,
        seed: 42,
        cores: None,
        model: None,
        // The CLARA_REPORT environment variable arms the sink too.
        report: obs::sink_from_env(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small-flows" => o.small_flows = true,
            "--packets" => {
                o.packets = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                o.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cores" => {
                o.cores = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--model" => o.model = it.next().cloned().or_else(|| usage()),
            "--report" => o.report = it.next().cloned().or_else(|| usage()),
            _ => usage(),
        }
    }
    o
}

fn trace_of(o: &Opts) -> Trace {
    let spec = if o.small_flows {
        WorkloadSpec::small_flows().with_flows(8192)
    } else {
        WorkloadSpec::large_flows()
    };
    Trace::generate(&spec, o.packets, o.seed)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("clara: error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), ClaraError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    match cmd {
        "list" => {
            println!("{:<14} {:<6} DESCRIPTION", "NAME", "STATE");
            for e in pool() {
                println!(
                    "{:<14} {:<6} {}",
                    e.name(),
                    if e.meta.stateful { "yes" } else { "no" },
                    e.meta.description
                );
            }
        }
        "ir" => {
            let (name, _) = rest.split_first().unwrap_or_else(|| usage());
            print!("{}", clara_repro::ir::print::module(&find(name).module));
        }
        "asm" => {
            let (name, _) = rest.split_first().unwrap_or_else(|| usage());
            let nic = clara_repro::nfcc::compile_module(&find(name).module);
            print!("{}", clara_repro::nfcc::print_asm(nic.handler()));
        }
        "sweep" => {
            let (name, opt_args) = rest.split_first().unwrap_or_else(|| usage());
            let o = parse_opts(opt_args);
            let e = find(name);
            let trace = trace_of(&o);
            let cfg = nicsim::NicConfig::default();
            let wp =
                nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
            println!(
                "{:>5} {:>10} {:>12} {:>8}",
                "cores", "Mpps", "latency(us)", "ratio"
            );
            for c in [1u32, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 60] {
                let p = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), c);
                println!(
                    "{c:>5} {:>10.2} {:>12.2} {:>8.3}",
                    p.throughput_mpps,
                    p.latency_us,
                    p.ratio()
                );
            }
        }
        "analyze" => {
            let (name, opt_args) = rest.split_first().unwrap_or_else(|| usage());
            let o = parse_opts(opt_args);
            if o.report.is_some() {
                obs::enable();
            }
            let e = find(name);
            let trace = trace_of(&o);
            // Reuse a previously trained pipeline when --model points at
            // an existing file; train (and save) otherwise.
            let clara = match &o.model {
                Some(path) if std::path::Path::new(path).exists() => {
                    eprintln!("loading trained model from {path}...");
                    Clara::load(path)?
                }
                other => {
                    eprintln!("training Clara (one-time, ~a minute in release mode)...");
                    let c = Clara::train(&ClaraConfig::fast(o.seed))?;
                    if let Some(path) = other {
                        if let Err(e) = c.save(path) {
                            eprintln!("warning: could not save model to {path}: {e}");
                        } else {
                            eprintln!("saved trained model to {path}");
                        }
                    }
                    c
                }
            };
            let insights = clara.analyze(&e.module, &trace)?;
            println!("== insights for `{}` ==", e.name());
            println!(
                "predicted compute instructions/packet: {:.0}",
                insights.predicted_compute
            );
            println!(
                "counted memory accesses: {} ({:.1}% fidelity)",
                insights.counted_mem, insights.mem_count_accuracy
            );
            match &insights.accel {
                Some((c, region)) => {
                    println!("accelerator: {} over blocks {:?}", c.name(), region)
                }
                None => println!("accelerator: none identified"),
            }
            println!("suggested cores: {}", insights.suggested_cores);
            for (g, l) in &insights.placement {
                println!(
                    "place {} -> {}",
                    e.module.global(*g).map_or("?", |d| d.name.as_str()),
                    l.name()
                );
            }
            for (i, cl) in insights.coalesce.clusters.iter().enumerate() {
                let names: Vec<&str> = cl
                    .iter()
                    .map(|(g, _)| e.module.global(*g).map_or("?", |d| d.name.as_str()))
                    .collect();
                println!("pack cluster {i}: {}", names.join(" + "));
            }
            let cores = o.cores.unwrap_or(insights.suggested_cores);
            let naive =
                nicsim::simulate(&e.module, &trace, &PortConfig::naive(), &clara.nic, cores);
            let tuned = nicsim::simulate(
                &e.module,
                &trace,
                &insights.port_config(),
                &clara.nic,
                cores,
            );
            println!(
                "at {cores} cores: naive {:.2} Mpps / {:.2} us -> Clara {:.2} Mpps / {:.2} us",
                naive.throughput_mpps, naive.latency_us, tuned.throughput_mpps, tuned.latency_us
            );
            if let Some(raw) = &o.report {
                let path = obs::resolve_sink(raw, "clara_cli.json");
                match obs::RunReport::capture().write(&path) {
                    Ok(()) => eprintln!("run report written to {}", path.display()),
                    Err(e) => eprintln!(
                        "warning: could not write run report to {}: {e}",
                        path.display()
                    ),
                }
            }
        }
        "cache-verify" => {
            let engine = clara_repro::clara::engine::Engine::new();
            match engine.verify_disk_cache()? {
                None => {
                    eprintln!(
                        "no persistent cache configured; set CLARA_CACHE_DIR to enable one"
                    );
                }
                Some(summary) => {
                    println!(
                        "scanned {} artifact(s): {} valid, {} corrupt",
                        summary.scanned,
                        summary.valid,
                        summary.corrupt.len()
                    );
                    for (path, detail) in &summary.corrupt {
                        eprintln!("  corrupt: {}: {detail}", path.display());
                    }
                    if let Some(err) = summary.into_error() {
                        return Err(err);
                    }
                }
            }
        }
        _ => usage(),
    }
    Ok(())
}
