//! `clara` — command-line offloading-insight tool.
//!
//! ```console
//! $ clara list                         # show the NF corpus
//! $ clara corpus                       # corpus inventory as JSON (state class, tables, accel hits)
//! $ clara backends                     # show the built-in device manifests + accelerator menus
//! $ clara analyze mazunat              # full insight bundle for one NF
//! $ clara analyze cmsketch --small-flows --packets 4000
//! $ clara analyze nat --backend dpu-offpath   # insights for another device
//! $ clara analyze nat --backend all    # cross-device prediction deltas
//! $ clara ir iplookup                  # print the NF's IR
//! $ clara asm iplookup                 # print the vendor compiler output
//! $ clara sweep mazunat                # core-count sweep table
//! $ clara cache-verify                 # check CLARA_CACHE_DIR artifacts
//! $ clara difftest --seeds 500         # differential semantics oracle
//! $ clara predict cmsketch             # one-shot performance prediction
//! $ clara predict cmsketch --precision q16   # fixed-point fast path
//! $ clara place firewall,nat           # traffic-aware placement plan
//! $ clara place nat --replay shift --epochs 6   # drift-driven re-planning
//! $ clara quantcheck                   # q16-vs-f64 tolerance oracle
//! $ clara serve --addr 127.0.0.1:4117  # batched NF-analysis daemon
//! $ clara bench-serve --requests 300   # load-generate against the daemon
//! ```

use clara_repro::clara::{Clara, ClaraConfig, ClaraError, Precision};
use clara_repro::click::NfElement;
use clara_repro::hal::{self, Backend as _, DeviceBackend};
use clara_repro::serve;
use clara_repro::nicsim::{self, PortConfig};
use clara_repro::obs;
use clara_repro::trafgen::{Trace, WorkloadSpec};

fn pool() -> Vec<NfElement> {
    clara_repro::click::extended_corpus()
}

fn find(name: &str) -> NfElement {
    pool()
        .into_iter()
        .find(|e| e.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown element `{name}`; run `clara list`");
            std::process::exit(2);
        })
}

fn usage() -> ! {
    eprintln!(
        "usage: clara <list|corpus|backends|analyze|predict|place|ir|asm|sweep|cache-verify|\
         difftest|quantcheck|serve|bench-serve> [element] [options]"
    );
    eprintln!(
        "  options: --small-flows  --packets N  --seed N  --cores N  --model FILE  \
         --report FILE  --backend NAME|all  --precision f64|q16"
    );
    eprintln!(
        "  place: NF[,NF...]  --packets N  --seed N  --small-flows  --backend NAME|FILE.toml  \
         --precision f64|q16  --objective throughput|host-cores  --replay steady|shift|burst|churn  \
         --epochs N  --drift-threshold X  --model FILE  --report FILE"
    );
    eprintln!(
        "  difftest: --seeds N  --start N  --packets N  --artifacts DIR  --no-shrink  \
         --smoke  --inject  --replay FILE  --backends all|A,B,..."
    );
    eprintln!(
        "  quantcheck: --model FILE  --packets N  --seed N  --reps N  \
         --require-speedup X  --artifacts DIR"
    );
    eprintln!(
        "  serve: --addr HOST:PORT  --transport tcp|uds|both  --uds PATH  --workers N  \
         --queue-cap N  --batch-max N  --deadline-ms N  --model FILE  --seed N  \
         --backends all|A,B,...  --precision f64|q16"
    );
    eprintln!(
        "  bench-serve: --addr HOST:PORT  --transport tcp|uds  --uds PATH  --requests N  \
         --conns N  --nf NAME  --packets N  --seed N  --burst N  --burst-packets N  \
         --baseline N  --model FILE  --require-speedup X  --drain  --report FILE  \
         --backend NAME  --precision f64|q16  --place-every N  --tenants N  --quota N  \
         --fairness  --matrix  --backends all|A,B,...  --require-uds-win"
    );
    eprintln!(
        "  environment: CLARA_THREADS=N  CLARA_CACHE_DIR=DIR  \
         CLARA_FAULTS=<seed>:<rate>[:<depth>]  CLARA_REPORT=FILE"
    );
    eprintln!(
        "  exit codes: 0 success, 1 other errors, 2 usage, 3 degraded run \
         (engine tasks failed permanently), 4 cache corruption, 5 I/O failure, \
         6 difftest divergence, 7 serve/bench failure, 8 invalid manifest or \
         unknown backend, 9 quantization tolerance violation, 10 infeasible \
         placement / solver timeout / unknown NF in a placement request"
    );
    std::process::exit(2);
}

/// Reuses a previously trained pipeline when `model` points at an
/// existing file; trains (and saves, when a path was given) otherwise.
fn load_or_train(model: &Option<String>, seed: u64) -> Result<Clara, ClaraError> {
    match model {
        Some(path) if std::path::Path::new(path).exists() => {
            eprintln!("loading trained model from {path}...");
            Clara::load(path)
        }
        other => {
            eprintln!("training Clara (one-time, ~a minute in release mode)...");
            let c = Clara::train(&ClaraConfig::fast(seed))?;
            if let Some(path) = other {
                if let Err(e) = c.save(path) {
                    eprintln!("warning: could not save model to {path}: {e}");
                } else {
                    eprintln!("saved trained model to {path}");
                }
            }
            Ok(c)
        }
    }
}

struct Opts {
    small_flows: bool,
    packets: usize,
    seed: u64,
    cores: Option<u32>,
    model: Option<String>,
    report: Option<String>,
    backend: Option<String>,
    precision: Option<Precision>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        small_flows: false,
        packets: 3000,
        seed: 42,
        cores: None,
        model: None,
        // The CLARA_REPORT environment variable arms the sink too.
        report: obs::sink_from_env(),
        backend: None,
        precision: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--small-flows" => o.small_flows = true,
            "--packets" => {
                o.packets = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                o.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--cores" => {
                o.cores = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--model" => o.model = it.next().cloned().or_else(|| usage()),
            "--report" => o.report = it.next().cloned().or_else(|| usage()),
            "--backend" => o.backend = it.next().cloned().or_else(|| usage()),
            "--precision" => o.precision = Some(parse_precision(it.next())),
            _ => usage(),
        }
    }
    o
}

/// Parses `--precision f64|q16` (usage exit on anything else).
fn parse_precision(arg: Option<&String>) -> Precision {
    match arg.map(|s| Precision::parse(s)) {
        Some(Ok(p)) => p,
        _ => usage(),
    }
}

fn trace_of(o: &Opts) -> Trace {
    let spec = if o.small_flows {
        WorkloadSpec::small_flows().with_flows(8192)
    } else {
        WorkloadSpec::large_flows()
    };
    Trace::generate(&spec, o.packets, o.seed)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("clara: error: {e}");
        std::process::exit(e.exit_code());
    }
}

fn run() -> Result<(), ClaraError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    match cmd {
        "list" => {
            println!("{:<14} {:<6} DESCRIPTION", "NAME", "STATE");
            for e in pool() {
                println!(
                    "{:<14} {:<6} {}",
                    e.name(),
                    if e.meta.stateful { "yes" } else { "no" },
                    e.meta.description
                );
            }
        }
        "ir" => {
            let (name, _) = rest.split_first().unwrap_or_else(|| usage());
            print!("{}", clara_repro::ir::print::module(&find(name).module));
        }
        "asm" => {
            let (name, _) = rest.split_first().unwrap_or_else(|| usage());
            let nic = clara_repro::nfcc::compile_module(&find(name).module);
            print!("{}", clara_repro::nfcc::print_asm(nic.handler()));
        }
        "sweep" => {
            let (name, opt_args) = rest.split_first().unwrap_or_else(|| usage());
            let o = parse_opts(opt_args);
            let e = find(name);
            let trace = trace_of(&o);
            let cfg = nicsim::NicConfig::default();
            let wp =
                nicsim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
            println!(
                "{:>5} {:>10} {:>12} {:>8}",
                "cores", "Mpps", "latency(us)", "ratio"
            );
            for c in [1u32, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 60] {
                let p = nicsim::solve_perf(&wp, &cfg, &PortConfig::naive(), c);
                println!(
                    "{c:>5} {:>10.2} {:>12.2} {:>8.3}",
                    p.throughput_mpps,
                    p.latency_us,
                    p.ratio()
                );
            }
        }
        "backends" => {
            println!(
                "{:<14} {:<9} {:>5} {:>8} {:>6} {:<38} DESCRIPTION",
                "NAME", "CLASS", "CORES", "FREQ", "PORTS", "ACCELERATORS"
            );
            for b in hal::builtins() {
                let m = b.manifest();
                let menu = m
                    .menu()
                    .iter()
                    .map(|(_, v)| *v)
                    .collect::<Vec<_>>()
                    .join(",");
                println!(
                    "{:<14} {:<9} {:>5} {:>7.2}G {:>6} {:<38} {}",
                    b.name(),
                    m.class.as_str(),
                    m.cores,
                    m.freq_ghz,
                    m.ports.len(),
                    menu,
                    m.description
                );
            }
        }
        "corpus" => {
            // Deterministic machine-readable corpus inventory: state
            // class, table geometry, and catalog-variant hits per NF.
            // Hand-formatted so field order never depends on map
            // iteration order.
            println!("{{\"corpus\":[");
            let elems = pool();
            for (i, e) in elems.iter().enumerate() {
                let class = if e
                    .module
                    .globals
                    .iter()
                    .any(|g| g.kind == clara_repro::ir::StateKind::FlowTable)
                {
                    "flow-state"
                } else if e.meta.stateful {
                    "static-state"
                } else {
                    "stateless"
                };
                let state_bytes: u64 = e
                    .module
                    .globals
                    .iter()
                    .map(|g| u64::from(g.entry_bytes) * u64::from(g.entries))
                    .sum();
                let tables = e
                    .module
                    .globals
                    .iter()
                    .map(|g| {
                        let flow = g.flow.map_or(String::new(), |f| {
                            format!(
                                ",\"idle\":{},\"hard\":{},\"evict\":\"{}\"",
                                f.idle_timeout,
                                f.hard_timeout,
                                f.evict.name()
                            )
                        });
                        format!(
                            "{{\"name\":\"{}\",\"kind\":\"{}\",\"entry_bytes\":{},\"entries\":{}{}}}",
                            g.name,
                            g.kind.name(),
                            g.entry_bytes,
                            g.entries,
                            flow
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let hits = clara_repro::clara::algid::match_catalog(&e.module)
                    .iter()
                    .map(|v| format!("\"{}\"", v.name))
                    .collect::<Vec<_>>()
                    .join(",");
                let comma = if i + 1 < elems.len() { "," } else { "" };
                println!(
                    "{{\"name\":\"{}\",\"state_class\":\"{class}\",\"state_bytes\":{state_bytes},\
                     \"tables\":[{tables}],\"accel_hits\":[{hits}]}}{comma}",
                    e.name()
                );
            }
            println!("]}}");
        }
        "analyze" => {
            let (name, opt_args) = rest.split_first().unwrap_or_else(|| usage());
            let o = parse_opts(opt_args);
            if o.report.is_some() {
                obs::enable();
            }
            let e = find(name);
            let trace = trace_of(&o);
            let clara = load_or_train(&o.model, o.seed)?;
            if o.backend.as_deref() == Some("all") {
                analyze_all_backends(&clara, &e, &trace)?;
                write_report(&o.report);
                return Ok(());
            }
            let backend = match &o.backend {
                None => None,
                Some(name) => Some(resolve_backend(name)?),
            };
            let precision = o.precision.unwrap_or(clara.precision);
            let insights = match backend {
                // The no-flag path is the historical one, bit for bit.
                None => clara.analyze_prec(&e.module, &trace, precision)?,
                Some(b) => clara.analyze_on_prec(&e.module, &trace, b, precision)?,
            };
            match backend {
                None => println!("== insights for `{}` ==", e.name()),
                Some(b) => println!("== insights for `{}` on {} ==", e.name(), b.name()),
            }
            println!(
                "predicted compute instructions/packet: {:.0}",
                insights.predicted_compute
            );
            println!(
                "counted memory accesses: {} ({:.1}% fidelity)",
                insights.counted_mem, insights.mem_count_accuracy
            );
            match &insights.accel {
                Some((c, region)) => {
                    println!("accelerator: {} over blocks {:?}", c.name(), region)
                }
                None => println!("accelerator: none identified"),
            }
            println!("suggested cores: {}", insights.suggested_cores);
            for (g, l) in &insights.placement {
                println!(
                    "place {} -> {}",
                    e.module.global(*g).map_or("?", |d| d.name.as_str()),
                    l.name()
                );
            }
            for (i, cl) in insights.coalesce.clusters.iter().enumerate() {
                let names: Vec<&str> = cl
                    .iter()
                    .map(|(g, _)| e.module.global(*g).map_or("?", |d| d.name.as_str()))
                    .collect();
                println!("pack cluster {i}: {}", names.join(" + "));
            }
            let cores = o.cores.unwrap_or(insights.suggested_cores);
            let nic = backend.map_or(&clara.nic, |b| b.nic());
            let naive = nicsim::simulate(&e.module, &trace, &PortConfig::naive(), nic, cores);
            let tuned =
                nicsim::simulate(&e.module, &trace, &insights.port_config(), nic, cores);
            println!(
                "at {cores} cores: naive {:.2} Mpps / {:.2} us -> Clara {:.2} Mpps / {:.2} us",
                naive.throughput_mpps, naive.latency_us, tuned.throughput_mpps, tuned.latency_us
            );
            write_report(&o.report);
        }
        "predict" => {
            let (name, opt_args) = rest.split_first().unwrap_or_else(|| usage());
            let o = parse_opts(opt_args);
            let e = find(name);
            let trace = trace_of(&o);
            let clara = load_or_train(&o.model, o.seed)?;
            let backend = match &o.backend {
                None => hal::default_backend(),
                Some(name) => resolve_backend(name)?,
            };
            let precision = o.precision.unwrap_or(clara.precision);
            let p = clara.predict_one_on_prec(&e.module, &trace, backend, precision)?;
            // Same rendering the daemon uses, so one-shot and served
            // predictions are directly comparable (and diffable).
            println!(
                "{}",
                serve::protocol::predict_response(None, e.name(), backend.name(), precision, &p)
            );
        }
        "place" => return place_cmd(rest),
        "quantcheck" => return quantcheck_cmd(rest),
        "serve" => return serve_cmd(rest),
        "bench-serve" => return bench_serve_cmd(rest),
        "difftest" => return difftest_cmd(rest),
        "cache-verify" => {
            let engine = clara_repro::clara::engine::Engine::new();
            match engine.verify_disk_cache()? {
                None => {
                    eprintln!(
                        "no persistent cache configured; set CLARA_CACHE_DIR to enable one"
                    );
                }
                Some(summary) => {
                    println!(
                        "scanned {} artifact(s): {} valid, {} corrupt",
                        summary.scanned,
                        summary.valid,
                        summary.corrupt.len()
                    );
                    for (path, detail) in &summary.corrupt {
                        eprintln!("  corrupt: {}: {detail}", path.display());
                    }
                    if let Some(err) = summary.into_error() {
                        return Err(err);
                    }
                }
            }
        }
        _ => usage(),
    }
    Ok(())
}

/// Resolves `--backend NAME` to a built-in device (exit 8 on unknown).
fn resolve_backend(name: &str) -> Result<&'static DeviceBackend, ClaraError> {
    Ok(clara_repro::clara::difftest::resolve_backends(&[name.to_string()])?[0])
}

/// Expands `--backends all|A,B,...` into a list of manifest names
/// (validated later, at resolution).
fn backend_list(arg: &str) -> Vec<String> {
    if arg == "all" {
        hal::builtin_names().iter().map(|s| (*s).to_string()).collect()
    } else {
        arg.split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect()
    }
}

/// Writes the deterministic run report when a sink is armed.
fn write_report(report: &Option<String>) {
    if let Some(raw) = report {
        let path = obs::resolve_sink(raw, "clara_cli.json");
        match obs::RunReport::capture().write(&path) {
            Ok(()) => eprintln!("run report written to {}", path.display()),
            Err(e) => eprintln!(
                "warning: could not write run report to {}: {e}",
                path.display()
            ),
        }
    }
}

/// `clara analyze NAME --backend all`: one prediction per built-in
/// device, plus deltas against the default backend — the cross-device
/// offloading comparison in table form.
fn analyze_all_backends(clara: &Clara, e: &NfElement, trace: &Trace) -> Result<(), ClaraError> {
    let rows: Vec<(&DeviceBackend, clara_repro::clara::Prediction)> = hal::builtins()
        .iter()
        .map(|b| clara.predict_one_on(&e.module, trace, b).map(|p| (b, p)))
        .collect::<Result<_, _>>()?;
    println!("== cross-backend predictions for `{}` ==", e.name());
    println!(
        "{:<14} {:<9} {:>5} {:>5} {:>9} {:>12} {:>10}",
        "BACKEND", "CLASS", "CORES", "SUGG", "Mpps", "latency(us)", "compute"
    );
    for (b, p) in &rows {
        println!(
            "{:<14} {:<9} {:>5} {:>5} {:>9.2} {:>12.2} {:>10.0}",
            b.name(),
            b.manifest().class.as_str(),
            b.nic().cores,
            p.suggested_cores,
            p.predicted_throughput_mpps,
            p.predicted_latency_us,
            p.predicted_compute
        );
    }
    let (b0, p0) = &rows[0];
    for (b, p) in rows.iter().skip(1) {
        println!(
            "delta vs {}: {}: {:+.2} Mpps, {:+.2} us, {:+} cores",
            b0.name(),
            b.name(),
            p.predicted_throughput_mpps - p0.predicted_throughput_mpps,
            p.predicted_latency_us - p0.predicted_latency_us,
            i64::from(p.suggested_cores) - i64::from(p0.suggested_cores)
        );
    }
    Ok(())
}

/// `clara serve`: the batched, backpressured NF-analysis daemon.
///
/// Loads (or trains) the model once, binds the address, and serves the
/// versioned JSON-lines protocol until a `drain` request or SIGTERM
/// gracefully shuts it down. Bind failures exit 7.
fn serve_cmd(args: &[String]) -> Result<(), ClaraError> {
    use serve::ServeOptions;

    let mut so = ServeOptions::default();
    let mut model: Option<String> = None;
    let mut seed = 42u64;
    let mut want_uds = false;
    let mut it = args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => so.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--transport" => match it.next().map(String::as_str) {
                Some("tcp") => want_uds = false,
                Some("uds" | "both") => want_uds = true,
                _ => usage(),
            },
            "--uds" => {
                so.uds_path = it.next().cloned().or_else(|| usage());
                want_uds = true;
            }
            "--workers" => so.workers = num(&mut it) as usize,
            "--queue-cap" => so.queue_cap = num(&mut it) as usize,
            "--batch-max" => so.batch_max = num(&mut it) as usize,
            "--deadline-ms" => {
                so.deadline = Some(std::time::Duration::from_millis(num(&mut it)))
            }
            "--model" => model = it.next().cloned().or_else(|| usage()),
            "--seed" => seed = num(&mut it),
            "--backends" => {
                so.backends = backend_list(&it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--precision" => so.precision = parse_precision(it.next()),
            _ => usage(),
        }
    }
    if want_uds && so.uds_path.is_none() {
        so.uds_path = Some("/tmp/clara-serve.sock".to_string());
    } else if !want_uds {
        so.uds_path = None;
    }
    let clara = std::sync::Arc::new(load_or_train(&model, seed)?);
    serve::server::install_sigterm_drain();
    let handle = serve::Server::start(so, clara)?;
    println!("clara-serve listening on {}", handle.addr());
    if let Some(path) = handle.uds_path() {
        println!("clara-serve listening on unix socket {path}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = handle.join();
    eprintln!(
        "clara-serve drained: {} served, {} overloaded, {} quota-exceeded, {} errors",
        summary.served, summary.overloaded, summary.quota_exceeded, summary.errors
    );
    Ok(())
}

/// `clara bench-serve`: the load generator. Exits 7 when any request
/// fails for a reason other than a typed `overloaded` rejection (or a
/// `--require-speedup` floor is missed).
fn bench_serve_cmd(args: &[String]) -> Result<(), ClaraError> {
    use serve::BenchOptions;

    let mut bo = BenchOptions::default();
    let mut it = args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => bo.addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--transport" => {
                bo.transport = it
                    .next()
                    .and_then(|v| serve::Transport::parse(v))
                    .unwrap_or_else(|| usage());
            }
            "--uds" => bo.uds_path = it.next().cloned().or_else(|| usage()),
            "--requests" => bo.requests = num(&mut it) as usize,
            "--conns" => bo.conns = num(&mut it) as usize,
            "--nf" => bo.nf = it.next().cloned().unwrap_or_else(|| usage()),
            "--packets" => bo.packets = num(&mut it) as usize,
            "--seed" => bo.seed = num(&mut it),
            "--burst" => bo.burst = num(&mut it) as usize,
            "--burst-packets" => bo.burst_packets = num(&mut it) as usize,
            "--baseline" => bo.baseline = num(&mut it) as usize,
            "--model" => bo.model = it.next().cloned().or_else(|| usage()),
            "--require-speedup" => {
                bo.require_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--drain" => bo.drain = true,
            "--report" => bo.report = it.next().cloned().or_else(|| usage()),
            "--backend" => bo.backend = it.next().cloned().or_else(|| usage()),
            "--precision" => bo.precision = Some(parse_precision(it.next())),
            "--place-every" => bo.place_every = num(&mut it) as usize,
            "--tenants" => bo.tenants = num(&mut it) as usize,
            "--quota" => bo.quota = Some(num(&mut it)),
            "--fairness" => bo.fairness = true,
            "--matrix" => bo.matrix = true,
            "--backends" => {
                bo.backends = backend_list(&it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--require-uds-win" => bo.require_uds_win = true,
            _ => usage(),
        }
    }
    let s = serve::run_bench(&bo)?;
    println!(
        "bench-serve: {} sent, {} ok, {} overloaded, {} quota-exceeded, {} failed",
        s.sent, s.ok, s.overloaded, s.quota_exceeded, s.failed
    );
    println!(
        "throughput: {:.1} req/s; predict latency p50 {:.0} us, p95 {:.0} us, p99 {:.0} us",
        s.rps, s.p50_us, s.p95_us, s.p99_us
    );
    if s.place_ok > 0 {
        println!(
            "place: {} ok; latency p50 {:.0} us, p95 {:.0} us, p99 {:.0} us",
            s.place_ok, s.place_p50_us, s.place_p95_us, s.place_p99_us
        );
    }
    if let (Some(b), Some(x)) = (s.baseline_rps, s.speedup) {
        println!("baseline (one-shot CLI): {b:.2} req/s -> speedup {x:.1}x");
    }
    if let Some(f) = &s.fairness {
        println!(
            "fairness: victim p95 solo {:.0} us -> contended {:.0} us; \
             victim rejections {}, burster rejections {}",
            f.solo_p95_us, f.contended_p95_us, f.victim_rejections, f.burster_rejections
        );
    }
    if let (Some(t), Some(u)) = (s.tcp_rps, s.uds_rps) {
        println!("matrix: tcp {t:.1} req/s vs uds {u:.1} req/s");
    }
    if s.drained {
        println!("drain: ok");
    }
    Ok(())
}

/// `clara place`: traffic-aware placement planning for an NF set.
///
/// Prints the plan with the exact rendering the daemon's `op:"place"`
/// uses, so one-shot and served plans for the same request are
/// byte-identical. `--backend` accepts a built-in device name or a
/// manifest file path (loaded fresh, never warm). Infeasible instances,
/// solver-budget exhaustion, and unknown NFs exit 10.
fn place_cmd(args: &[String]) -> Result<(), ClaraError> {
    use clara_repro::clara::PlacementRequest;

    let (nf_arg, opt_args) = args.split_first().unwrap_or_else(|| usage());
    let nfs: Vec<&str> = nf_arg.split(',').filter(|s| !s.is_empty()).collect();
    if nfs.is_empty() {
        usage();
    }
    let mut b = PlacementRequest::builder(nfs);
    let mut model: Option<String> = None;
    let mut report = obs::sink_from_env();
    let mut backend: Option<String> = None;
    let mut seed = 42u64;
    let mut it = opt_args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--packets" => b = b.packets(num(&mut it) as usize),
            "--seed" => {
                seed = num(&mut it);
                b = b.seed(seed);
            }
            "--small-flows" => b = b.small_flows(true),
            "--backend" => backend = it.next().cloned().or_else(|| usage()),
            "--precision" => b = b.precision(parse_precision(it.next())),
            "--objective" => {
                let o = it.next().unwrap_or_else(|| usage());
                b = b.objective(
                    clara_repro::clara::Objective::parse(o).unwrap_or_else(|| usage()),
                );
            }
            "--replay" => b = b.replay(it.next().cloned().unwrap_or_else(|| usage())),
            "--epochs" => b = b.epochs(num(&mut it) as usize),
            "--drift-threshold" => {
                b = b.drift_threshold(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--model" => model = it.next().cloned().or_else(|| usage()),
            "--report" => report = it.next().cloned().or_else(|| usage()),
            _ => usage(),
        }
    }
    if report.is_some() {
        obs::enable();
    }
    let clara = load_or_train(&model, seed)?;
    // A backend argument that points at a file is a device manifest
    // loaded for this run; anything else must be a built-in name (the
    // same set the daemon can hold warm).
    let from_file = backend.as_deref().is_some_and(|p| {
        p.ends_with(".toml") || p.contains('/') || std::path::Path::new(p).exists()
    });
    let plan = if from_file {
        let dev = DeviceBackend::load(backend.as_deref().expect("checked above"))?;
        clara.place_on(&b.build(), &dev)?
    } else {
        if let Some(name) = backend {
            b = b.backend(name);
        }
        clara.place(&b.build())?
    };
    println!("{}", serve::protocol::place_response(None, &plan));
    write_report(&report);
    Ok(())
}

/// `clara quantcheck`: the f64-vs-q16 quantization oracle. Runs the
/// extended corpus through both inference paths, enforces the pinned
/// block tolerance and core-count identity, and (with
/// `--require-speedup`) a predict-stage speed floor. Exits 9 on any
/// violation, with a minimized repro under `--artifacts`.
fn quantcheck_cmd(args: &[String]) -> Result<(), ClaraError> {
    use clara_repro::clara::quantcheck::{self, QuantcheckConfig};

    let mut cfg = QuantcheckConfig::default();
    let mut model: Option<String> = None;
    let mut seed = 42u64;
    let mut it = args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--model" => model = it.next().cloned().or_else(|| usage()),
            "--packets" => cfg.packets = num(&mut it) as usize,
            "--seed" => {
                seed = num(&mut it);
                cfg.seed = seed;
            }
            "--reps" => cfg.reps = num(&mut it) as usize,
            "--require-speedup" => {
                cfg.require_speedup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--artifacts" => {
                cfg.artifact_dir = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            _ => usage(),
        }
    }
    let clara = load_or_train(&model, seed)?;
    let report = quantcheck::run(&clara, &cfg)?;
    print!("{}", report.render());
    println!(
        "quantcheck: {} NF(s) within tolerance (rel {:.0}%, abs {})",
        report.rows.len(),
        cfg.rel_tol * 100.0,
        cfg.abs_tol
    );
    Ok(())
}

/// `clara difftest`: the three-layer differential semantics oracle.
///
/// Without flags, sweeps `--seeds` synthesized NFs through the
/// reference executor, the interpreter, and the optimized-module
/// interpreter, exiting 6 on any divergence. `--smoke` proves the
/// oracle catches an injected miscompile and that the shrinker
/// minimizes it; `--replay FILE` re-runs a minimized artifact.
fn difftest_cmd(args: &[String]) -> Result<(), ClaraError> {
    use clara_repro::clara::difftest::{self, DifftestConfig, Injection};

    let mut cfg = DifftestConfig::default();
    let mut seed = 0u64;
    let mut smoke = false;
    let mut replay: Option<String> = None;
    let report = obs::sink_from_env();
    let mut it = args.iter();
    let num = |it: &mut std::slice::Iter<String>| -> u64 {
        it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => cfg.seeds = num(&mut it),
            "--start" => cfg.start_seed = num(&mut it),
            "--packets" | "--pkts" => cfg.pkts = num(&mut it) as usize,
            "--seed" => seed = num(&mut it),
            "--artifacts" => {
                cfg.artifact_dir = Some(it.next().unwrap_or_else(|| usage()).into());
            }
            "--no-shrink" => cfg.shrink = false,
            "--inject" => cfg.inject = Some(Injection::FlipArith),
            "--smoke" => smoke = true,
            "--replay" => replay = it.next().cloned().or_else(|| usage()),
            "--backends" => {
                cfg.backends = backend_list(&it.next().cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
    }
    if report.is_some() {
        obs::enable();
    }

    let result = if smoke {
        let r = difftest::smoke();
        println!(
            "smoke: injected miscompile {}; shrinker: {} -> {} blocks ({} insts)",
            if r.caught { "caught" } else { "MISSED" },
            r.blocks_before,
            r.blocks_after,
            r.insts_after
        );
        if !r.caught || r.blocks_after > 3 {
            Err(ClaraError::Prediction {
                detail: format!(
                    "difftest smoke failed: caught={} blocks_after={}",
                    r.caught, r.blocks_after
                ),
            })
        } else {
            Ok(())
        }
    } else if let Some(path) = replay {
        match difftest::replay(std::path::Path::new(&path), cfg.pkts, seed, cfg.inject)? {
            Some(div) => {
                println!("{path}: diverges: {div}");
                Err(ClaraError::Divergence {
                    found: 1,
                    checked: 1,
                    artifact_dir: None,
                })
            }
            None => {
                println!("{path}: no divergence over {} packets (seed {seed})", cfg.pkts);
                Ok(())
            }
        }
    } else {
        let rep = difftest::run(&cfg)?;
        if cfg.backends.len() >= 2 {
            println!(
                "cross-backend: {} device(s), max compute delta {:.1} cycles/pkt",
                cfg.backends.len(),
                rep.max_backend_compute_delta
            );
        }
        for r in &rep.divergent {
            let div = r.divergence.as_ref().expect("divergent seeds carry one");
            println!("seed {:>6} ({}): {div}", r.seed, r.module_name);
            if let Some(m) = &r.minimized {
                println!(
                    "  minimized: {} -> {} blocks, {} -> {} insts ({} oracle checks)",
                    m.blocks_before, m.blocks_after, m.insts_before, m.insts_after, m.checks
                );
            }
            if let Some(p) = &r.artifact {
                println!("  repro written to {}", p.display());
            }
            if let Some(e) = &r.artifact_error {
                eprintln!("  warning: could not write artifact: {e}");
            }
        }
        println!(
            "difftest: {} seed(s) clean, {} divergent, {} engine failure(s)",
            rep.checked,
            rep.divergent.len(),
            rep.engine_failures
        );
        rep.into_result().map(|_| ())
    };

    if let Some(raw) = &report {
        let path = obs::resolve_sink(raw, "clara_difftest.json");
        match obs::RunReport::capture().write(&path) {
            Ok(()) => eprintln!("run report written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write run report to {}: {e}", path.display()),
        }
    }
    result
}
