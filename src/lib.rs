//! Umbrella crate for the Clara reproduction workspace.
//!
//! Re-exports the member crates so that examples and integration tests can
//! use a single dependency. See `clara_core` for the main entry points.

pub use clara_accel as accel;
pub use clara_core as clara;
pub use clara_hal as hal;
pub use clara_obs as obs;
pub use clara_serve as serve;
pub use click_model as click;
pub use ilp_solver as ilp;
pub use nf_ir as ir;
pub use nf_synth as synth;
pub use nfcc;
pub use nic_sim as nicsim;
pub use tinyml as ml;
pub use trafgen;
