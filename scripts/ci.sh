#!/usr/bin/env bash
# Tier-1 CI gate: release build, test suite, zero clippy warnings.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy -- -D warnings
