#!/usr/bin/env bash
# Tier-1 CI gate: release build, test suite, zero clippy warnings, zero
# rustdoc warnings, plus a quick instrumented bench run that leaves a
# BENCH_train_timing.json run report behind as a build artifact.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Smoke-run the timing bench with telemetry on; CLARA_REPORT=1 drops the
# run report (spans + metrics JSON) next to the checkout for upload.
CLARA_QUICK=1 CLARA_REPORT=1 cargo run --release -p clara-bench --bin train_timing 2
test -s BENCH_train_timing.json

# hal-matrix: the device-backend surface — manifest validation, golden
# cross-device matrix, cross-backend difftest, typed exit codes.
./scripts/hal_smoke.sh

# quant-smoke: the f64-vs-q16 oracle with a predict-stage speedup floor,
# plus bench-serve at both precisions (q16 with a raised floor).
./scripts/quant_smoke.sh

# place-smoke: the placement API surface — ILP-vs-greedy difftest +
# golden matrix, a drifting replay with its migration run report, and
# the infeasible-placement exit code.
./scripts/place_smoke.sh

# corpus-smoke: the stateful-NF corpus + accelerator catalog — flow-state
# acceptance tests, the `clara corpus` JSON report, and per-backend
# accelerator menus.
./scripts/corpus_smoke.sh

# tenant-smoke: multi-tenant serving — two-tenant fairness under a
# quota-limited burst, typed-rejection exit codes, and the
# tenants x transport x backend matrix (UDS frames must out-serve TCP
# lines), leaving BENCH_serve_tenants.json behind.
./scripts/tenant_smoke.sh
