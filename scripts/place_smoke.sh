#!/usr/bin/env bash
# Placement smoke test (CI job `place-smoke`): exercise the `clara place`
# surface end to end — the placement test suite (ILP-vs-greedy difftest +
# golden matrix + replay properties), a static multi-NF placement, a
# drifting replay that must re-solve at least once and leave a migration
# RunReport artifact behind, and the typed exit code for an infeasible
# placement against a capacity-starved device manifest.
# Run from the repository root: ./scripts/place_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MODEL="${CLARA_PLACE_MODEL:-place-smoke-model.json}"
BIN=target/release/clara
TINY="$(mktemp -d)"
trap 'rm -rf "$TINY"' EXIT

cargo build --release --bin clara
cargo test -q --test placement

rm -f "$MODEL" BENCH_place_replay.json

# Train once and persist; every phase below reloads the same model.
"$BIN" predict cmsketch --model "$MODEL" --packets 200 > /dev/null

# Static placement: two corpus NFs through the typed request path. The
# deterministic JSON must carry the ILP plan and the greedy fallback.
static="$("$BIN" place firewall,mazunat --model "$MODEL" --packets 200)"
echo "$static" | grep -q '"op":"place"' || {
  echo "place_smoke: static placement response missing op tag" >&2
  exit 1
}
echo "$static" | grep -q '"greedy_total_objective"' || {
  echo "place_smoke: static placement response missing greedy fallback" >&2
  exit 1
}

# Replay with injected drift: the shift schedule flips udpcount's access
# mix at the phase boundary (~14% relative L1), so a 10% threshold must
# trigger at least one re-solve. The run report is the CI artifact that
# carries the migration counters.
replay="$("$BIN" place udpcount --model "$MODEL" --replay shift --epochs 4 \
  --drift-threshold 0.1 --packets 150 --seed 31 \
  --report BENCH_place_replay.json)"
resolves="$(echo "$replay" | sed -n 's/.*"resolves":\([0-9]*\).*/\1/p')"
if [ -z "$resolves" ] || [ "$resolves" -lt 1 ]; then
  echo "place_smoke: drifting replay re-solved ${resolves:-0} times (expected >= 1)" >&2
  exit 1
fi
test -s BENCH_place_replay.json
for counter in place.requests place.epochs place.resolves; do
  grep -q "$counter" BENCH_place_replay.json || {
    echo "place_smoke: run report missing counter $counter" >&2
    exit 1
  }
done

# Infeasible placements are typed errors, exit code 10: a device whose
# whole memory hierarchy holds half a kilobyte cannot place cmsketch.
cat > "$TINY/tiny.toml" <<'EOF'
schema_version = 1
name = "tiny-smoke"
description = "capacity-starved device for the infeasible-placement pin"
class = "on-path"

[cores]
count = 4
freq_ghz = 1.0

[io]
max_mpps = 10.0
line_rate_gbps = 10.0

[[memory]]
level = "CLS"
capacity_bytes = 64
latency_cycles = 25
bandwidth = 2.5

[[memory]]
level = "CTM"
capacity_bytes = 128
latency_cycles = 55
bandwidth = 1.8

[[memory]]
level = "IMEM"
capacity_bytes = 256
latency_cycles = 150
bandwidth = 0.45

[[memory]]
level = "EMEM"
capacity_bytes = 512
latency_cycles = 500
bandwidth = 0.085

[memory_cache]
capacity_bytes = 256
hit_latency_cycles = 130
bandwidth = 0.40

[[accelerator]]
op = "checksum"
accel_cycles = 300
sw_cycles = 2000

[[accelerator]]
op = "crc"
base_cycles = 30
per_iter_cycles = 0.25

[[accelerator]]
op = "lpm-cam"
hit_cycles = 50
insert_cycles = 120
entries = 64

[vendor_lib]
call_overhead_cycles = 12

[[port]]
id = 0
speed_gbps = 10.0
EOF
set +e
"$BIN" place cmsketch --model "$MODEL" --backend "$TINY/tiny.toml" --packets 200
code=$?
set -e
if [ "$code" -ne 10 ]; then
  echo "place_smoke: infeasible placement exited $code (expected 10)" >&2
  exit 1
fi

rm -f "$MODEL"
echo "place_smoke: ok (difftest + golden green, $resolves re-solve(s) on drift, exit 10 pinned)"
