#!/usr/bin/env bash
# Corpus smoke test (CI job `corpus-smoke`): the stateful-NF corpus and
# the accelerator-variant catalog, end to end — run the flow-state
# acceptance suite (pinned churn counters + worker-count determinism)
# and the catalog unit tests, then drive the CLI: `clara corpus` must
# emit valid JSON with every flow-table NF classified as flow-state and
# the expected catalog hits, and `clara backends` must list each
# manifest's accelerator menu including dpu-offpath's non-default
# crc64-ecma variant.
# Run from the repository root: ./scripts/corpus_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/clara

cargo build --release --bin clara
cargo test -q -p clara-accel
cargo test -q --test flow_corpus

corpus="$("$BIN" corpus)"

# The report must be machine-readable JSON, not merely JSON-shaped.
if command -v python3 >/dev/null 2>&1; then
  echo "$corpus" | python3 -m json.tool >/dev/null || {
    echo "corpus_smoke: 'clara corpus' emitted invalid JSON" >&2
    exit 1
  }
fi

# Every flow-table NF from the stateful corpus engine is present and
# classified as flow-state.
for name in natchurn fwstate conntrack dnscache flowlimiter; do
  echo "$corpus" | grep -q "\"name\":\"$name\",\"state_class\":\"flow-state\"" || {
    echo "corpus_smoke: $name missing or not flow-state in 'clara corpus'" >&2
    exit 1
  }
done

# The catalog matcher recovers known algorithm constants from NF code.
for hit in crc32-ieee crc16-ccitt hash-lookup3; do
  echo "$corpus" | grep -q "\"$hit\"" || {
    echo "corpus_smoke: catalog hit $hit missing from 'clara corpus'" >&2
    exit 1
  }
done

# Each backend row prints its accelerator menu; dpu-offpath declares the
# non-default wide-register CRC engine.
backends="$("$BIN" backends)"
echo "$backends" | grep -q "ACCELERATORS" || {
  echo "corpus_smoke: 'clara backends' lost its ACCELERATORS column" >&2
  exit 1
}
echo "$backends" | grep "dpu-offpath" | grep -q "crc64-ecma" || {
  echo "corpus_smoke: dpu-offpath menu missing crc64-ecma" >&2
  exit 1
}
echo "$backends" | grep "agilio-cx" | grep -q "csum-fold16,crc32-ieee,lpm-w32" || {
  echo "corpus_smoke: agilio-cx menu is not the catalog defaults" >&2
  exit 1
}

echo "corpus_smoke: ok (5 flow NFs classified, catalog hits present, menus listed)"
