#!/usr/bin/env bash
# Multi-tenant serving smoke: one daemon on both transports, a
# two-tenant fairness experiment (a quota-limited burster flooding while
# the victim must keep its p95 and collect zero rejections), a typed
# unknown-NF registration rejection pinned to exit code 7, and the
# tenants x transport x backend matrix requiring the UDS frame
# transport to out-serve TCP JSON-lines, leaving BENCH_serve_tenants.json
# behind as the artifact.
# Run from the repository root: ./scripts/tenant_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${CLARA_TENANT_ADDR:-127.0.0.1:49163}"
SOCK="${CLARA_TENANT_SOCK:-/tmp/clara-tenant-smoke.sock}"
MODEL="${CLARA_TENANT_MODEL:-tenant-smoke-model.json}"
BIN=target/release/clara

cargo build --release --bin clara

rm -f BENCH_serve_tenants.json BENCH_serve_fairness.json "$MODEL" "$SOCK"

# Train once and persist, so the daemon and every bench phase load the
# same warm model instead of retraining.
"$BIN" predict cmsketch --model "$MODEL" --packets 200 > /dev/null

"$BIN" serve --addr "$ADDR" --transport both --uds "$SOCK" \
  --workers 2 --queue-cap 16 --model "$MODEL" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

# Fairness: the victim tenant registers first (its worker shard stays
# disjoint from the burster's), then a quota=2 burster floods 24 heavy
# distinctly-seeded predicts. bench-serve exits 7 unless the victim
# keeps its p95 within 2x solo (10ms floor) with zero rejections AND
# the flood collects typed quota_exceeded/overloaded rejections.
# (1000-packet flood jobs: heavy enough that quota-2 admission rejects
# most of the 24-wide flood, light enough that the shared rayon pool
# does not drown the victim's p95 in pure CPU contention.)
"$BIN" bench-serve --addr "$ADDR" \
  --fairness --requests 120 --conns 2 --packets 200 \
  --quota 2 --burst 24 --burst-packets 1000 \
  --report BENCH_serve_fairness.json

# Typed-rejection exit pin: registering a tenant whose NF set names a
# non-corpus element is answered with typed `unknown_nf`, which
# bench-serve surfaces as exit code 7 — never a hang or a crash.
set +e
"$BIN" bench-serve --addr "$ADDR" --tenants 1 --nf not-an-nf \
  --requests 1 --conns 1 > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 7 ]; then
  echo "tenant_smoke: unknown-NF registration exited $code (expected 7)" >&2
  exit 1
fi

# Matrix: tenants x {tcp,uds} x backend cells into the artifact, after a
# TCP warmup slice primes the serving caches. --require-uds-win exits 7
# unless the frame transport's aggregate rps beats TCP lines. --drain
# shuts the daemon down gracefully afterwards.
# (2000 requests per cell: warm cache-hit serving runs at tens of
# thousands of rps, so short cells finish in milliseconds and scheduler
# noise swamps the transport delta; long cells amortize it away.)
"$BIN" bench-serve --addr "$ADDR" --uds "$SOCK" \
  --matrix --require-uds-win --tenants 2 \
  --requests 2000 --conns 2 --packets 200 \
  --report BENCH_serve_tenants.json --drain

# The drain must let the daemon exit cleanly (code 0).
wait "$SERVER"
code=$?
trap - EXIT
if [ "$code" -ne 0 ]; then
  echo "tenant_smoke: daemon exited $code after drain (expected 0)" >&2
  exit 1
fi

test -s BENCH_serve_tenants.json
grep -q "serve.bench.matrix.tcp.rps" BENCH_serve_tenants.json
grep -q "serve.bench.matrix.uds.rps" BENCH_serve_tenants.json
test -s BENCH_serve_fairness.json
grep -q "serve.bench.fairness.solo_p95_us" BENCH_serve_fairness.json
rm -f "$MODEL"
echo "tenant_smoke: ok (fairness held, uds out-served tcp, BENCH_serve_tenants.json written)"
