#!/usr/bin/env bash
# Regenerates every table and figure of the Clara reproduction.
#
# Usage: scripts/reproduce.sh [outdir]
# Set CLARA_QUICK=1 for a fast smoke run with reduced training budgets.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

cargo build --release -p clara-bench --bins

EXPERIMENTS=(
  tab01_synthesis
  tab02_inventory
  fig01_variability
  fig09_algid
  fig10_accel
  fig11_scaleout
  fig12_placement
  fig13_coalescing
  fig14_colocation
  fig15_expert_placement
  fig16_expert_coalescing
  ablations
)
for exp in "${EXPERIMENTS[@]}"; do
  echo "=== $exp ==="
  ./target/release/"$exp" | tee "$OUT/$exp.txt"
done

echo "=== fig08_prediction (with vocabulary ablation) ==="
./target/release/fig08_prediction --ablate-vocab | tee "$OUT/fig08_prediction.txt"

echo "All experiment outputs written to $OUT/"
