#!/usr/bin/env bash
# HAL smoke test (CI job `hal-matrix`): exercise the device-backend CLI
# surface end to end — list backends, run the manifest validation and
# backend-matrix suites, produce a cross-device analysis matrix, run a
# cross-backend difftest, and require the typed exit code for an
# unknown backend name.
# Run from the repository root: ./scripts/hal_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MODEL="${CLARA_HAL_MODEL:-hal-smoke-model.json}"
BIN=target/release/clara

cargo build --release --bin clara
cargo test -q -p clara-hal
cargo test -q --test backend_matrix

rm -f "$MODEL"

# The four built-in manifests must all load and be listed.
backends="$("$BIN" backends)"
echo "$backends"
for name in agilio-cx wimpy-onpath dpu-offpath accel-poor; do
  echo "$backends" | grep -q "$name" || {
    echo "hal_smoke: builtin $name missing from 'clara backends'" >&2
    exit 1
  }
done

# Cross-device analysis matrix (trains once, persists the model), then a
# single-device analysis on a non-default backend reusing it.
"$BIN" analyze cmsketch --model "$MODEL" --backend all --packets 200
"$BIN" analyze cmsketch --model "$MODEL" --backend dpu-offpath --packets 200

# Cross-backend differential oracle: semantics must be device-invariant
# across every builtin while cost profiles differ (difftest exits 6 on
# any divergence).
"$BIN" difftest --seeds 40 --packets 24 --backends all

# Unknown backend names are typed manifest errors, exit code 8.
set +e
"$BIN" analyze cmsketch --model "$MODEL" --backend no-such-device --packets 200
code=$?
set -e
if [ "$code" -ne 8 ]; then
  echo "hal_smoke: unknown backend exited $code (expected 8)" >&2
  exit 1
fi

rm -f "$MODEL"
echo "hal_smoke: ok (4 builtins listed, cross-device matrix + difftest clean, exit 8 pinned)"
