#!/usr/bin/env bash
# Differential semantics oracle for CI.
#
# Two phases:
#   1. Injected-divergence smoke: `clara difftest --smoke` deliberately
#      miscompiles a module, and must both catch the divergence and
#      shrink the repro to <= 3 blocks (exit 0 only then).
#   2. Seed sweep: >= 500 synthesized NFs run through the reference
#      executor, the interpreter, and the optimized-module interpreter.
#      Profiles go through the persistent engine cache (CLARA_CACHE_DIR),
#      so re-runs on an unchanged toolchain are cheap. Any divergence
#      exits 6 and leaves minimized repros in difftest-artifacts/.
#
# Run from the repository root: ./scripts/difftest.sh [seeds]
set -uo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-500}"
ARTIFACTS="difftest-artifacts"
export CLARA_CACHE_DIR="${CLARA_CACHE_DIR:-.clara-cache}"

rm -rf "$ARTIFACTS"
cargo build --release --bin clara

echo "== difftest smoke (injected miscompile must be caught and shrunk) =="
./target/release/clara difftest --smoke
code=$?
if [ "$code" -ne 0 ]; then
  echo "difftest.sh: smoke failed with exit code $code" >&2
  exit 1
fi

echo "== difftest sweep ($SEEDS seeds) =="
./target/release/clara difftest --seeds "$SEEDS" --artifacts "$ARTIFACTS"
code=$?
if [ "$code" -ne 0 ]; then
  echo "difftest.sh: sweep failed with exit code $code" >&2
  if [ -d "$ARTIFACTS" ]; then
    echo "difftest.sh: minimized repros:" >&2
    ls -l "$ARTIFACTS" >&2
  fi
  exit "$code"
fi

echo "difftest.sh: ok ($SEEDS seeds clean)"
