#!/usr/bin/env bash
# Serving-layer smoke test: start the daemon with a persisted model, load
# it with a few hundred requests plus an over-capacity burst, require a
# >=2x throughput win over one-shot CLI invocations, drain gracefully,
# and leave BENCH_serve.json behind.
# Run from the repository root: ./scripts/serve_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${CLARA_SERVE_ADDR:-127.0.0.1:49157}"
MODEL="${CLARA_SERVE_MODEL:-serve-smoke-model.json}"
BIN=target/release/clara

cargo build --release --bin clara

rm -f BENCH_serve.json "$MODEL"

# Train once and persist, so both the daemon and the one-shot baseline
# runs load the same warm model instead of retraining.
"$BIN" predict cmsketch --model "$MODEL" --packets 200 > /dev/null

"$BIN" serve --addr "$ADDR" --workers 2 --queue-cap 8 --model "$MODEL" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true' EXIT

# 300 steady-state requests over 4 connections, a 32-wide burst of heavy
# distinctly-seeded requests to trip admission control, a 3-run one-shot
# baseline, and a graceful drain. bench-serve exits 7 if any request
# fails for a reason other than a typed `overloaded` rejection, or if
# the warm daemon fails to beat one-shot invocations by 2x.
"$BIN" bench-serve --addr "$ADDR" \
  --requests 300 --conns 4 --packets 200 \
  --burst 32 --burst-packets 3000 \
  --baseline 3 --model "$MODEL" --require-speedup 2 \
  --drain --report BENCH_serve.json

# The drain must let the daemon exit cleanly (code 0).
wait "$SERVER"
code=$?
trap - EXIT
if [ "$code" -ne 0 ]; then
  echo "serve_smoke: daemon exited $code after drain (expected 0)" >&2
  exit 1
fi

test -s BENCH_serve.json
rm -f "$MODEL"
echo "serve_smoke: ok (daemon drained cleanly, BENCH_serve.json written)"
