#!/usr/bin/env bash
# Cold-vs-warm persistent-cache comparison: run the training timing
# bench twice against the same CLARA_CACHE_DIR and assert the warm
# process serves every artifact from disk (zero recomputations in its
# run report). Leaves BENCH_train_timing_{cold,warm}.json behind for
# upload.
# Run from the repository root: ./scripts/cache_bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d "${TMPDIR:-/tmp}/clara-cache-bench.XXXXXX")
trap 'rm -rf "$dir"' EXIT
rm -f BENCH_train_timing_cold.json BENCH_train_timing_warm.json

CLARA_QUICK=1 CLARA_CACHE_DIR="$dir" CLARA_REPORT=BENCH_train_timing_cold.json \
  cargo run --release -p clara-bench --bin train_timing 2
test -s BENCH_train_timing_cold.json
artifacts=$(find "$dir" -name '*.clc' | wc -l)
if [ "$artifacts" -le 0 ]; then
  echo "cache_bench: cold run stored no artifacts" >&2
  exit 1
fi

CLARA_QUICK=1 CLARA_CACHE_DIR="$dir" CLARA_REPORT=BENCH_train_timing_warm.json \
  cargo run --release -p clara-bench --bin train_timing 2
test -s BENCH_train_timing_warm.json
# Report JSON is compact ("key":value, no space after the colon).
if ! grep -q '"engine.disk_cache.recomputes":0' BENCH_train_timing_warm.json; then
  echo "cache_bench: warm run recomputed artifacts" >&2
  exit 1
fi
hits=$(grep -o '"engine.disk_cache.hits":[0-9]*' BENCH_train_timing_warm.json | head -1 | cut -d: -f2)
if [ "${hits:-0}" -le 0 ]; then
  echo "cache_bench: warm run reports no disk-cache hits" >&2
  exit 1
fi
echo "cache_bench: ok ($artifacts artifact(s) stored cold, $hits disk hit(s) warm, 0 recomputes)"
