#!/usr/bin/env bash
# Fault-injection smoke test: a saturating CLARA_FAULTS plan (rate 1.0,
# depth 9, beyond any retry budget) must degrade training, exit with the
# documented code 3, and leave a run report whose fault-tolerance
# counters record the injections and permanent failures.
# Run from the repository root: ./scripts/fault_smoke.sh
set -uo pipefail
cd "$(dirname "$0")/.."

rm -f clara_train.json
CLARA_FAULTS=7:1.0:9 CLARA_REPORT=1 CLARA_THREADS=2 \
  cargo run --release --bin clara -- analyze aggcounter --packets 200
code=$?
set -e
if [ "$code" -ne 3 ]; then
  echo "fault_smoke: expected exit code 3 (degraded run), got $code" >&2
  exit 1
fi

# The training report is written even for degraded runs; its counters
# are the post-mortem. Report JSON is compact ("key":value, no space).
test -s clara_train.json
injected=$(grep -o '"engine.faults_injected":[0-9]*' clara_train.json | head -1 | cut -d: -f2)
failures=$(grep -o '"engine.task_failures":[0-9]*' clara_train.json | head -1 | cut -d: -f2)
if [ "${injected:-0}" -le 0 ]; then
  echo "fault_smoke: report shows no injected faults" >&2
  exit 1
fi
if [ "${failures:-0}" -le 0 ]; then
  echo "fault_smoke: report shows no permanent task failures" >&2
  exit 1
fi
echo "fault_smoke: ok (exit 3, $injected fault(s) injected, $failures permanent failure(s))"
