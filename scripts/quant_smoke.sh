#!/usr/bin/env bash
# Quantization smoke test (CI job `quant-smoke`): run the f64-vs-q16
# oracle over the full extended corpus with a predict-stage speedup
# floor, require the typed exit code for a violated tolerance knob, and
# drive `bench-serve` against daemons serving at both precisions (the
# q16 daemon with a raised warm-vs-one-shot floor: the integer predict
# stage must not eat into the serving win).
# Run from the repository root: ./scripts/quant_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${CLARA_QUANT_ADDR:-127.0.0.1:49163}"
MODEL="${CLARA_QUANT_MODEL:-quant-smoke-model.json}"
BIN=target/release/clara

cargo build --release --bin clara
cargo test -q --test quant

rm -f "$MODEL" BENCH_serve_f64.json BENCH_serve_q16.json

# Train once and persist; every phase below reloads the same model.
"$BIN" predict cmsketch --model "$MODEL" --packets 200 > /dev/null

# The oracle proper: all 27 corpus NFs within the pinned tolerance,
# suggested offload levels identical between precisions, and the q16
# predict stage measurably faster than f64. The floor is 1.3x: the
# integer path measures ~1.7-1.9x on a quiet machine, and the margin
# absorbs shared-runner timing noise.
"$BIN" quantcheck --model "$MODEL" --packets 200 --reps 3 --require-speedup 1.3

# An impossible speed floor must fail with the typed exit code 9 (same
# code a tolerance violation uses), not a generic error.
set +e
"$BIN" quantcheck --model "$MODEL" --packets 200 --reps 1 --require-speedup 1000000
code=$?
set -e
if [ "$code" -ne 9 ]; then
  echo "quant_smoke: missed speedup floor exited $code (expected 9)" >&2
  exit 1
fi

# bench-serve at both precisions. Warm serving beats one-shot CLI by 2x
# at f64 (the historical floor); at q16 the daemon must clear a raised
# 3x floor — the integer path makes the served predict stage cheaper
# while the one-shot baseline still pays process startup + model load.
for precision in f64 q16; do
  floor=2
  [ "$precision" = q16 ] && floor=3
  "$BIN" serve --addr "$ADDR" --workers 2 --queue-cap 8 \
    --model "$MODEL" --precision "$precision" &
  SERVER=$!
  trap 'kill "$SERVER" 2>/dev/null || true' EXIT
  "$BIN" bench-serve --addr "$ADDR" \
    --requests 200 --conns 4 --packets 200 \
    --baseline 3 --model "$MODEL" \
    --precision "$precision" --require-speedup "$floor" \
    --drain --report "BENCH_serve_$precision.json"
  wait "$SERVER"
  code=$?
  trap - EXIT
  if [ "$code" -ne 0 ]; then
    echo "quant_smoke: $precision daemon exited $code after drain (expected 0)" >&2
    exit 1
  fi
  test -s "BENCH_serve_$precision.json"
done

rm -f "$MODEL"
echo "quant_smoke: ok (corpus within tolerance, exit 9 pinned, both precisions served)"
