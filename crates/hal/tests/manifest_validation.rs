//! Table-driven manifest rejection suite.
//!
//! Every invalid-manifest class — missing field, zero cores,
//! non-monotone memory hierarchy, unknown accelerator op, duplicate
//! port, bad version — must produce a typed [`ManifestError`] naming
//! the offending field path, and all shipped built-ins must load.

use clara_hal::{builtin_names, builtins, Backend, DeviceBackend, Manifest, ManifestError};

/// The agilio-cx manifest doubles as the known-good base document that
/// each case mutates into exactly one invalid class.
const BASE: &str = include_str!("../manifests/agilio-cx.toml");

struct Case {
    /// What this case exercises.
    class: &'static str,
    /// Line (or exact fragment) removed from the base document.
    remove: &'static str,
    /// Replacement text (empty = pure removal).
    insert: &'static str,
    /// The exact field path the error must carry.
    field: &'static str,
    /// A fragment the human-readable detail must contain.
    detail: &'static str,
}

const CASES: &[Case] = &[
    Case {
        class: "missing field",
        remove: "count = 60\n",
        insert: "",
        field: "cores.count",
        detail: "missing",
    },
    Case {
        class: "missing table",
        remove: "[vendor_lib]\ncall_overhead_cycles = 12\n",
        insert: "",
        field: "vendor_lib",
        detail: "missing",
    },
    Case {
        class: "zero cores",
        remove: "count = 60",
        insert: "count = 0",
        field: "cores.count",
        detail: "at least one core",
    },
    Case {
        class: "non-monotone memory hierarchy (latency)",
        remove: "latency_cycles = 150",
        insert: "latency_cycles = 40",
        field: "memory[2].latency_cycles",
        detail: "slow down",
    },
    Case {
        class: "non-monotone memory hierarchy (capacity)",
        remove: "capacity_bytes = 4194304",
        insert: "capacity_bytes = 4096",
        field: "memory[2].capacity_bytes",
        detail: "grow",
    },
    Case {
        class: "non-monotone memory hierarchy (bandwidth)",
        remove: "bandwidth = 1.8",
        insert: "bandwidth = 3.0",
        field: "memory[1].bandwidth",
        detail: "shrink",
    },
    Case {
        class: "unknown accelerator op",
        remove: "op = \"crc\"",
        insert: "op = \"quic\"",
        field: "accelerator[1].op",
        detail: "unknown accelerator op `quic`",
    },
    Case {
        class: "duplicate accelerator op",
        remove: "op = \"crc\"",
        insert: "op = \"checksum\"\naccel_cycles = 1\nsw_cycles = 2",
        field: "accelerator[1].op",
        detail: "duplicate",
    },
    Case {
        class: "duplicate port",
        remove: "[[port]]\nid = 0\nspeed_gbps = 40.0",
        insert: "[[port]]\nid = 0\nspeed_gbps = 40.0\n\n[[port]]\nid = 0\nspeed_gbps = 10.0",
        field: "port[1].id",
        detail: "duplicate port id 0",
    },
    Case {
        class: "bad version",
        remove: "schema_version = 1",
        insert: "schema_version = 7",
        field: "schema_version",
        detail: "unsupported schema version 7",
    },
    Case {
        class: "unknown memory level",
        remove: "level = \"CTM\"",
        insert: "level = \"HBM\"",
        field: "memory[1].level",
        detail: "unknown memory level `HBM`",
    },
    Case {
        class: "out-of-order memory levels",
        remove: "level = \"CTM\"",
        insert: "level = \"EMEM\"",
        field: "memory[1].level",
        detail: "fastest-first",
    },
    Case {
        class: "oversized EMEM cache",
        remove: "capacity_bytes = 3145728",
        insert: "capacity_bytes = 4294967296",
        field: "memory_cache.capacity_bytes",
        detail: "smaller than EMEM",
    },
    Case {
        class: "wrong scalar type",
        remove: "count = 60",
        insert: "count = \"many\"",
        field: "cores.count",
        detail: "expected an integer",
    },
    Case {
        class: "unknown accelerator variant",
        remove: "op = \"crc\"",
        insert: "op = \"crc\"\nvariant = \"crc31-bogus\"",
        field: "accelerator[1].variant",
        detail: "unknown accelerator variant `crc31-bogus`",
    },
    Case {
        class: "accelerator variant from the wrong unit",
        remove: "op = \"crc\"",
        insert: "op = \"crc\"\nvariant = \"lpm-w24\"",
        field: "accelerator[1].variant",
        detail: "lpm algorithm, not usable by a crc unit",
    },
    Case {
        class: "non-string accelerator variant",
        remove: "op = \"crc\"",
        insert: "op = \"crc\"\nvariant = 32",
        field: "accelerator[1].variant",
        detail: "expected a string",
    },
];

fn mutate(c: &Case) -> String {
    assert!(
        BASE.contains(c.remove),
        "case `{}` mutates text absent from the base manifest",
        c.class
    );
    BASE.replacen(c.remove, c.insert, 1)
}

#[test]
fn every_invalid_class_names_its_field_path() {
    for c in CASES {
        let text = mutate(c);
        let err = Manifest::parse("case.toml", &text).expect_err(c.class);
        assert_eq!(
            err.field, c.field,
            "{}: wrong field path (detail: {})",
            c.class, err.detail
        );
        assert!(
            err.detail.contains(c.detail),
            "{}: detail `{}` should contain `{}`",
            c.class,
            err.detail,
            c.detail
        );
        assert_eq!(err.origin, "case.toml", "{}", c.class);
        // The Display form names both the origin and the field, so a
        // CLI user sees where to look without a debugger.
        let shown = err.to_string();
        assert!(shown.contains("case.toml") && shown.contains(c.field), "{shown}");
    }
}

#[test]
fn syntax_errors_surface_as_typed_errors_too() {
    let err = Manifest::parse("bad.toml", "cores = [1, 2]\n").expect_err("not in the subset");
    assert_eq!(err.field, "(syntax)");
    assert!(err.detail.contains("line 1"), "{}", err.detail);

    let err: ManifestError =
        Manifest::load("/nonexistent/device.toml").expect_err("missing file");
    assert_eq!(err.field, "(io)");
}

#[test]
fn all_builtins_load_and_roundtrip() {
    assert_eq!(builtins().len(), 4, "expected four shipped devices");
    for b in builtins() {
        let m = b.manifest();
        assert_eq!(m.schema_version, clara_hal::SCHEMA_VERSION);
        assert_eq!(m.memory.len(), 4);
        assert!(!m.ports.is_empty());
        // Lowering is a pure function of the manifest.
        assert_eq!(&m.nic_config(), b.nic());
        // The simulator's own hierarchy invariant holds for every device.
        let nic = b.nic();
        for w in nic.levels.windows(2) {
            assert!(w[0].latency < w[1].latency, "{}", b.name());
            assert!(w[0].capacity < w[1].capacity, "{}", b.name());
            assert!(w[0].bandwidth > w[1].bandwidth, "{}", b.name());
        }
    }
    // Names are unique — the serve router and CLI key on them.
    let mut names = builtin_names();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), builtins().len());
}

#[test]
fn omitted_variants_resolve_to_catalog_defaults() {
    // Pre-catalog manifests (no `variant` keys anywhere) resolve to the
    // per-unit defaults and lower unchanged.
    let b = DeviceBackend::parse("base.toml", BASE).expect("base is valid");
    assert_eq!(
        b.manifest().menu(),
        [("checksum", "csum-fold16"), ("crc", "crc32-ieee"), ("lpm-cam", "lpm-w32")]
    );
    for (_, v) in b.manifest().menu() {
        assert_eq!(clara_accel::lookup(v).expect("catalog name").cycle_scale, 1.0);
    }
}

#[test]
fn declared_variant_scales_the_lowered_costs() {
    let base = DeviceBackend::parse("base.toml", BASE).expect("valid");
    let widened = BASE.replacen(
        "op = \"crc\"",
        "op = \"crc\"\nvariant = \"crc64-ecma\"",
        1,
    );
    let wide = DeviceBackend::parse("wide.toml", &widened).expect("valid");
    assert_eq!(wide.manifest().crc.variant, "crc64-ecma");
    // crc64-ecma doubles the per-iteration cost; everything else is
    // untouched by the CRC variant.
    assert_eq!(
        wide.nic().crc_accel_per_iter,
        base.nic().crc_accel_per_iter * 2.0
    );
    assert_eq!(wide.nic().crc_accel_base, base.nic().crc_accel_base);
    assert_eq!(wide.nic().csum_accel_cycles, base.nic().csum_accel_cycles);
    // The variant is part of the manifest content, so it must show up in
    // the fingerprint (cache keys may never conflate the two devices).
    assert_ne!(wide.fingerprint(), base.fingerprint());
}

#[test]
fn shipped_dpu_declares_a_non_default_crc_variant() {
    // The cross-device accelerator delta pinned by the backend-matrix
    // golden comes from this menu entry.
    let dpu = clara_hal::builtin("dpu-offpath").expect("shipped");
    assert_eq!(dpu.manifest().crc.variant, "crc64-ecma");
    assert_eq!(dpu.nic().crc_accel_per_iter, 0.6);
}

#[test]
fn valid_mutants_still_load() {
    // Sanity check on the mutation harness itself: the unmodified base
    // and a benign edit both validate.
    let b = DeviceBackend::parse("base.toml", BASE).expect("base is valid");
    assert_eq!(b.name(), "agilio-cx");
    let benign = BASE.replacen("count = 60", "count = 61", 1);
    let b = DeviceBackend::parse("benign.toml", &benign).expect("benign edit is valid");
    assert_eq!(b.nic().cores, 61);
}
