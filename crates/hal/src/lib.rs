//! `clara-hal`: the NIC hardware-abstraction layer.
//!
//! The paper's offloading insights are claimed *per device*, yet the
//! simulator historically profiled against one baked-in Netronome-like
//! [`NicConfig`]. This crate turns the target device into a first-class,
//! data-driven axis:
//!
//! - a **versioned, self-describing manifest format** ([`Manifest`])
//!   covering core count/clock, the memory-level table, the accelerator
//!   table with per-op cycle costs, and the port map, parsed from
//!   on-disk TOML and schema-validated at load with typed,
//!   field-path-carrying errors ([`ManifestError`]);
//! - a [`Backend`] trait plus the concrete [`DeviceBackend`], pairing a
//!   validated manifest with its lowered `NicConfig` and a content
//!   fingerprint (the engine folds it into cache keys, so a disk cache
//!   never serves one device's profile to another);
//! - **built-in devices** compiled into the binary: the historical
//!   default as `agilio-cx` (byte-identical to `NicConfig::default()`),
//!   a many-wimpy-core on-path device, an off-path DPU, and a
//!   deliberately accelerator-poor device.
//!
//! Execution semantics never depend on the backend — only profiles and
//! predictions do. The workspace's backend-invariance suite
//! (`tests/proptest_cross.rs`, `clara difftest --backends`) holds the
//! HAL to that contract.

use std::path::Path;
use std::sync::OnceLock;

use nic_sim::NicConfig;

pub mod toml;

mod manifest;

pub use manifest::{
    ChecksumAccel, CrcAccel, DeviceClass, IoSpec, LpmCam, Manifest, ManifestError, MemCache,
    MemRow, PortSpec, VendorLib, SCHEMA_VERSION,
};

/// Name of the default backend (the historical baked-in device).
pub const DEFAULT_BACKEND: &str = "agilio-cx";

/// A target NIC device: a validated manifest, its lowered simulator
/// configuration, and a stable content fingerprint.
pub trait Backend {
    /// Device name (the manifest's `name` field).
    fn name(&self) -> &str;
    /// The validated manifest.
    fn manifest(&self) -> &Manifest;
    /// The lowered simulator configuration.
    fn nic(&self) -> &NicConfig;
    /// Content fingerprint of the manifest; equal devices ⇒ equal
    /// fingerprints. Cache keys must incorporate it.
    fn fingerprint(&self) -> u64;
}

/// A backend built from a device manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceBackend {
    manifest: Manifest,
    nic: NicConfig,
    fingerprint: u64,
}

impl DeviceBackend {
    /// Builds a backend from an already validated manifest.
    pub fn from_manifest(manifest: Manifest) -> DeviceBackend {
        let nic = manifest.nic_config();
        let fingerprint = manifest.fingerprint();
        DeviceBackend {
            manifest,
            nic,
            fingerprint,
        }
    }

    /// Parses, validates, and lowers a manifest document.
    ///
    /// # Errors
    ///
    /// Propagates [`ManifestError`] from [`Manifest::parse`].
    pub fn parse(origin: &str, text: &str) -> Result<DeviceBackend, ManifestError> {
        Ok(DeviceBackend::from_manifest(Manifest::parse(origin, text)?))
    }

    /// Loads, validates, and lowers a manifest file.
    ///
    /// # Errors
    ///
    /// Propagates [`ManifestError`] from [`Manifest::load`].
    pub fn load(path: impl AsRef<Path>) -> Result<DeviceBackend, ManifestError> {
        Ok(DeviceBackend::from_manifest(Manifest::load(path)?))
    }
}

impl Backend for DeviceBackend {
    fn name(&self) -> &str {
        &self.manifest.name
    }

    fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    fn nic(&self) -> &NicConfig {
        &self.nic
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

static BUILTINS: OnceLock<Vec<DeviceBackend>> = OnceLock::new();

/// All built-in device backends, default ([`DEFAULT_BACKEND`]) first.
pub fn builtins() -> &'static [DeviceBackend] {
    BUILTINS.get_or_init(|| {
        [
            ("builtin:agilio-cx", include_str!("../manifests/agilio-cx.toml")),
            (
                "builtin:wimpy-onpath",
                include_str!("../manifests/wimpy-onpath.toml"),
            ),
            (
                "builtin:dpu-offpath",
                include_str!("../manifests/dpu-offpath.toml"),
            ),
            (
                "builtin:accel-poor",
                include_str!("../manifests/accel-poor.toml"),
            ),
        ]
        .iter()
        .map(|(origin, text)| DeviceBackend::parse(origin, text).expect("built-in manifest is valid"))
        .collect()
    })
}

/// Looks up a built-in backend by device name.
pub fn builtin(name: &str) -> Option<&'static DeviceBackend> {
    builtins().iter().find(|b| b.name() == name)
}

/// Names of all built-in backends, default first.
pub fn builtin_names() -> Vec<&'static str> {
    builtins().iter().map(Backend::name).collect()
}

/// The default backend (the historical baked-in device).
pub fn default_backend() -> &'static DeviceBackend {
    builtin(DEFAULT_BACKEND).expect("default backend is built in")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_load_default_first() {
        let names = builtin_names();
        assert_eq!(
            names,
            vec!["agilio-cx", "wimpy-onpath", "dpu-offpath", "accel-poor"]
        );
        assert_eq!(builtins()[0].name(), DEFAULT_BACKEND);
        assert_eq!(default_backend().name(), DEFAULT_BACKEND);
        assert!(builtin("tofino9").is_none());
    }

    #[test]
    fn agilio_manifest_lowers_to_the_historical_default() {
        // The acceptance contract: the shipped agilio-cx manifest is the
        // pre-HAL baked-in device, field for field.
        assert_eq!(default_backend().nic(), &NicConfig::default());
    }

    #[test]
    fn builtin_fingerprints_are_distinct_and_stable() {
        let fps: Vec<u64> = builtins().iter().map(Backend::fingerprint).collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "two devices share a fingerprint");
            }
        }
        // Re-parsing the same manifest reproduces the same fingerprint.
        let again = DeviceBackend::parse(
            "builtin:agilio-cx",
            include_str!("../manifests/agilio-cx.toml"),
        )
        .expect("valid");
        assert_eq!(again.fingerprint(), default_backend().fingerprint());
    }

    #[test]
    fn builtin_devices_differ_where_it_matters() {
        let agilio = builtin("agilio-cx").unwrap().nic();
        let wimpy = builtin("wimpy-onpath").unwrap().nic();
        let dpu = builtin("dpu-offpath").unwrap().nic();
        let poor = builtin("accel-poor").unwrap().nic();
        // Every non-default device has a different clock or accelerator
        // story — the invariance suite relies on visible profile deltas.
        assert_ne!(agilio.freq_ghz, wimpy.freq_ghz);
        assert_ne!(agilio.freq_ghz, dpu.freq_ghz);
        assert_eq!(agilio.freq_ghz, poor.freq_ghz);
        assert_eq!(agilio.levels, poor.levels);
        assert_ne!(agilio.libcall_overhead, poor.libcall_overhead);
        assert_ne!(agilio.csum_accel_cycles, poor.csum_accel_cycles);
        assert_eq!(builtin("dpu-offpath").unwrap().manifest().class, DeviceClass::OffPath);
    }
}
