//! Device manifest schema: parsing, validation, and lowering to
//! [`NicConfig`].
//!
//! A manifest is a versioned, self-describing TOML document covering
//! everything the simulator and performance model consume: core
//! count/clock, the four-level memory table, the EMEM-fronting SRAM
//! cache, the accelerator table with per-op cycle costs and optional
//! catalog variant names (validated against [`clara_accel::CATALOG`]),
//! the vendor library call overhead, and the port map. Validation happens entirely
//! at load time; every violation is a typed [`ManifestError`] carrying
//! the dotted path of the offending field (`memory[2].latency_cycles`),
//! so a bad manifest names its own defect.

use std::fmt;
use std::path::Path;

use clara_accel::AccelUnit;
use nic_sim::{MemLevel, MemLevelCfg, NicConfig};
use serde::Serialize;

use crate::toml::{self, Table, Value};

/// The manifest schema version this build reads.
pub const SCHEMA_VERSION: i64 = 1;

/// A schema violation (or syntax/IO failure) in a device manifest.
///
/// `field` is the dotted path of the offending field — `cores.count`,
/// `memory[2].latency_cycles`, `port[1].id` — or one of the pseudo-paths
/// `(syntax)` / `(io)` for failures below the schema level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// Where the manifest came from: a file path or `builtin:<name>`.
    pub origin: String,
    /// Dotted path of the offending field.
    pub field: String,
    /// Human-readable reason.
    pub detail: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "manifest {}: field `{}`: {}",
            self.origin, self.field, self.detail
        )
    }
}

impl std::error::Error for ManifestError {}

/// Where the device sits relative to the host (λ-NIC / Cora taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeviceClass {
    /// Packets traverse the device on their way to the host.
    OnPath,
    /// The device is an offload target beside the host path (DPU-style).
    OffPath,
}

impl DeviceClass {
    /// The manifest spelling (`on-path` / `off-path`).
    pub fn as_str(self) -> &'static str {
        match self {
            DeviceClass::OnPath => "on-path",
            DeviceClass::OffPath => "off-path",
        }
    }
}

/// One row of the memory-level table, fastest-first.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MemRow {
    /// Level name (`CLS`, `CTM`, `IMEM`, `EMEM`).
    pub level: String,
    /// Capacity in bytes available for NF state.
    pub capacity_bytes: u64,
    /// Unloaded access latency in core cycles.
    pub latency_cycles: u32,
    /// Peak service rate in accesses per cycle (chip-wide).
    pub bandwidth: f64,
}

/// The SRAM cache fronting the DRAM-backed level.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MemCache {
    /// Cache capacity in bytes.
    pub capacity_bytes: u64,
    /// Hit latency in core cycles.
    pub hit_latency_cycles: u32,
    /// Service rate in accesses per cycle.
    pub bandwidth: f64,
}

/// Packet-IO ceilings.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IoSpec {
    /// Packet-IO engine ceiling in Mpps.
    pub max_mpps: f64,
    /// Line rate in Gbps.
    pub line_rate_gbps: f64,
}

/// Checksum engine costs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChecksumAccel {
    /// Accelerated cost in cycles.
    pub accel_cycles: u32,
    /// Software fallback cost in cycles.
    pub sw_cycles: u32,
    /// Catalog variant the engine implements (`csum-*`); defaults to the
    /// catalog's checksum default when the manifest omits `variant`.
    pub variant: String,
}

/// CRC engine costs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CrcAccel {
    /// Base cost per invocation, cycles.
    pub base_cycles: u32,
    /// Incremental cost per collapsed loop iteration.
    pub per_iter_cycles: f64,
    /// Catalog variant the engine implements (`crc*`); defaults to the
    /// catalog's CRC default when the manifest omits `variant`.
    pub variant: String,
}

/// LPM flow-cache (CAM) costs and capacity.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LpmCam {
    /// Hit cost in cycles.
    pub hit_cycles: u32,
    /// Insert cost in cycles.
    pub insert_cycles: u32,
    /// Capacity in flows.
    pub entries: u32,
    /// Catalog variant the block implements (`lpm-*`); defaults to the
    /// catalog's LPM default when the manifest omits `variant`.
    pub variant: String,
}

/// Vendor library call costs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VendorLib {
    /// Fixed per-call overhead in cycles.
    pub call_overhead_cycles: u32,
}

/// One physical port.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PortSpec {
    /// Port id, unique within the device.
    pub id: u32,
    /// Port speed in Gbps.
    pub speed_gbps: f64,
}

/// A fully validated device manifest.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Manifest {
    /// Schema version (always [`SCHEMA_VERSION`] after validation).
    pub schema_version: i64,
    /// Device name; backends are addressed by it.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// On-path or off-path device.
    pub class: DeviceClass,
    /// Number of packet-processing cores.
    pub cores: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Packet-IO ceilings.
    pub io: IoSpec,
    /// The four memory levels, fastest-first (CLS, CTM, IMEM, EMEM).
    pub memory: Vec<MemRow>,
    /// SRAM cache in front of the last (DRAM) level.
    pub memory_cache: MemCache,
    /// Checksum engine.
    pub checksum: ChecksumAccel,
    /// CRC engine.
    pub crc: CrcAccel,
    /// LPM flow cache.
    pub lpm_cam: LpmCam,
    /// Vendor library costs.
    pub vendor_lib: VendorLib,
    /// Port map.
    pub ports: Vec<PortSpec>,
}

/// Error-construction context: the manifest origin.
struct Cx<'a> {
    origin: &'a str,
}

impl Cx<'_> {
    fn err(&self, field: impl Into<String>, detail: impl Into<String>) -> ManifestError {
        ManifestError {
            origin: self.origin.to_string(),
            field: field.into(),
            detail: detail.into(),
        }
    }

    fn req<'t>(&self, t: &'t Table, parent: &str, key: &str) -> Result<&'t Value, ManifestError> {
        t.get(key)
            .ok_or_else(|| self.err(join(parent, key), "required field is missing"))
    }

    fn table<'t>(&self, t: &'t Table, parent: &str, key: &str) -> Result<&'t Table, ManifestError> {
        match self.req(t, parent, key)? {
            Value::Table(t) => Ok(t),
            other => Err(self.err(
                join(parent, key),
                format!("expected a table, got a {}", other.type_name()),
            )),
        }
    }

    fn rows<'t>(&self, t: &'t Table, key: &str) -> Result<Vec<&'t Table>, ManifestError> {
        match self.req(t, "", key)? {
            Value::Array(a) => a
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Table(t) => Ok(t),
                    other => Err(self.err(
                        format!("{key}[{i}]"),
                        format!("expected a table, got a {}", other.type_name()),
                    )),
                })
                .collect(),
            other => Err(self.err(
                key,
                format!("expected an array of tables, got a {}", other.type_name()),
            )),
        }
    }

    fn str_of(&self, t: &Table, parent: &str, key: &str) -> Result<String, ManifestError> {
        match self.req(t, parent, key)? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(self.err(
                join(parent, key),
                format!("expected a string, got a {}", other.type_name()),
            )),
        }
    }

    fn int_of(&self, t: &Table, parent: &str, key: &str) -> Result<i64, ManifestError> {
        match self.req(t, parent, key)? {
            Value::Int(i) => Ok(*i),
            other => Err(self.err(
                join(parent, key),
                format!("expected an integer, got a {}", other.type_name()),
            )),
        }
    }

    fn u32_of(&self, t: &Table, parent: &str, key: &str) -> Result<u32, ManifestError> {
        let i = self.int_of(t, parent, key)?;
        u32::try_from(i)
            .map_err(|_| self.err(join(parent, key), format!("{i} is out of range for u32")))
    }

    fn u64_of(&self, t: &Table, parent: &str, key: &str) -> Result<u64, ManifestError> {
        let i = self.int_of(t, parent, key)?;
        u64::try_from(i)
            .map_err(|_| self.err(join(parent, key), format!("{i} must be non-negative")))
    }

    fn f64_of(&self, t: &Table, parent: &str, key: &str) -> Result<f64, ManifestError> {
        match self.req(t, parent, key)? {
            Value::Float(f) => Ok(*f),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(i) => Ok(*i as f64),
            other => Err(self.err(
                join(parent, key),
                format!("expected a number, got a {}", other.type_name()),
            )),
        }
    }

    fn pos_f64(&self, t: &Table, parent: &str, key: &str) -> Result<f64, ManifestError> {
        let f = self.f64_of(t, parent, key)?;
        if !(f.is_finite() && f > 0.0) {
            return Err(self.err(join(parent, key), format!("{f} must be a positive number")));
        }
        Ok(f)
    }

    /// Resolves an accelerator row's optional `variant` key against the
    /// catalog: absent ⇒ the unit's default; present ⇒ must name a
    /// catalog entry of the matching unit.
    fn variant_of(&self, t: &Table, parent: &str, unit: AccelUnit) -> Result<String, ManifestError> {
        let name = match t.get("variant") {
            None => return Ok(clara_accel::default_for(unit).name.to_string()),
            Some(Value::Str(s)) => s.clone(),
            Some(other) => {
                return Err(self.err(
                    join(parent, "variant"),
                    format!("expected a string, got a {}", other.type_name()),
                ))
            }
        };
        let Some(v) = clara_accel::lookup(&name) else {
            return Err(self.err(
                join(parent, "variant"),
                format!(
                    "unknown accelerator variant `{name}` (catalog: {})",
                    clara_accel::names().join(", ")
                ),
            ));
        };
        if v.unit != unit {
            return Err(self.err(
                join(parent, "variant"),
                format!(
                    "variant `{name}` is a {} algorithm, not usable by a {} unit",
                    v.unit.name(),
                    unit.name()
                ),
            ));
        }
        Ok(name)
    }
}

fn join(parent: &str, key: &str) -> String {
    if parent.is_empty() {
        key.to_string()
    } else {
        format!("{parent}.{key}")
    }
}

impl Manifest {
    /// Parses and validates a manifest document.
    ///
    /// `origin` labels errors (a file path, or `builtin:<name>` for the
    /// shipped manifests).
    ///
    /// # Errors
    ///
    /// Returns a [`ManifestError`] naming the offending field path on
    /// any syntax error or schema violation.
    pub fn parse(origin: &str, text: &str) -> Result<Manifest, ManifestError> {
        let cx = Cx { origin };
        let root = toml::parse(text).map_err(|e| cx.err("(syntax)", e.to_string()))?;

        let schema_version = cx.int_of(&root, "", "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(cx.err(
                "schema_version",
                format!("unsupported schema version {schema_version} (this build reads {SCHEMA_VERSION})"),
            ));
        }
        let name = cx.str_of(&root, "", "name")?;
        if name.is_empty() {
            return Err(cx.err("name", "device name must be non-empty"));
        }
        let description = cx.str_of(&root, "", "description")?;
        let class = match cx.str_of(&root, "", "class")?.as_str() {
            "on-path" => DeviceClass::OnPath,
            "off-path" => DeviceClass::OffPath,
            other => {
                return Err(cx.err(
                    "class",
                    format!("unknown device class `{other}` (known: on-path, off-path)"),
                ))
            }
        };

        let cores_tbl = cx.table(&root, "", "cores")?;
        let cores = cx.u32_of(cores_tbl, "cores", "count")?;
        if cores == 0 {
            return Err(cx.err("cores.count", "a device needs at least one core"));
        }
        let freq_ghz = cx.pos_f64(cores_tbl, "cores", "freq_ghz")?;

        let io_tbl = cx.table(&root, "", "io")?;
        let io = IoSpec {
            max_mpps: cx.pos_f64(io_tbl, "io", "max_mpps")?,
            line_rate_gbps: cx.pos_f64(io_tbl, "io", "line_rate_gbps")?,
        };

        let memory = Self::parse_memory(&cx, &root)?;
        let emem = memory.last().expect("validated four levels");

        let cache_tbl = cx.table(&root, "", "memory_cache")?;
        let memory_cache = MemCache {
            capacity_bytes: cx.u64_of(cache_tbl, "memory_cache", "capacity_bytes")?,
            hit_latency_cycles: cx.u32_of(cache_tbl, "memory_cache", "hit_latency_cycles")?,
            bandwidth: cx.pos_f64(cache_tbl, "memory_cache", "bandwidth")?,
        };
        if memory_cache.capacity_bytes == 0 || memory_cache.capacity_bytes >= emem.capacity_bytes {
            return Err(cx.err(
                "memory_cache.capacity_bytes",
                format!(
                    "cache capacity {} must be positive and smaller than {} ({} bytes)",
                    memory_cache.capacity_bytes, emem.level, emem.capacity_bytes
                ),
            ));
        }
        if memory_cache.hit_latency_cycles == 0
            || memory_cache.hit_latency_cycles >= emem.latency_cycles
        {
            return Err(cx.err(
                "memory_cache.hit_latency_cycles",
                format!(
                    "cache hit latency {} must be positive and below the {} latency ({})",
                    memory_cache.hit_latency_cycles, emem.level, emem.latency_cycles
                ),
            ));
        }

        let (checksum, crc, lpm_cam) = Self::parse_accelerators(&cx, &root)?;

        let lib_tbl = cx.table(&root, "", "vendor_lib")?;
        let vendor_lib = VendorLib {
            call_overhead_cycles: cx.u32_of(lib_tbl, "vendor_lib", "call_overhead_cycles")?,
        };

        let ports = Self::parse_ports(&cx, &root)?;

        Ok(Manifest {
            schema_version,
            name,
            description,
            class,
            cores,
            freq_ghz,
            io,
            memory,
            memory_cache,
            checksum,
            crc,
            lpm_cam,
            vendor_lib,
            ports,
        })
    }

    fn parse_memory(cx: &Cx<'_>, root: &Table) -> Result<Vec<MemRow>, ManifestError> {
        let rows = cx.rows(root, "memory")?;
        if rows.len() != MemLevel::ALL.len() {
            return Err(cx.err(
                "memory",
                format!(
                    "expected {} levels (CLS, CTM, IMEM, EMEM), got {}",
                    MemLevel::ALL.len(),
                    rows.len()
                ),
            ));
        }
        let mut memory = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let parent = format!("memory[{i}]");
            let level = cx.str_of(row, &parent, "level")?;
            let expected = MemLevel::ALL[i].name();
            if level != expected {
                let known = MemLevel::from_name(&level).is_some();
                let detail = if known {
                    format!("levels must be declared fastest-first: expected `{expected}`, got `{level}`")
                } else {
                    format!("unknown memory level `{level}` (known: CLS, CTM, IMEM, EMEM)")
                };
                return Err(cx.err(join(&parent, "level"), detail));
            }
            let entry = MemRow {
                level,
                capacity_bytes: cx.u64_of(row, &parent, "capacity_bytes")?,
                latency_cycles: cx.u32_of(row, &parent, "latency_cycles")?,
                bandwidth: cx.pos_f64(row, &parent, "bandwidth")?,
            };
            if entry.capacity_bytes == 0 {
                return Err(cx.err(
                    join(&parent, "capacity_bytes"),
                    "level capacity must be positive",
                ));
            }
            if entry.latency_cycles == 0 {
                return Err(cx.err(
                    join(&parent, "latency_cycles"),
                    "level latency must be positive",
                ));
            }
            if let Some(prev) = memory.last() {
                let prev: &MemRow = prev;
                if entry.latency_cycles <= prev.latency_cycles {
                    return Err(cx.err(
                        join(&parent, "latency_cycles"),
                        format!(
                            "hierarchy must slow down level to level: {} latency {} ≤ {} latency {}",
                            entry.level, entry.latency_cycles, prev.level, prev.latency_cycles
                        ),
                    ));
                }
                if entry.capacity_bytes <= prev.capacity_bytes {
                    return Err(cx.err(
                        join(&parent, "capacity_bytes"),
                        format!(
                            "hierarchy must grow level to level: {} capacity {} ≤ {} capacity {}",
                            entry.level, entry.capacity_bytes, prev.level, prev.capacity_bytes
                        ),
                    ));
                }
                if entry.bandwidth >= prev.bandwidth {
                    return Err(cx.err(
                        join(&parent, "bandwidth"),
                        format!(
                            "hierarchy bandwidth must shrink level to level: {} bandwidth {} ≥ {} bandwidth {}",
                            entry.level, entry.bandwidth, prev.level, prev.bandwidth
                        ),
                    ));
                }
            }
            memory.push(entry);
        }
        Ok(memory)
    }

    fn parse_accelerators(
        cx: &Cx<'_>,
        root: &Table,
    ) -> Result<(ChecksumAccel, CrcAccel, LpmCam), ManifestError> {
        let rows = cx.rows(root, "accelerator")?;
        let mut checksum = None;
        let mut crc = None;
        let mut lpm = None;
        for (i, row) in rows.iter().enumerate() {
            let parent = format!("accelerator[{i}]");
            let op = cx.str_of(row, &parent, "op")?;
            match op.as_str() {
                "checksum" => {
                    if checksum.is_some() {
                        return Err(cx.err(join(&parent, "op"), "duplicate accelerator op `checksum`"));
                    }
                    checksum = Some(ChecksumAccel {
                        accel_cycles: cx.u32_of(row, &parent, "accel_cycles")?,
                        sw_cycles: cx.u32_of(row, &parent, "sw_cycles")?,
                        variant: cx.variant_of(row, &parent, AccelUnit::Checksum)?,
                    });
                }
                "crc" => {
                    if crc.is_some() {
                        return Err(cx.err(join(&parent, "op"), "duplicate accelerator op `crc`"));
                    }
                    crc = Some(CrcAccel {
                        base_cycles: cx.u32_of(row, &parent, "base_cycles")?,
                        per_iter_cycles: cx.f64_of(row, &parent, "per_iter_cycles")?,
                        variant: cx.variant_of(row, &parent, AccelUnit::Crc)?,
                    });
                }
                "lpm-cam" => {
                    if lpm.is_some() {
                        return Err(cx.err(join(&parent, "op"), "duplicate accelerator op `lpm-cam`"));
                    }
                    let entry = LpmCam {
                        hit_cycles: cx.u32_of(row, &parent, "hit_cycles")?,
                        insert_cycles: cx.u32_of(row, &parent, "insert_cycles")?,
                        entries: cx.u32_of(row, &parent, "entries")?,
                        variant: cx.variant_of(row, &parent, AccelUnit::Lpm)?,
                    };
                    if entry.entries == 0 {
                        return Err(cx.err(
                            join(&parent, "entries"),
                            "flow cache needs at least one entry",
                        ));
                    }
                    lpm = Some(entry);
                }
                other => {
                    return Err(cx.err(
                        join(&parent, "op"),
                        format!("unknown accelerator op `{other}` (known: checksum, crc, lpm-cam)"),
                    ))
                }
            }
        }
        let checksum =
            checksum.ok_or_else(|| cx.err("accelerator", "missing required op `checksum`"))?;
        let crc = crc.ok_or_else(|| cx.err("accelerator", "missing required op `crc`"))?;
        let lpm = lpm.ok_or_else(|| cx.err("accelerator", "missing required op `lpm-cam`"))?;
        Ok((checksum, crc, lpm))
    }

    fn parse_ports(cx: &Cx<'_>, root: &Table) -> Result<Vec<PortSpec>, ManifestError> {
        let rows = cx.rows(root, "port")?;
        if rows.is_empty() {
            return Err(cx.err("port", "a device needs at least one port"));
        }
        let mut ports: Vec<PortSpec> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let parent = format!("port[{i}]");
            let id = cx.u32_of(row, &parent, "id")?;
            if ports.iter().any(|p| p.id == id) {
                return Err(cx.err(join(&parent, "id"), format!("duplicate port id {id}")));
            }
            ports.push(PortSpec {
                id,
                speed_gbps: cx.pos_f64(row, &parent, "speed_gbps")?,
            });
        }
        Ok(ports)
    }

    /// Loads and validates a manifest from disk.
    ///
    /// # Errors
    ///
    /// IO failures surface on the `(io)` pseudo-field; everything else
    /// as in [`Manifest::parse`].
    pub fn load(path: impl AsRef<Path>) -> Result<Manifest, ManifestError> {
        let path = path.as_ref();
        let origin = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|e| ManifestError {
            origin: origin.clone(),
            field: "(io)".into(),
            detail: e.to_string(),
        })?;
        Manifest::parse(&origin, &text)
    }

    /// The device's accelerator menu: `(op, catalog variant)` per unit.
    pub fn menu(&self) -> [(&'static str, &str); 3] {
        [
            ("checksum", self.checksum.variant.as_str()),
            ("crc", self.crc.variant.as_str()),
            ("lpm-cam", self.lpm_cam.variant.as_str()),
        ]
    }

    /// Lowers the manifest to the simulator's [`NicConfig`].
    ///
    /// Accelerator cycle costs are scaled by the declared catalog
    /// variant's [`clara_accel::Variant::cycle_scale`]; the per-unit
    /// defaults scale by 1.0, so manifests written before the catalog
    /// existed lower to the same configuration as ever.
    pub fn nic_config(&self) -> NicConfig {
        let lvl = |i: usize| MemLevelCfg {
            capacity: self.memory[i].capacity_bytes,
            latency: self.memory[i].latency_cycles,
            bandwidth: self.memory[i].bandwidth,
        };
        let scale_of = |name: &str| clara_accel::lookup(name).map_or(1.0, |v| v.cycle_scale);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let scaled = |cycles: u32, s: f64| (f64::from(cycles) * s).round() as u32;
        let csum_s = scale_of(&self.checksum.variant);
        let crc_s = scale_of(&self.crc.variant);
        let lpm_s = scale_of(&self.lpm_cam.variant);
        NicConfig {
            cores: self.cores,
            freq_ghz: self.freq_ghz,
            levels: [lvl(0), lvl(1), lvl(2), lvl(3)],
            emem_cache_bytes: self.memory_cache.capacity_bytes,
            emem_cache_latency: self.memory_cache.hit_latency_cycles,
            emem_cache_bandwidth: self.memory_cache.bandwidth,
            max_io_mpps: self.io.max_mpps,
            line_rate_gbps: self.io.line_rate_gbps,
            csum_sw_cycles: self.checksum.sw_cycles,
            csum_accel_cycles: scaled(self.checksum.accel_cycles, csum_s),
            crc_accel_base: self.crc.base_cycles,
            crc_accel_per_iter: self.crc.per_iter_cycles * crc_s,
            cam_hit_cycles: scaled(self.lpm_cam.hit_cycles, lpm_s),
            cam_insert_cycles: scaled(self.lpm_cam.insert_cycles, lpm_s),
            cam_entries: self.lpm_cam.entries,
            libcall_overhead: self.vendor_lib.call_overhead_cycles,
        }
    }

    /// Content fingerprint: equal manifests ⇒ equal fingerprints. Used
    /// as the backend component of engine cache keys, so two devices
    /// never share a cached profile.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("manifests serialize");
        nic_sim::fingerprint_bytes(json.as_bytes())
    }
}
