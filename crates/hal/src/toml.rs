//! A minimal TOML-subset parser for device manifests.
//!
//! The build environment vendors no TOML crate, and manifests only need
//! a small, regular slice of the language: bare-key `key = value` pairs,
//! `[table]` headers (dotted paths allowed), `[[array-of-tables]]`
//! headers, and scalar values (integers, floats, strings, booleans).
//! Comments (`#`) and blank lines are allowed anywhere. Anything else is
//! a parse error carrying the 1-based line number, which the manifest
//! loader surfaces as a schema error on the `(syntax)` pseudo-field.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer (`42`, `1_000`).
    Int(i64),
    /// A float (`1.25`).
    Float(f64),
    /// A quoted string (`"agilio-cx"`).
    Str(String),
    /// A boolean (`true` / `false`).
    Bool(bool),
    /// A table (`[section]`, or the document root).
    Table(Table),
    /// An array of tables (`[[entry]]` repeated).
    Array(Vec<Value>),
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "boolean",
            Value::Table(_) => "table",
            Value::Array(_) => "array",
        }
    }
}

/// A TOML table: key → value, iterated in sorted key order.
pub type Table = BTreeMap<String, Value>;

/// A TOML-level syntax error (as opposed to a schema violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, detail: impl Into<String>) -> ParseError {
    ParseError {
        line,
        detail: detail.into(),
    }
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Walks `path` from `root`, creating intermediate tables and descending
/// into the last element of arrays-of-tables.
fn navigate<'a>(root: &'a mut Table, path: &[String], line: usize) -> Result<&'a mut Table, ParseError> {
    let mut cur = root;
    for seg in path {
        let entry = cur
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        cur = match entry {
            Value::Table(t) => t,
            Value::Array(a) => match a.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return Err(err(line, format!("`{seg}` is not a table of tables"))),
            },
            other => {
                return Err(err(
                    line,
                    format!("`{seg}` is a {}, not a table", other.type_name()),
                ))
            }
        };
    }
    Ok(cur)
}

fn parse_header_path(inner: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let segs: Vec<String> = inner.split('.').map(|s| s.trim().to_string()).collect();
    for s in &segs {
        if !is_bare_key(s) {
            return Err(err(line, format!("invalid table name segment `{s}`")));
        }
    }
    Ok(segs)
}

fn parse_scalar(raw: &str, line: usize) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        // Quoted string: scan for the closing quote, honouring \" and \\.
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                None => return Err(err(line, "unterminated string")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => {
                        return Err(err(line, format!("unsupported string escape `\\{other:?}`")))
                    }
                },
                Some(c) => out.push(c),
            }
        }
        let tail = chars.as_str().trim();
        if !tail.is_empty() && !tail.starts_with('#') {
            return Err(err(line, format!("trailing characters after string: `{tail}`")));
        }
        return Ok(Value::Str(out));
    }
    // Everything else has no embedded '#': strip inline comments.
    let raw = raw.split('#').next().unwrap_or("").trim();
    match raw {
        "" => return Err(err(line, "missing value")),
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = raw.chars().filter(|&c| c != '_').collect();
    if let Ok(i) = digits.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = digits.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::Float(f));
        }
        return Err(err(line, format!("non-finite number `{raw}`")));
    }
    Err(err(line, format!("unparseable value `{raw}`")))
}

/// Parses a manifest document into its root table.
///
/// # Errors
///
/// Returns [`ParseError`] (with a 1-based line number) on any construct
/// outside the supported subset.
pub fn parse(text: &str) -> Result<Table, ParseError> {
    let mut root = Table::new();
    let mut current: Vec<String> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw_line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(inner) = trimmed.strip_prefix("[[") {
            let inner = inner
                .split('#')
                .next()
                .unwrap_or("")
                .trim()
                .strip_suffix("]]")
                .ok_or_else(|| err(line, "malformed `[[table]]` header"))?;
            let segs = parse_header_path(inner.trim(), line)?;
            let (last, parent) = segs.split_last().expect("non-empty header path");
            let parent_tbl = navigate(&mut root, parent, line)?;
            let entry = parent_tbl
                .entry(last.clone())
                .or_insert_with(|| Value::Array(Vec::new()));
            match entry {
                Value::Array(a) => a.push(Value::Table(Table::new())),
                other => {
                    return Err(err(
                        line,
                        format!("`{last}` is a {}, not an array of tables", other.type_name()),
                    ))
                }
            }
            current = segs;
        } else if let Some(inner) = trimmed.strip_prefix('[') {
            let inner = inner
                .split('#')
                .next()
                .unwrap_or("")
                .trim()
                .strip_suffix(']')
                .ok_or_else(|| err(line, "malformed `[table]` header"))?;
            let segs = parse_header_path(inner.trim(), line)?;
            navigate(&mut root, &segs, line)?;
            current = segs;
        } else {
            let (key, value) = trimmed
                .split_once('=')
                .ok_or_else(|| err(line, format!("expected `key = value`, got `{trimmed}`")))?;
            let key = key.trim();
            if !is_bare_key(key) {
                return Err(err(line, format!("invalid key `{key}`")));
            }
            let value = parse_scalar(value, line)?;
            let tbl = navigate(&mut root, &current, line)?;
            if tbl.insert(key.to_string(), value).is_some() {
                return Err(err(line, format!("duplicate key `{key}`")));
            }
        }
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
# top comment
schema_version = 1
name = "dev" # inline comment
flag = true

[cores]
count = 1_000
freq_ghz = 1.25

[[port]]
id = 0

[[port]]
id = 1
"#;
        let t = parse(doc).expect("parses");
        assert_eq!(t["schema_version"], Value::Int(1));
        assert_eq!(t["name"], Value::Str("dev".into()));
        assert_eq!(t["flag"], Value::Bool(true));
        let Value::Table(cores) = &t["cores"] else {
            panic!("cores is a table")
        };
        assert_eq!(cores["count"], Value::Int(1000));
        assert_eq!(cores["freq_ghz"], Value::Float(1.25));
        let Value::Array(ports) = &t["port"] else {
            panic!("port is an array")
        };
        assert_eq!(ports.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb =\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.detail.contains("duplicate"), "{e}");
        let e = parse("x = \"open\n").unwrap_err();
        assert!(e.detail.contains("unterminated"), "{e}");
    }

    #[test]
    fn dotted_headers_nest() {
        let t = parse("[a.b]\nc = 2\n").expect("parses");
        let Value::Table(a) = &t["a"] else { panic!() };
        let Value::Table(b) = &a["b"] else { panic!() };
        assert_eq!(b["c"], Value::Int(2));
    }
}
