//! Property tests for the analytic performance model (`solve_perf`).
//!
//! The model must behave like hardware: adding cores never reduces
//! sustained throughput, and latency is always a positive finite number,
//! for any ported corpus element under any workload shape.

use proptest::prelude::*;

use nic_sim::{profile_workload, solve_perf, NicConfig, PortConfig, WorkloadProfile};
use trafgen::{Trace, WorkloadSpec};

/// A profile for one corpus element under one of several workload shapes.
fn profile(elem: usize, workload: usize, seed: u64) -> WorkloadProfile {
    let corpus = click_model::corpus();
    let e = &corpus[elem % corpus.len()];
    let spec = match workload % 4 {
        0 => WorkloadSpec::large_flows(),
        1 => WorkloadSpec::small_flows().with_flows(1024),
        2 => WorkloadSpec::min_size(),
        _ => WorkloadSpec::imix(),
    };
    let trace = Trace::generate(&spec, 80, seed);
    profile_workload(&e.module, &trace, &PortConfig::naive(), &NicConfig::default(), |_| {})
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Throughput is monotone non-decreasing in the core count.
    #[test]
    fn throughput_never_drops_with_more_cores(
        elem in 0usize..64,
        workload in 0usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let wp = profile(elem, workload, seed);
        let mut prev = 0.0f64;
        for cores in 1..=cfg.cores {
            let p = solve_perf(&wp, &cfg, &port, cores);
            prop_assert!(
                p.throughput_mpps + 1e-9 >= prev,
                "throughput dropped at {} cores: {} -> {}",
                cores, prev, p.throughput_mpps
            );
            prev = p.throughput_mpps;
        }
    }

    /// Latency is positive and finite at every operating point.
    #[test]
    fn latency_is_positive_and_finite(
        elem in 0usize..64,
        workload in 0usize..4,
        seed in 0u64..1000,
        cores in 1u32..60,
    ) {
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let wp = profile(elem, workload, seed);
        let p = solve_perf(&wp, &cfg, &port, cores.min(cfg.cores));
        prop_assert!(p.latency_us.is_finite(), "latency not finite: {}", p.latency_us);
        prop_assert!(p.latency_us > 0.0, "latency not positive: {}", p.latency_us);
        prop_assert!(p.throughput_mpps.is_finite() && p.throughput_mpps > 0.0);
    }
}
