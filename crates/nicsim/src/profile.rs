//! Converting execution traces into per-packet NIC cost profiles.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use std::sync::OnceLock;

use clara_obs as obs;
use click_model::{ApiEvent, Event, ExecTrace, Machine};
use nf_ir::{ApiCall, GlobalId, Module};
use nfcc::NicModule;
use serde::{Deserialize, Serialize};
use trafgen::Trace;

use crate::config::{MemLevel, NicConfig};
use crate::port::{Accel, PortConfig};

/// Memory channels used by the performance model: the four hierarchy
/// levels plus the EMEM cache (hits are served by the cache's SRAM).
pub const CHANNELS: usize = 5;
/// Channel index of the EMEM SRAM cache.
pub const CH_EMEM_CACHE: usize = 4;

/// Process-global simulator counters, registered once and cached so the
/// profiling hot loop only touches atomics.
struct SimCounters {
    profile_runs: obs::Counter,
    pkts_profiled: obs::Counter,
    compute_cycles: obs::Counter,
    /// Per-hierarchy-level access totals, indexed by [`MemLevel::index`].
    mem: [obs::Counter; 4],
    pkt_drops: obs::Counter,
    record_runs: obs::Counter,
    pkts_recorded: obs::Counter,
}

fn counters() -> &'static SimCounters {
    static CELL: OnceLock<SimCounters> = OnceLock::new();
    CELL.get_or_init(|| SimCounters {
        profile_runs: obs::counter("nicsim.profile_runs"),
        pkts_profiled: obs::counter("nicsim.pkts_profiled"),
        compute_cycles: obs::counter("nicsim.compute_cycles"),
        mem: [
            obs::counter("nicsim.mem.cls"),
            obs::counter("nicsim.mem.ctm"),
            obs::counter("nicsim.mem.imem"),
            obs::counter("nicsim.mem.emem"),
        ],
        pkt_drops: obs::counter("nicsim.pkt_drops"),
        record_runs: obs::counter("nicsim.record_runs"),
        pkts_recorded: obs::counter("nicsim.pkts_recorded"),
    })
}

impl SimCounters {
    /// Records one profiling run from its raw (pre-normalization) sums.
    fn record_profile(&self, agg: &WorkloadProfile, port: &PortConfig, drops: f64) {
        self.profile_runs.incr();
        self.pkts_profiled.add(agg.pkts as u64);
        self.compute_cycles.add(agg.compute.round() as u64);
        let mut levels = agg.fixed_accesses;
        for (g, a) in &agg.global_access {
            levels[port.level_of(*g).index()] += a;
        }
        for (c, total) in self.mem.iter().zip(levels) {
            c.add(total.round() as u64);
        }
        self.pkt_drops.add(drops.round() as u64);
    }
}

/// Costs of processing one packet on the NIC.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PacketProfile {
    /// Core compute cycles (instruction issue + library + accelerators).
    pub compute_cycles: f64,
    /// Fixed (non-global) memory accesses per level — packet data, egress.
    pub fixed_accesses: [f64; 4],
    /// Stateful accesses by global (level assigned later by placement).
    pub global_access: BTreeMap<GlobalId, f64>,
    /// Packets dropped by the NF (`PktDrop` library calls).
    pub drops: f64,
}

/// Aggregated workload profile: what the performance model consumes.
///
/// Stateful accesses are kept *per global*, not per level, so different
/// placements can be evaluated analytically from one profiling run — the
/// property Clara's placement ILP (Section 4.3) and the paper's expert
/// exhaustive sweep (Section 5.8) both rely on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Packets profiled.
    pub pkts: usize,
    /// Mean compute cycles per packet.
    pub compute: f64,
    /// Mean fixed (non-global) accesses per packet per hierarchy level.
    pub fixed_accesses: [f64; 4],
    /// Mean per-packet stateful accesses by global.
    pub global_access: BTreeMap<GlobalId, f64>,
    /// Touched bytes per global over the workload (working set).
    pub working_set: BTreeMap<GlobalId, u64>,
    /// Mean wire packet size in bytes.
    pub mean_pkt_size: f64,
}

impl WorkloadProfile {
    /// Mean per-packet accesses per level under a placement, EMEM not yet
    /// split by the cache.
    pub fn level_accesses(&self, port: &PortConfig) -> [f64; 4] {
        let mut acc = self.fixed_accesses;
        for (g, a) in &self.global_access {
            acc[port.level_of(*g).index()] += a;
        }
        acc
    }

    /// Splits per-packet EMEM accesses into `(cache_hits, misses)`,
    /// allocating the EMEM cache to globals in proportion to access share.
    pub fn emem_split(&self, cfg: &NicConfig, port: &PortConfig) -> (f64, f64) {
        let emem: Vec<(GlobalId, f64)> = self
            .global_access
            .iter()
            .filter(|(g, _)| port.level_of(**g) == MemLevel::Emem)
            .map(|(g, a)| (*g, *a))
            .collect();
        let total: f64 = emem.iter().map(|(_, a)| a).sum();
        if total <= 0.0 {
            return (0.0, 0.0);
        }
        let mut hits = 0.0;
        for (g, a) in &emem {
            let ws = self.working_set.get(g).copied().unwrap_or(0).max(1);
            let alloc = cfg.emem_cache_bytes as f64 * (a / total);
            let hit_rate = (alloc / ws as f64).min(1.0);
            hits += a * hit_rate;
        }
        (hits, total - hits)
    }

    /// Per-packet demand on each of the model's memory channels.
    pub fn channel_demand(&self, cfg: &NicConfig, port: &PortConfig) -> [f64; CHANNELS] {
        let acc = self.level_accesses(port);
        let (hits, misses) = self.emem_split(cfg, port);
        [acc[0], acc[1], acc[2], misses, hits]
    }

    /// Total per-packet accesses to one global (any level).
    pub fn accesses_to(&self, g: GlobalId) -> f64 {
        self.global_access.get(&g).copied().unwrap_or(0.0)
    }

    /// Compares the *access* portion of two profiles, ignoring `compute`.
    ///
    /// `clara difftest` uses this as its profile oracle between the raw
    /// and the `nf_ir::opt`-optimized module: optimization legitimately
    /// removes issue cycles (compute), but every memory-facing signal the
    /// insights consume — fixed accesses, per-global access frequencies,
    /// working sets, packet counts and sizes — must be bit-identical,
    /// because both are derived from the same `State`/`Pkt`/`Api` event
    /// stream. Returns a description of the first mismatch, or `None`
    /// when the profiles agree.
    pub fn access_divergence_from(&self, other: &WorkloadProfile) -> Option<String> {
        if self.pkts != other.pkts {
            return Some(format!("pkts: {} vs {}", self.pkts, other.pkts));
        }
        if self.mean_pkt_size != other.mean_pkt_size {
            return Some(format!(
                "mean_pkt_size: {} vs {}",
                self.mean_pkt_size, other.mean_pkt_size
            ));
        }
        if self.fixed_accesses != other.fixed_accesses {
            return Some(format!(
                "fixed_accesses: {:?} vs {:?}",
                self.fixed_accesses, other.fixed_accesses
            ));
        }
        if self.global_access != other.global_access {
            return Some(format!(
                "global_access: {:?} vs {:?}",
                self.global_access, other.global_access
            ));
        }
        if self.working_set != other.working_set {
            return Some(format!(
                "working_set: {:?} vs {:?}",
                self.working_set, other.working_set
            ));
        }
        None
    }
}

/// Interpreter traces recorded once and re-costed under many ports.
///
/// Execution traces are port-independent (porting changes *costs*, not
/// functional behaviour), so placement/coalescing sweeps record once and
/// re-cost cheaply.
#[derive(Debug, Clone)]
pub struct RecordedWorkload {
    entries: Vec<(u32, u16, ExecTrace)>,
}

impl RecordedWorkload {
    /// Builds a recorded workload from raw `(flow_id, size, trace)`
    /// entries (used by chain profiling, which records all stages in one
    /// interpreter pass).
    pub fn from_entries(entries: Vec<(u32, u16, ExecTrace)>) -> RecordedWorkload {
        RecordedWorkload { entries }
    }
}

/// Runs the NF over a trace and records the interpreter traces.
///
/// `setup` runs once against the fresh machine (e.g. to install LPM rules
/// or firewall entries) before any packet is processed.
///
/// # Panics
///
/// Panics if the module fails verification or the interpreter hits its
/// step limit (both indicate element bugs, not user errors).
pub fn record_workload(
    module: &Module,
    trace: &Trace,
    setup: impl FnOnce(&mut Machine),
) -> RecordedWorkload {
    let _span = obs::span!("nicsim-record", "module={} pkts={}", module.name, trace.pkts.len());
    let mut machine = Machine::new(module).expect("module must verify");
    setup(&mut machine);
    let entries: Vec<(u32, u16, ExecTrace)> = trace
        .pkts
        .iter()
        .map(|pkt| {
            let t = machine.run(pkt).expect("interpreter step limit");
            (pkt.flow_id, pkt.size, t)
        })
        .collect();
    let c = counters();
    c.record_runs.incr();
    c.pkts_recorded.add(entries.len() as u64);
    RecordedWorkload { entries }
}

/// Costs a recorded workload under a port configuration.
pub fn profile_recorded(
    module: &Module,
    rec: &RecordedWorkload,
    port: &PortConfig,
    cfg: &NicConfig,
) -> WorkloadProfile {
    let nic = nfcc::compile_module(module);
    profile_recorded_compiled(module, &nic, rec, port, cfg)
}

/// [`profile_recorded`] with a pre-compiled NIC module supplied by the
/// caller, so a compile memoized elsewhere (e.g. `clara-core`'s engine
/// cache) is reused instead of recompiling per profiling run.
pub fn profile_recorded_compiled(
    module: &Module,
    nic: &NicModule,
    rec: &RecordedWorkload,
    port: &PortConfig,
    cfg: &NicConfig,
) -> WorkloadProfile {
    let _span = obs::span!("nicsim-profile", "module={} pkts={}", module.name, rec.entries.len());
    let mut agg = WorkloadProfile::default();
    let mut touched: BTreeMap<GlobalId, BTreeSet<u64>> = BTreeMap::new();
    let mut cam = CamState::new(cfg.cam_entries as usize);
    let mut drops_total = 0.0;

    for (flow_id, size, t) in &rec.entries {
        let p = cost_packet(t, nic, module, port, cfg, *flow_id, &mut cam, &mut touched);
        agg.pkts += 1;
        agg.compute += p.compute_cycles;
        for (a, b) in agg.fixed_accesses.iter_mut().zip(p.fixed_accesses.iter()) {
            *a += b;
        }
        for (g, a) in p.global_access {
            *agg.global_access.entry(g).or_insert(0.0) += a;
        }
        agg.mean_pkt_size += f64::from(*size);
        drops_total += p.drops;
    }

    // Flush the raw (pre-normalization) totals to the metrics registry.
    // Each total is a pure function of the profiling inputs and is
    // rounded to a whole count per run, so the counters reconcile
    // bit-identically across worker layouts.
    counters().record_profile(&agg, port, drops_total);

    let n = agg.pkts.max(1) as f64;
    agg.compute /= n;
    agg.fixed_accesses.iter_mut().for_each(|a| *a /= n);
    agg.global_access.values_mut().for_each(|a| *a /= n);
    agg.mean_pkt_size /= n;
    for (g, set) in touched {
        let entry_bytes = module.global(g).map_or(4, |d| u64::from(d.entry_bytes));
        agg.working_set.insert(g, set.len() as u64 * entry_bytes);
    }
    agg
}

/// Profiles a workload: records interpreter traces and costs them.
///
/// `setup` runs once against the fresh machine before any packet.
///
/// # Panics
///
/// Panics if the module fails verification or the interpreter hits its
/// step limit (both indicate element bugs, not user errors).
pub fn profile_workload(
    module: &Module,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
    setup: impl FnOnce(&mut Machine),
) -> WorkloadProfile {
    let rec = record_workload(module, trace, setup);
    profile_recorded(module, &rec, port, cfg)
}

/// LPM flow-cache (CAM) state shared across packets.
struct CamState {
    cap: usize,
    set: HashSet<u32>,
    fifo: VecDeque<u32>,
}

impl CamState {
    fn new(cap: usize) -> CamState {
        CamState {
            cap: cap.max(1),
            set: HashSet::new(),
            fifo: VecDeque::new(),
        }
    }

    fn lookup_or_insert(&mut self, flow: u32) -> bool {
        if self.set.contains(&flow) {
            return true;
        }
        if self.set.len() >= self.cap {
            if let Some(old) = self.fifo.pop_front() {
                self.set.remove(&old);
            }
        }
        self.set.insert(flow);
        self.fifo.push_back(flow);
        false
    }
}

#[allow(clippy::too_many_arguments)]
fn cost_packet(
    trace: &ExecTrace,
    nic: &NicModule,
    module: &Module,
    port: &PortConfig,
    cfg: &NicConfig,
    flow_id: u32,
    cam: &mut CamState,
    touched: &mut BTreeMap<GlobalId, BTreeSet<u64>>,
) -> PacketProfile {
    let handler = nic.handler();
    let mut p = PacketProfile::default();
    let mut charge =
        |p: &mut PacketProfile, level: MemLevel, g: Option<GlobalId>, weight: f64| match g {
            Some(g) => *p.global_access.entry(g).or_insert(0.0) += weight,
            None => p.fixed_accesses[level.index()] += weight,
        };

    // Accelerator-region state.
    let mut crc_active = false;
    let mut lpm_skip = false; // Inside an LPM region served by the CAM.
    let mut lpm_walked = false; // Walked the region in software this packet.
                                // Coalescing: a packed cluster is fetched into transfer registers once
                                // per packet and written back once if dirtied.
    let mut fetched_clusters: HashSet<usize> = HashSet::new();
    let mut dirty_clusters: HashSet<usize> = HashSet::new();

    for ev in &trace.events {
        match ev {
            Event::Block(b) => {
                match port.accel_blocks.get(b) {
                    Some(Accel::Crc) => {
                        if !crc_active {
                            crc_active = true;
                            p.compute_cycles += f64::from(cfg.crc_accel_base);
                        }
                        p.compute_cycles += cfg.crc_accel_per_iter;
                        continue;
                    }
                    Some(Accel::Lpm) => {
                        crc_active = false;
                        if !lpm_skip && !lpm_walked {
                            // Entering the region: consult the CAM once.
                            if cam.lookup_or_insert(flow_id) {
                                lpm_skip = true;
                                p.compute_cycles += f64::from(cfg.cam_hit_cycles);
                            } else {
                                lpm_walked = true;
                                p.compute_cycles += f64::from(cfg.cam_insert_cycles);
                            }
                        }
                        if lpm_skip {
                            continue; // Whole region served by the CAM.
                        }
                        // Software walk: fall through and cost normally.
                    }
                    None => {
                        crc_active = false;
                        if lpm_skip {
                            lpm_skip = false;
                        }
                    }
                }
                if let Some(nb) = handler.blocks.get(b.index()) {
                    p.compute_cycles += f64::from(nb.issue_cycles());
                }
            }
            Event::State {
                global,
                index,
                offset,
                write,
                ..
            } => {
                touched.entry(*global).or_default().insert(*index);
                if crc_active || lpm_skip {
                    continue; // The engine's internal accesses are in its base cost.
                }
                // Coalescing: one fetch per cluster per packet (plus one
                // writeback, charged after the loop, when dirtied). Wide
                // packs cost proportionally to the 16-byte memory beats
                // they occupy, so over-packing wastes bandwidth.
                if let Some(c) = port.coalesce.cluster_of(*global, *offset) {
                    if *write {
                        dirty_clusters.insert(c);
                    }
                    if !fetched_clusters.insert(c) {
                        continue;
                    }
                    let w = (f64::from(port.coalesce.cluster_bytes(c)) / 16.0).max(1.0);
                    charge(&mut p, port.level_of(*global), Some(*global), w);
                    continue;
                }
                charge(&mut p, port.level_of(*global), Some(*global), 1.0);
            }
            Event::Pkt { .. } => {
                if crc_active || lpm_skip {
                    continue;
                }
                charge(&mut p, MemLevel::Ctm, None, 1.0);
            }
            Event::Api(api) => {
                if crc_active || lpm_skip {
                    continue;
                }
                cost_api(api, port, cfg, module, &mut p, &mut charge);
            }
        }
    }
    // Write dirtied packs back once.
    for c in dirty_clusters {
        if let Some(&(g, _)) = port.coalesce.clusters.get(c).and_then(|v| v.first()) {
            let w = (f64::from(port.coalesce.cluster_bytes(c)) / 16.0).max(1.0);
            charge(&mut p, port.level_of(g), Some(g), w);
        }
    }
    p
}

fn cost_api(
    api: &ApiEvent,
    port: &PortConfig,
    cfg: &NicConfig,
    _module: &Module,
    p: &mut PacketProfile,
    charge: &mut impl FnMut(&mut PacketProfile, MemLevel, Option<GlobalId>, f64),
) {
    let ovh = f64::from(cfg.libcall_overhead);
    match &api.call {
        ApiCall::IpHeader | ApiCall::TcpHeader | ApiCall::UdpHeader | ApiCall::EthHeader => {
            p.compute_cycles += ovh;
            charge(p, MemLevel::Ctm, None, 1.0);
        }
        ApiCall::PktLen | ApiCall::Timestamp | ApiCall::Random => {
            p.compute_cycles += ovh;
        }
        ApiCall::HashMapFind(g) | ApiCall::HashMapErase(g) => {
            p.compute_cycles += ovh + 6.0 * f64::from(api.probes);
            for _ in 0..api.probes {
                charge(p, port.level_of(*g), Some(*g), 1.0);
            }
        }
        ApiCall::HashMapInsert(g) => {
            p.compute_cycles += ovh + 6.0 * f64::from(api.probes) + 8.0;
            for _ in 0..api.probes {
                charge(p, port.level_of(*g), Some(*g), 1.0);
            }
            charge(p, port.level_of(*g), Some(*g), 1.0); // Key write.
        }
        ApiCall::VectorGet(g) | ApiCall::VectorPush(g) | ApiCall::VectorDelete(g) => {
            p.compute_cycles += ovh + 4.0;
            charge(p, port.level_of(*g), Some(*g), 1.0);
        }
        ApiCall::FlowLookup(g) | ApiCall::FlowRemove(g) => {
            // Bucket walk plus a timestamp compare per probed slot.
            p.compute_cycles += ovh + 8.0 * f64::from(api.probes);
            for _ in 0..api.probes {
                charge(p, port.level_of(*g), Some(*g), 1.0);
            }
        }
        ApiCall::FlowUpsert(g) => {
            // Bucket walk, then key + timestamp writes on insert/refresh.
            p.compute_cycles += ovh + 8.0 * f64::from(api.probes) + 10.0;
            for _ in 0..api.probes {
                charge(p, port.level_of(*g), Some(*g), 1.0);
            }
            charge(p, port.level_of(*g), Some(*g), 1.0); // Entry write.
        }
        ApiCall::FlowChurn(g) => {
            // Single counter read, kept near the table.
            p.compute_cycles += ovh;
            charge(p, port.level_of(*g), Some(*g), 1.0);
        }
        ApiCall::PktSend => {
            p.compute_cycles += ovh;
            charge(p, MemLevel::Ctm, None, 1.0);
        }
        ApiCall::PktDrop => {
            p.drops += 1.0;
            p.compute_cycles += ovh;
            charge(p, MemLevel::Ctm, None, 1.0);
        }
        ApiCall::ChecksumUpdate => {
            p.compute_cycles += if port.csum_accel {
                f64::from(cfg.csum_accel_cycles)
            } else {
                f64::from(cfg.csum_sw_cycles)
            };
            charge(p, MemLevel::Ctm, None, 1.0);
        }
        ApiCall::ChecksumFull => {
            let bytes = f64::from(api.bytes);
            p.compute_cycles += if port.csum_accel {
                f64::from(cfg.csum_accel_cycles) + bytes / 4.0
            } else {
                100.0 + 10.0 * bytes
            };
            charge(p, MemLevel::Ctm, None, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_model::elements;
    use trafgen::WorkloadSpec;

    fn profile(
        e: &click_model::NfElement,
        spec: &WorkloadSpec,
        port: &PortConfig,
        n: usize,
    ) -> WorkloadProfile {
        let trace = Trace::generate(spec, n, 42);
        profile_workload(&e.module, &trace, port, &NicConfig::default(), |_| {})
    }

    #[test]
    fn naive_port_sends_state_to_emem() {
        let e = elements::aggcounter();
        let wp = profile(&e, &WorkloadSpec::large_flows(), &PortConfig::naive(), 100);
        let acc = wp.level_accesses(&PortConfig::naive());
        assert!(acc[MemLevel::Emem.index()] > 3.0, "{acc:?}");
        assert!(wp.compute > 10.0);
        assert_eq!(wp.pkts, 100);
    }

    #[test]
    fn placement_moves_accesses_between_levels() {
        let e = elements::aggcounter();
        let spec = WorkloadSpec::large_flows();
        let naive = profile(&e, &spec, &PortConfig::naive(), 100);
        let mut placed = PortConfig::naive();
        for g in &e.module.globals {
            placed = placed.place(g.id, MemLevel::Cls);
        }
        let tuned = profile(&e, &spec, &placed, 100);
        let tuned_acc = tuned.level_accesses(&placed);
        let naive_acc = naive.level_accesses(&PortConfig::naive());
        assert_eq!(tuned_acc[MemLevel::Emem.index()], 0.0);
        assert!(
            (tuned_acc[MemLevel::Cls.index()] + tuned.fixed_accesses[MemLevel::Cls.index()]
                - naive_acc[MemLevel::Emem.index()]
                - naive.fixed_accesses[MemLevel::Cls.index()])
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn csum_accel_cuts_compute() {
        let e = elements::udpipencap();
        let spec = WorkloadSpec::large_flows();
        let sw = profile(&e, &spec, &PortConfig::naive(), 50);
        let hw = profile(&e, &spec, &PortConfig::naive().with_csum_accel(), 50);
        let cfg = NicConfig::default();
        let delta = sw.compute - hw.compute;
        let expected = f64::from(cfg.csum_sw_cycles - cfg.csum_accel_cycles);
        assert!(
            (delta - expected).abs() < 1.0,
            "delta {delta} expected {expected}"
        );
    }

    #[test]
    fn crc_accel_collapses_loop_cost() {
        let e = elements::cmsketch();
        let spec = WorkloadSpec::large_flows();
        let naive = profile(&e, &spec, &PortConfig::naive(), 50);
        // Accelerate the CRC loop blocks (bb1..bb8 = the two loops).
        let crc_blocks: Vec<nf_ir::BlockId> = (1..=8).map(nf_ir::BlockId).collect();
        let port = PortConfig::naive().accelerate(crc_blocks, Accel::Crc);
        let accel = profile(&e, &spec, &port, 50);
        assert!(
            accel.compute < naive.compute / 3.0,
            "accel {} vs naive {}",
            accel.compute,
            naive.compute
        );
    }

    #[test]
    fn working_set_scales_with_flow_count() {
        let e = elements::timefilter();
        let few = profile(
            &e,
            &WorkloadSpec::large_flows().with_flows(8),
            &PortConfig::naive(),
            400,
        );
        let many = profile(
            &e,
            &WorkloadSpec::small_flows().with_flows(2048),
            &PortConfig::naive(),
            400,
        );
        let ws = |wp: &WorkloadProfile| -> u64 { wp.working_set.values().sum() };
        assert!(
            ws(&many) > 4 * ws(&few),
            "many {} vs few {}",
            ws(&many),
            ws(&few)
        );
    }

    #[test]
    fn emem_cache_hits_more_with_small_working_set() {
        let e = elements::timefilter();
        let cfg = NicConfig::default();
        let few = profile(
            &e,
            &WorkloadSpec::large_flows().with_flows(8),
            &PortConfig::naive(),
            400,
        );
        let (h, m) = few.emem_split(&cfg, &PortConfig::naive());
        assert!(h > 0.0 && m >= 0.0);
        let hit_rate_few = h / (h + m);
        assert!(
            hit_rate_few > 0.99,
            "small working set should hit: {hit_rate_few}"
        );
    }

    #[test]
    fn coalescing_reduces_accesses() {
        let e = elements::tcpgen();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let naive = profile(&e, &spec, &PortConfig::naive(), 100);
        // Pack all eight scalars into one cluster.
        let plan = crate::port::CoalescePlan {
            clusters: vec![e.module.globals.iter().map(|g| (g.id, 0)).collect()],
        };
        let packed = profile(&e, &spec, &PortConfig::naive().with_coalesce(plan), 100);
        let packed_emem = packed.level_accesses(&PortConfig::naive())[MemLevel::Emem.index()];
        let naive_emem = naive.level_accesses(&PortConfig::naive())[MemLevel::Emem.index()];
        assert!(
            packed_emem < naive_emem * 0.7,
            "packed {packed_emem} vs naive {naive_emem}"
        );
    }

    #[test]
    fn lpm_cam_serves_repeat_flows() {
        let e = elements::iplookup(1024);
        let spec = WorkloadSpec::large_flows().with_flows(4);
        let trace = Trace::generate(&spec, 200, 9);
        let cfg = NicConfig::default();
        // The walk region: blocks 1..=3 (head/body/latch).
        let lpm_blocks: Vec<nf_ir::BlockId> = (1..=3).map(nf_ir::BlockId).collect();
        // Install a /20 route for every destination so walks are deep.
        let rules: Vec<(u32, u8, u32)> =
            trace.pkts.iter().map(|p| (p.flow.dst_ip, 20, 5)).collect();
        let setup = {
            let rules = rules.clone();
            move |m: &mut Machine| {
                elements::algo::build_trie(&mut m.state, GlobalId(0), 1024, &rules);
            }
        };
        let setup2 = move |m: &mut Machine| {
            elements::algo::build_trie(&mut m.state, GlobalId(0), 1024, &rules);
        };
        let naive = profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, setup);
        let port = PortConfig::naive().accelerate(lpm_blocks, Accel::Lpm);
        let accel = profile_workload(&e.module, &trace, &port, &cfg, setup2);
        // 4 flows × 200 packets: only 4 software walks; everything else CAM.
        assert!(
            accel.compute < naive.compute / 2.0,
            "accel {} vs naive {}",
            accel.compute,
            naive.compute
        );
        let accel_emem = accel.level_accesses(&port)[MemLevel::Emem.index()];
        let naive_emem = naive.level_accesses(&PortConfig::naive())[MemLevel::Emem.index()];
        assert!(
            accel_emem < naive_emem / 2.0,
            "{accel_emem} vs {naive_emem}"
        );
    }
}
