//! Porting decisions: everything a developer (or Clara) chooses when
//! cross-porting an NF to the NIC.

use std::collections::{BTreeMap, BTreeSet};

use nf_ir::{BlockId, GlobalId, Module};
use serde::{Deserialize, Serialize};

use crate::config::MemLevel;

/// An ASIC accelerator on the NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Accel {
    /// CRC/hash engine.
    Crc,
    /// Longest-prefix-match flow cache (CAM).
    Lpm,
}

/// A variable-packing plan for memory-access coalescing (Section 4.4).
///
/// Variables are identified as `(global, offset)` pairs. Accesses to
/// variables in the same cluster within one basic-block visit are fetched
/// with a single coalesced access sized to the cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoalescePlan {
    /// Clusters of co-allocated variables.
    pub clusters: Vec<Vec<(GlobalId, u32)>>,
}

impl CoalescePlan {
    /// The cluster index of a variable, if it is packed.
    pub fn cluster_of(&self, global: GlobalId, offset: u32) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.contains(&(global, offset)))
    }

    /// Total bytes of a cluster assuming 4-byte variables.
    pub fn cluster_bytes(&self, idx: usize) -> u32 {
        (self.clusters.get(idx).map_or(0, Vec::len) as u32) * 4
    }
}

/// A complete porting configuration for one NF.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PortConfig {
    /// State placement: memory level per global (default: all EMEM — the
    /// "naive port" baseline of Section 5.5).
    pub placement: BTreeMap<GlobalId, MemLevel>,
    /// Blocks replaced by an accelerator invocation.
    pub accel_blocks: BTreeMap<BlockId, Accel>,
    /// Use the ingress checksum engine for `checksum_*` API calls.
    pub csum_accel: bool,
    /// Variable packing plan.
    pub coalesce: CoalescePlan,
}

impl PortConfig {
    /// The naive port: original logic, all state in EMEM, no accelerators.
    pub fn naive() -> PortConfig {
        PortConfig::default()
    }

    /// Memory level where a global lives under this port.
    pub fn level_of(&self, g: GlobalId) -> MemLevel {
        self.placement.get(&g).copied().unwrap_or(MemLevel::Emem)
    }

    /// Sets the placement of one global.
    pub fn place(mut self, g: GlobalId, level: MemLevel) -> PortConfig {
        self.placement.insert(g, level);
        self
    }

    /// Marks a set of blocks as replaced by an accelerator.
    pub fn accelerate(
        mut self,
        blocks: impl IntoIterator<Item = BlockId>,
        accel: Accel,
    ) -> PortConfig {
        for b in blocks {
            self.accel_blocks.insert(b, accel);
        }
        self
    }

    /// Enables the checksum engine.
    pub fn with_csum_accel(mut self) -> PortConfig {
        self.csum_accel = true;
        self
    }

    /// Sets the coalescing plan.
    pub fn with_coalesce(mut self, plan: CoalescePlan) -> PortConfig {
        self.coalesce = plan;
        self
    }

    /// Checks that the placement fits each level's capacity for the given
    /// module; returns the set of violated levels.
    pub fn capacity_violations(
        &self,
        module: &Module,
        cfg: &crate::config::NicConfig,
    ) -> BTreeSet<MemLevel> {
        let mut used = [0u64; 4];
        for g in &module.globals {
            used[self.level_of(g.id).index()] += g.total_bytes();
        }
        MemLevel::ALL
            .into_iter()
            .filter(|l| used[l.index()] > cfg.level(*l).capacity)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NicConfig;
    use nf_ir::StateKind;

    #[test]
    fn naive_port_puts_everything_in_emem() {
        let p = PortConfig::naive();
        assert_eq!(p.level_of(GlobalId(0)), MemLevel::Emem);
        assert_eq!(p.level_of(GlobalId(9)), MemLevel::Emem);
    }

    #[test]
    fn placement_builder_applies() {
        let p = PortConfig::naive()
            .place(GlobalId(1), MemLevel::Cls)
            .with_csum_accel();
        assert_eq!(p.level_of(GlobalId(1)), MemLevel::Cls);
        assert_eq!(p.level_of(GlobalId(2)), MemLevel::Emem);
        assert!(p.csum_accel);
    }

    #[test]
    fn capacity_violations_detected() {
        let mut m = Module::new("m");
        let g = m.add_global("huge", StateKind::Array, 1024, 1024); // 1 MB
        let cfg = NicConfig::default();
        let bad = PortConfig::naive().place(g, MemLevel::Cls);
        assert!(bad.capacity_violations(&m, &cfg).contains(&MemLevel::Cls));
        let ok = PortConfig::naive().place(g, MemLevel::Imem);
        assert!(ok.capacity_violations(&m, &cfg).is_empty());
    }

    #[test]
    fn coalesce_plan_lookup() {
        let plan = CoalescePlan {
            clusters: vec![
                vec![(GlobalId(0), 0), (GlobalId(1), 0)],
                vec![(GlobalId(2), 4)],
            ],
        };
        assert_eq!(plan.cluster_of(GlobalId(1), 0), Some(0));
        assert_eq!(plan.cluster_of(GlobalId(2), 4), Some(1));
        assert_eq!(plan.cluster_of(GlobalId(2), 0), None);
        assert_eq!(plan.cluster_bytes(0), 8);
    }
}
