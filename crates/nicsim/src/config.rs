//! NIC hardware configuration (Netronome Agilio CX-like defaults).

use serde::{Deserialize, Serialize};

/// The NIC memory hierarchy levels, fastest/smallest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemLevel {
    /// Cluster local scratch (per-island SRAM).
    Cls,
    /// Cluster target memory (packet-centric SRAM).
    Ctm,
    /// Internal memory (on-chip SRAM).
    Imem,
    /// External memory (DRAM, fronted by an SRAM cache).
    Emem,
}

impl MemLevel {
    /// All levels, fastest first.
    pub const ALL: [MemLevel; 4] = [MemLevel::Cls, MemLevel::Ctm, MemLevel::Imem, MemLevel::Emem];

    /// Dense index for per-level tables.
    pub fn index(self) -> usize {
        match self {
            MemLevel::Cls => 0,
            MemLevel::Ctm => 1,
            MemLevel::Imem => 2,
            MemLevel::Emem => 3,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::Cls => "CLS",
            MemLevel::Ctm => "CTM",
            MemLevel::Imem => "IMEM",
            MemLevel::Emem => "EMEM",
        }
    }

    /// Inverse of [`MemLevel::name`] (device manifests declare levels by
    /// name). `None` for anything that is not one of the four levels.
    pub fn from_name(name: &str) -> Option<MemLevel> {
        MemLevel::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// One memory level's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemLevelCfg {
    /// Capacity in bytes available for NF state.
    pub capacity: u64,
    /// Unloaded access latency in core cycles.
    pub latency: u32,
    /// Peak service rate in accesses per cycle (chip-wide).
    pub bandwidth: f64,
}

/// Full NIC configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Number of packet-processing cores.
    pub cores: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Memory levels, indexed by [`MemLevel::index`].
    pub levels: [MemLevelCfg; 4],
    /// SRAM cache capacity in front of EMEM, bytes.
    pub emem_cache_bytes: u64,
    /// EMEM cache-hit latency in cycles.
    pub emem_cache_latency: u32,
    /// EMEM-cache service rate in accesses per cycle.
    pub emem_cache_bandwidth: f64,
    /// Packet-IO engine ceiling in Mpps (64-byte line rate for 40 GbE).
    pub max_io_mpps: f64,
    /// Line rate in Gbps (caps throughput for large packets).
    pub line_rate_gbps: f64,
    /// Software checksum cost in cycles (general-purpose cores).
    pub csum_sw_cycles: u32,
    /// Accelerated checksum cost in cycles (ingress engine).
    pub csum_accel_cycles: u32,
    /// CRC engine base cost in cycles.
    pub crc_accel_base: u32,
    /// CRC engine incremental cost per collapsed loop iteration.
    pub crc_accel_per_iter: f64,
    /// LPM flow-cache (CAM) hit cost in cycles.
    pub cam_hit_cycles: u32,
    /// LPM flow-cache insert cost in cycles.
    pub cam_insert_cycles: u32,
    /// Flow-cache capacity in flows.
    pub cam_entries: u32,
    /// Per-API fixed overhead of vendor library calls, in cycles.
    pub libcall_overhead: u32,
}

impl Default for NicConfig {
    fn default() -> NicConfig {
        NicConfig {
            cores: 60,
            freq_ghz: 1.2,
            levels: [
                // CLS: per-island scratch, ~25 cycles.
                MemLevelCfg {
                    capacity: 128 * 1024,
                    latency: 25,
                    bandwidth: 2.5,
                },
                // CTM: packet-centric SRAM, ~55 cycles.
                MemLevelCfg {
                    capacity: 1024 * 1024,
                    latency: 55,
                    bandwidth: 1.8,
                },
                // IMEM: on-chip SRAM, ~150 cycles.
                MemLevelCfg {
                    capacity: 4 * 1024 * 1024,
                    latency: 150,
                    bandwidth: 0.45,
                },
                // EMEM: DRAM, ~500 cycles uncached; random-access
                // bandwidth is the scarce chip-wide resource.
                MemLevelCfg {
                    capacity: 2 * 1024 * 1024 * 1024,
                    latency: 500,
                    bandwidth: 0.085,
                },
            ],
            emem_cache_bytes: 3 * 1024 * 1024,
            emem_cache_latency: 130,
            emem_cache_bandwidth: 0.40,
            max_io_mpps: 59.5,
            line_rate_gbps: 40.0,
            csum_sw_cycles: 2000,
            csum_accel_cycles: 300,
            crc_accel_base: 30,
            crc_accel_per_iter: 0.25,
            cam_hit_cycles: 50,
            cam_insert_cycles: 120,
            cam_entries: 65536,
            libcall_overhead: 12,
        }
    }
}

impl NicConfig {
    /// Level parameters by level.
    pub fn level(&self, l: MemLevel) -> &MemLevelCfg {
        &self.levels[l.index()]
    }

    /// Line-rate packet ceiling for a mean packet size, in Mpps.
    pub fn line_rate_mpps(&self, mean_pkt_bytes: f64) -> f64 {
        let wire = mean_pkt_bytes + 20.0; // Preamble + IFG.
        (self.line_rate_gbps * 1e9 / (wire * 8.0) / 1e6).min(self.max_io_mpps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_by_latency_and_capacity() {
        let c = NicConfig::default();
        for w in MemLevel::ALL.windows(2) {
            assert!(c.level(w[0]).latency < c.level(w[1]).latency);
            assert!(c.level(w[0]).capacity < c.level(w[1]).capacity);
            assert!(c.level(w[0]).bandwidth > c.level(w[1]).bandwidth);
        }
    }

    #[test]
    fn line_rate_depends_on_packet_size() {
        let c = NicConfig::default();
        let small = c.line_rate_mpps(64.0);
        let large = c.line_rate_mpps(1500.0);
        assert!(small > 10.0 * large);
        assert!(small <= c.max_io_mpps);
        // 40 GbE at 64 B ≈ 59.5 Mpps.
        assert!((small - 59.5).abs() < 0.5, "{small}");
    }

    #[test]
    fn indices_round_trip() {
        for l in MemLevel::ALL {
            assert_eq!(MemLevel::ALL[l.index()], l);
        }
    }
}
