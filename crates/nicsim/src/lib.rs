//! `nic-sim`: a cycle-level SoC SmartNIC simulator (Netronome Agilio-like).
//!
//! This crate substitutes for the physical 40 Gbps Netronome Agilio CX of
//! the Clara paper. It models the mechanisms the paper's evaluation
//! depends on, so the *shape* of every result (who wins, where knees and
//! crossovers fall) reproduces even though absolute Mpps differ from
//! silicon:
//!
//! - **many wimpy cores** (60 × 1.2 GHz) processing packets
//!   run-to-completion;
//! - a **four-level memory hierarchy** — CLS, CTM, IMEM, EMEM — with
//!   increasing capacities and latencies, and an SRAM cache in front of
//!   DRAM-backed EMEM whose hit rate depends on the workload's working
//!   set (few large flows hit, many small flows miss);
//! - **per-level bandwidth with queueing contention**: adding cores
//!   raises throughput until a memory level saturates, after which
//!   latency climbs — producing the scale-out knees of Figure 11 and the
//!   colocation interference of Figure 14;
//! - **ASIC accelerators**: a checksum engine (~300 cycles vs ~2000 in
//!   software), a CRC engine, and an LPM flow cache (CAM), enabling the
//!   Figure 10 experiments;
//! - a **vendor library** cost model for reverse-ported framework calls
//!   (hash-map probes, vector ops, header parses).
//!
//! The simulator consumes the execution traces produced by
//! [`click_model::Machine`] plus the per-block issue costs produced by
//! [`nfcc`], under a [`PortConfig`] describing porting decisions (state
//! placement, accelerator substitution, coalescing, core count).

pub mod config;
pub mod fingerprint;
pub mod model;
pub mod port;
pub mod profile;
pub mod sim;

pub use config::{MemLevel, MemLevelCfg, NicConfig};
pub use fingerprint::{fingerprint_bytes, module_fingerprint};
pub use model::{solve_colocated, solve_perf, PerfPoint};
pub use port::{Accel, CoalescePlan, PortConfig};
pub use profile::{
    profile_recorded, profile_recorded_compiled, profile_workload, record_workload, PacketProfile,
    RecordedWorkload, WorkloadProfile,
};
pub use sim::{
    chain_global, merge_stage_profiles, optimal_cores, profile_chain, profile_chain_stages,
    simulate, simulate_colocated, sweep_cores, Simulation, CHAIN_STRIDE,
};
