//! High-level simulation driver: NF module + workload + port → numbers.

use click_model::Machine;
use nf_ir::Module;
use trafgen::Trace;

use crate::config::NicConfig;
use crate::model::{solve_colocated, solve_perf, PerfPoint};
use crate::port::PortConfig;
use crate::profile::{profile_workload, WorkloadProfile};

/// A reusable simulation context for one NF.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// The NF under simulation.
    pub module: Module,
    /// NIC hardware configuration.
    pub cfg: NicConfig,
}

impl Simulation {
    /// Creates a context (verifying the module via the interpreter).
    ///
    /// # Panics
    ///
    /// Panics if the module does not verify.
    pub fn new(module: &Module, cfg: NicConfig) -> Simulation {
        let _ = Machine::new(module).expect("module must verify");
        Simulation {
            module: module.clone(),
            cfg,
        }
    }

    /// Profiles a workload under a port configuration.
    pub fn profile(&self, trace: &Trace, port: &PortConfig) -> WorkloadProfile {
        profile_workload(&self.module, trace, port, &self.cfg, |_| {})
    }

    /// Profiles with a state-setup hook (rule installation etc.).
    pub fn profile_with(
        &self,
        trace: &Trace,
        port: &PortConfig,
        setup: impl FnOnce(&mut Machine),
    ) -> WorkloadProfile {
        profile_workload(&self.module, trace, port, &self.cfg, setup)
    }

    /// Simulates one operating point.
    pub fn run(&self, trace: &Trace, port: &PortConfig, cores: u32) -> PerfPoint {
        solve_perf(&self.profile(trace, port), &self.cfg, port, cores)
    }

    /// Sweeps core counts, returning one point per count.
    pub fn sweep(&self, trace: &Trace, port: &PortConfig, counts: &[u32]) -> Vec<PerfPoint> {
        let wp = self.profile(trace, port);
        counts
            .iter()
            .map(|&c| solve_perf(&wp, &self.cfg, port, c))
            .collect()
    }
}

/// One-shot simulation of an NF at a given core count.
pub fn simulate(
    module: &Module,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
    cores: u32,
) -> PerfPoint {
    Simulation::new(module, cfg.clone()).run(trace, port, cores)
}

/// Sweeps 1..=max_cores and returns every operating point.
pub fn sweep_cores(
    module: &Module,
    trace: &Trace,
    port: &PortConfig,
    cfg: &NicConfig,
    max_cores: u32,
) -> Vec<PerfPoint> {
    let counts: Vec<u32> = (1..=max_cores).collect();
    Simulation::new(module, cfg.clone()).sweep(trace, port, &counts)
}

/// Simulates two NFs colocated on the NIC with an even core split.
pub fn simulate_colocated(
    a: (&Module, &Trace, &PortConfig),
    b: (&Module, &Trace, &PortConfig),
    cfg: &NicConfig,
) -> (PerfPoint, PerfPoint) {
    let wa = profile_workload(a.0, a.1, a.2, cfg, |_| {});
    let wb = profile_workload(b.0, b.1, b.2, cfg, |_| {});
    let half = (cfg.cores / 2).max(1);
    let pts = solve_colocated(&[&wa, &wb], cfg, &[a.2, b.2], &[half, half]);
    (pts[0], pts[1])
}

/// Finds the core count (in `1..=max`) maximizing throughput/latency.
pub fn optimal_cores(points: &[PerfPoint]) -> u32 {
    // First maximum: the fewest cores achieving the best ratio (ties go
    // to the smaller configuration — extra cores past a line-rate cap
    // buy nothing).
    let mut best = None::<&PerfPoint>;
    for p in points {
        if best.is_none_or(|b| p.ratio() > b.ratio() * (1.0 + 1e-9)) {
            best = Some(p);
        }
    }
    best.map_or(1, |p| p.cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_model::elements;
    use trafgen::WorkloadSpec;

    #[test]
    fn end_to_end_simulation_runs() {
        let e = elements::aggcounter();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 1);
        let p = simulate(
            &e.module,
            &trace,
            &PortConfig::naive(),
            &NicConfig::default(),
            8,
        );
        assert!(p.throughput_mpps > 0.1);
        assert!(p.latency_us > 0.1);
    }

    #[test]
    fn sweep_shows_knee_for_stateful_nf() {
        let e = elements::mazunat();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::small_flows().with_flows(4096)
        };
        let trace = Trace::generate(&spec, 3000, 2);
        // Shrink the EMEM cache so the 4096-flow working set misses, and
        // use the checksum engine so compute doesn't dominate.
        let cfg = NicConfig {
            emem_cache_bytes: 4 * 1024,
            ..NicConfig::default()
        };
        let pts = sweep_cores(
            &e.module,
            &trace,
            &PortConfig::naive().with_csum_accel(),
            &cfg,
            60,
        );
        let best = optimal_cores(&pts);
        assert!(
            (2..=59).contains(&best),
            "expected interior optimum, got {best}"
        );
        // Throughput at the end must be near-flat (plateau).
        let t58 = pts[57].throughput_mpps;
        let t60 = pts[59].throughput_mpps;
        assert!((t60 - t58).abs() / t58 < 0.05);
    }

    #[test]
    fn better_placement_improves_simulated_performance() {
        let e = elements::udpcount();
        let spec = WorkloadSpec::small_flows();
        let trace = Trace::generate(&spec, 400, 3);
        let cfg = NicConfig::default();
        let naive = simulate(&e.module, &trace, &PortConfig::naive(), &cfg, 20);
        // Small counters to CLS (strictly faster than any EMEM path).
        let mut port = PortConfig::naive();
        for g in &e.module.globals {
            if g.total_bytes() < 8 * 1024 {
                port = port.place(g.id, crate::config::MemLevel::Cls);
            }
        }
        let placed = simulate(&e.module, &trace, &port, &cfg, 20);
        assert!(
            placed.latency_us < naive.latency_us,
            "placed {} vs naive {}",
            placed.latency_us,
            naive.latency_us
        );
        assert!(placed.throughput_mpps >= naive.throughput_mpps);
    }

    #[test]
    fn colocated_pair_is_slower_than_solo() {
        let a = elements::mazunat();
        let b = elements::dnsproxy();
        let spec = WorkloadSpec::small_flows().with_flows(2048);
        let trace = Trace::generate(&spec, 300, 4);
        let cfg = NicConfig::default();
        let solo = simulate(&a.module, &trace, &PortConfig::naive(), &cfg, 30);
        let (pa, _pb) = simulate_colocated(
            (&a.module, &trace, &PortConfig::naive()),
            (&b.module, &trace, &PortConfig::naive()),
            &cfg,
        );
        assert!(pa.throughput_mpps <= solo.throughput_mpps + 1e-9);
    }
}

/// Profiles a linear service chain on one NIC: every packet pays the sum
/// of the stages it traverses (drops cut the chain short).
///
/// Stage `s`'s globals are namespaced as `GlobalId(s * CHAIN_STRIDE + g)`
/// in the combined profile so placements and working sets stay per-stage.
///
/// # Panics
///
/// Panics if `modules`/`ports` lengths differ, a module fails
/// verification, or the interpreter hits its step limit.
pub fn profile_chain(
    modules: &[&Module],
    trace: &Trace,
    ports: &[&PortConfig],
    cfg: &NicConfig,
    setup: impl FnOnce(&mut click_model::Chain),
) -> WorkloadProfile {
    let stages = profile_chain_stages(modules, trace, ports, cfg, setup);
    merge_stage_profiles(&stages, trace)
}

/// Profiles every chain stage separately: stage `s`'s profile is scaled
/// to *per chain packet* (stages past a drop contribute less), with its
/// globals namespaced via [`chain_global`].
///
/// # Panics
///
/// Panics under the same conditions as [`profile_chain`].
pub fn profile_chain_stages(
    modules: &[&Module],
    trace: &Trace,
    ports: &[&PortConfig],
    cfg: &NicConfig,
    setup: impl FnOnce(&mut click_model::Chain),
) -> Vec<WorkloadProfile> {
    assert_eq!(modules.len(), ports.len(), "modules/ports mismatch");
    let mut chain =
        click_model::Chain::new(modules.iter().copied()).expect("chain modules must verify");
    setup(&mut chain);
    // Per-stage recorded traces, gathered in one pass.
    let mut per_stage: Vec<Vec<(u32, u16, click_model::ExecTrace)>> =
        vec![Vec::new(); modules.len()];
    for pkt in &trace.pkts {
        let r = chain.run(pkt).expect("interpreter step limit");
        for (s, t) in r.traces.into_iter().enumerate() {
            per_stage[s].push((pkt.flow_id, pkt.size, t));
        }
    }

    let n = trace.pkts.len().max(1) as f64;
    let mean_size = trace.pkts.iter().map(|p| f64::from(p.size)).sum::<f64>() / n;
    per_stage
        .into_iter()
        .enumerate()
        .map(|(s, entries)| {
            if entries.is_empty() {
                return WorkloadProfile {
                    pkts: trace.pkts.len(),
                    mean_pkt_size: mean_size,
                    ..WorkloadProfile::default()
                };
            }
            let reached = entries.len() as f64;
            let rec = crate::profile::RecordedWorkload::from_entries(entries);
            let wp = crate::profile::profile_recorded(modules[s], &rec, ports[s], cfg);
            let scale = reached / n;
            let mut out = WorkloadProfile {
                pkts: trace.pkts.len(),
                compute: wp.compute * scale,
                mean_pkt_size: mean_size,
                ..WorkloadProfile::default()
            };
            for (a, b) in out.fixed_accesses.iter_mut().zip(wp.fixed_accesses.iter()) {
                *a = b * scale;
            }
            for (g, a) in wp.global_access {
                out.global_access.insert(chain_global(s, g), a * scale);
            }
            for (g, ws) in wp.working_set {
                out.working_set.insert(chain_global(s, g), ws);
            }
            out
        })
        .collect()
}

/// Merges per-stage chain profiles (already per-chain-packet scaled and
/// namespaced) into one combined profile.
pub fn merge_stage_profiles(stages: &[WorkloadProfile], trace: &Trace) -> WorkloadProfile {
    let n = trace.pkts.len().max(1) as f64;
    let mut combined = WorkloadProfile {
        mean_pkt_size: trace.pkts.iter().map(|p| f64::from(p.size)).sum::<f64>() / n,
        pkts: trace.pkts.len(),
        ..WorkloadProfile::default()
    };
    for wp in stages {
        combined.compute += wp.compute;
        for (a, b) in combined
            .fixed_accesses
            .iter_mut()
            .zip(wp.fixed_accesses.iter())
        {
            *a += b;
        }
        for (g, a) in &wp.global_access {
            *combined.global_access.entry(*g).or_insert(0.0) += a;
        }
        for (g, ws) in &wp.working_set {
            combined.working_set.insert(*g, *ws);
        }
    }
    combined
}

/// Stride separating stages' global-id namespaces in chain profiles.
pub const CHAIN_STRIDE: u32 = 1 << 16;

/// Namespaces stage `s`'s global `g` for a chain profile.
pub fn chain_global(stage: usize, g: nf_ir::GlobalId) -> nf_ir::GlobalId {
    nf_ir::GlobalId(stage as u32 * CHAIN_STRIDE + g.0)
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use click_model::elements;
    use trafgen::WorkloadSpec;

    #[test]
    fn chain_profile_sums_stage_costs() {
        let a = elements::anonipaddr();
        let b = elements::aggcounter();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 1);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let solo_a = profile_workload(&a.module, &trace, &port, &cfg, |_| {});
        let solo_b = profile_workload(&b.module, &trace, &port, &cfg, |_| {});
        let chain = profile_chain(
            &[&a.module, &b.module],
            &trace,
            &[&port, &port],
            &cfg,
            |_| {},
        );
        // No drops: chain compute = sum of stages (both see every packet).
        let expected = solo_a.compute + solo_b.compute;
        assert!(
            (chain.compute - expected).abs() / expected < 0.02,
            "chain {} vs sum {}",
            chain.compute,
            expected
        );
        // Stage-1 globals are namespaced past CHAIN_STRIDE.
        assert!(chain.global_access.keys().any(|g| g.0 >= CHAIN_STRIDE));
    }

    #[test]
    fn drops_shorten_the_chain() {
        // Rule-less firewall drops everything; stage 2 contributes nothing.
        let fw = elements::firewall();
        let agg = elements::aggcounter();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let trace = Trace::generate(&spec, 100, 2);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let chain = profile_chain(
            &[&fw.module, &agg.module],
            &trace,
            &[&port, &port],
            &cfg,
            |_| {},
        );
        let agg_globals: f64 = chain
            .global_access
            .iter()
            .filter(|(g, _)| g.0 >= CHAIN_STRIDE)
            .map(|(_, a)| a)
            .sum();
        assert_eq!(agg_globals, 0.0, "dropped packets must not reach stage 2");
    }

    #[test]
    fn chain_point_solves() {
        let a = elements::vlantag();
        let b = elements::udpcount();
        let trace = Trace::generate(&WorkloadSpec::imix(), 150, 3);
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let wp = profile_chain(
            &[&a.module, &b.module],
            &trace,
            &[&port, &port],
            &cfg,
            |_| {},
        );
        let p = solve_perf(&wp, &cfg, &port, 16);
        assert!(p.throughput_mpps > 0.0 && p.latency_us.is_finite());
    }
}
