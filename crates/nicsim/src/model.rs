//! The analytic performance model: cores + memory-channel queueing.
//!
//! Packet processing is run-to-completion, so with `n` cores the system
//! is closed with `n` packets in flight: the packet arrival rate at each
//! memory channel is `n / S` packets per cycle (Little's law), where `S`
//! is the per-packet service time — which itself depends on channel
//! queueing. The model iterates this fixed point. Throughput saturates
//! when a channel's utilization approaches 1 (or the packet-IO/line-rate
//! ceiling binds), and past that point extra cores only add queueing
//! latency — exactly the knee behaviour of the paper's Figure 11.

use serde::{Deserialize, Serialize};

use crate::config::NicConfig;
use crate::port::PortConfig;
use crate::profile::{WorkloadProfile, CHANNELS, CH_EMEM_CACHE};

/// A solved operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfPoint {
    /// Cores assigned.
    pub cores: u32,
    /// Sustained throughput in Mpps.
    pub throughput_mpps: f64,
    /// Per-packet latency in microseconds (ingress to egress).
    pub latency_us: f64,
    /// Per-packet service time in cycles.
    pub service_cycles: f64,
    /// Utilization of the busiest memory channel.
    pub max_channel_util: f64,
}

impl PerfPoint {
    /// Throughput/latency ratio (the Figure 11c/d objective).
    pub fn ratio(&self) -> f64 {
        if self.latency_us <= 0.0 {
            0.0
        } else {
            self.throughput_mpps / self.latency_us
        }
    }
}

/// Model channels: the memory channels plus the packet-IO engine, which
/// is itself a queue — latency climbs as throughput approaches the line
/// rate, so "use all cores" costs latency even for IO-bound NFs.
const NCH: usize = CHANNELS + 1;
/// Index of the packet-IO channel.
const CH_IO: usize = CHANNELS;
/// Unloaded packet-IO (ingress+egress DMA) latency in cycles.
const IO_LATENCY: f64 = 120.0;

fn channel_params(cfg: &NicConfig) -> ([f64; NCH], [f64; NCH]) {
    let mut lat = [0.0; NCH];
    let mut bw = [f64::INFINITY; NCH];
    for (i, l) in crate::config::MemLevel::ALL.iter().enumerate() {
        lat[i] = f64::from(cfg.level(*l).latency);
        bw[i] = cfg.level(*l).bandwidth;
    }
    lat[CH_EMEM_CACHE] = f64::from(cfg.emem_cache_latency);
    bw[CH_EMEM_CACHE] = cfg.emem_cache_bandwidth;
    lat[CH_IO] = IO_LATENCY;
    // IO bandwidth is workload-dependent (line rate at the mean packet
    // size); filled per solve.
    (lat, bw)
}

fn full_demand(base: [f64; CHANNELS]) -> [f64; NCH] {
    let mut d = [0.0; NCH];
    d[..CHANNELS].copy_from_slice(&base);
    d[CH_IO] = 1.0; // Every packet crosses the IO engine once.
    d
}

/// Loaded-latency inflation factor: memory banks and the IO engine serve
/// at their *unloaded* latency when idle, inflating as utilization rises
/// (the classic loaded-latency curve). 0.35 sets the curve's knee
/// sharpness.
const LOAD_FACTOR: f64 = 0.35;

/// Service time at a given total per-channel utilization `rho`.
fn service_time(
    compute: f64,
    demand: &[f64; NCH],
    lat: &[f64; NCH],
    _bw: &[f64; NCH],
    rho: &[f64; NCH],
) -> f64 {
    let mut s = compute;
    for k in 0..NCH {
        if demand[k] <= 0.0 {
            continue;
        }
        let r = rho[k].min(0.995);
        s += demand[k] * lat[k] * (1.0 + LOAD_FACTOR * r / (1.0 - r));
    }
    s.max(1.0)
}

/// Solves the closed-system fixed point for one NF running alone.
///
/// The packet rate `λ` satisfies `λ = min(n / S(λ), cap)`, where `S` is
/// increasing in `λ` (queueing); the right-hand side is therefore
/// decreasing, so the unique fixed point is found by bisection.
pub fn solve_perf(
    wp: &WorkloadProfile,
    cfg: &NicConfig,
    port: &PortConfig,
    cores: u32,
) -> PerfPoint {
    let demand = full_demand(wp.channel_demand(cfg, port));
    let (lat, mut bw) = channel_params(cfg);
    let n = f64::from(cores.max(1));
    bw[CH_IO] = cfg.line_rate_mpps(wp.mean_pkt_size) * 1e6 / (cfg.freq_ghz * 1e9);

    let rho_of = |lambda: f64| -> [f64; NCH] {
        let mut rho = [0.0; NCH];
        for k in 0..NCH {
            rho[k] = lambda * demand[k] / bw[k];
        }
        rho
    };
    // Upper bound: min over channels of the saturation rate.
    let mut hi = f64::INFINITY;
    for k in 0..NCH {
        if demand[k] > 0.0 {
            hi = hi.min(0.995 * bw[k] / demand[k]);
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let s = service_time(wp.compute, &demand, &lat, &bw, &rho_of(mid));
        if n / s > mid {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    let rho = rho_of(lambda);
    let s = service_time(wp.compute, &demand, &lat, &bw, &rho);
    let max_util = rho.iter().copied().fold(0.0, f64::max);
    PerfPoint {
        cores,
        throughput_mpps: lambda * cfg.freq_ghz * 1e9 / 1e6,
        latency_us: s / (cfg.freq_ghz * 1e3),
        service_cycles: s,
        max_channel_util: max_util,
    }
}

/// Solves two colocated NFs sharing the memory channels.
///
/// Each NF `i` gets `cores[i]` cores; channel utilization sums both NFs'
/// demands, so a memory-hungry neighbour inflates the other's latency —
/// the interference mechanism behind Figure 14.
pub fn solve_colocated(
    wps: &[&WorkloadProfile],
    cfg: &NicConfig,
    ports: &[&PortConfig],
    cores: &[u32],
) -> Vec<PerfPoint> {
    assert_eq!(wps.len(), cores.len(), "profiles/cores mismatch");
    assert_eq!(wps.len(), ports.len(), "profiles/ports mismatch");
    let (lat, mut bw) = channel_params(cfg);
    let demands: Vec<[f64; NCH]> = wps
        .iter()
        .zip(ports.iter())
        .map(|(w, p)| full_demand(w.channel_demand(cfg, p)))
        .collect();
    // One shared line: the IO channel's bandwidth reflects the smallest
    // tenant packet size (conservative).
    let min_size = wps
        .iter()
        .map(|w| w.mean_pkt_size)
        .fold(f64::INFINITY, f64::min);
    bw[CH_IO] = cfg.line_rate_mpps(min_size) * 1e6 / (cfg.freq_ghz * 1e9);

    let mut lambda: Vec<f64> = vec![0.0; wps.len()];
    // Gauss–Seidel over tenants: given the others' rates, each tenant's
    // rate is a one-dimensional monotone fixed point solved by bisection.
    for _round in 0..60 {
        for i in 0..wps.len() {
            let others_rho = |k: usize| -> f64 {
                lambda
                    .iter()
                    .zip(demands.iter())
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, (l, d))| l * d[k] / bw[k])
                    .sum()
            };
            let mut hi = f64::INFINITY;
            for k in 0..NCH {
                if demands[i][k] > 0.0 {
                    let free = (0.995 - others_rho(k)).max(1e-6);
                    hi = hi.min(free * bw[k] / demands[i][k]);
                }
            }
            let n = f64::from(cores[i].max(1));
            let mut lo = 0.0f64;
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let mut rho = [0.0; NCH];
                for (k, r) in rho.iter_mut().enumerate() {
                    *r = others_rho(k) + mid * demands[i][k] / bw[k];
                }
                let s = service_time(wps[i].compute, &demands[i], &lat, &bw, &rho);
                if n / s > mid {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            lambda[i] = 0.5 * (lo + hi);
        }
    }

    // Final shared utilization and per-tenant service times.
    let mut rho = [0.0f64; NCH];
    for (k, r) in rho.iter_mut().enumerate() {
        *r = lambda
            .iter()
            .zip(demands.iter())
            .map(|(l, d)| l * d[k] / bw[k])
            .sum();
    }
    let max_util = rho.iter().copied().fold(0.0, f64::max);
    (0..wps.len())
        .map(|i| {
            let s = service_time(wps[i].compute, &demands[i], &lat, &bw, &rho);
            PerfPoint {
                cores: cores[i],
                throughput_mpps: lambda[i] * cfg.freq_ghz * 1e9 / 1e6,
                latency_us: s / (cfg.freq_ghz * 1e3),
                service_cycles: s,
                max_channel_util: max_util,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn synthetic(compute: f64, emem: f64, ws_bytes: u64) -> WorkloadProfile {
        let mut global_access = BTreeMap::new();
        let mut working_set = BTreeMap::new();
        if emem > 0.0 {
            global_access.insert(nf_ir::GlobalId(0), emem);
            working_set.insert(nf_ir::GlobalId(0), ws_bytes);
        }
        WorkloadProfile {
            pkts: 1000,
            compute,
            fixed_accesses: [0.0, 2.0, 0.0, 0.0],
            global_access,
            working_set,
            mean_pkt_size: 128.0,
        }
    }

    fn naive() -> PortConfig {
        PortConfig::naive()
    }

    #[test]
    fn throughput_increases_then_plateaus() {
        let cfg = NicConfig::default();
        // Memory-heavy NF with a big working set (all misses).
        let wp = synthetic(200.0, 8.0, 1 << 30);
        let t: Vec<f64> = [1u32, 4, 16, 50, 60]
            .iter()
            .map(|&c| solve_perf(&wp, &cfg, &naive(), c).throughput_mpps)
            .collect();
        assert!(t[1] > 2.0 * t[0], "should scale early: {t:?}");
        let plateau = (t[4] - t[3]).abs() / t[3];
        assert!(plateau < 0.10, "should plateau late: {t:?}");
    }

    #[test]
    fn latency_grows_past_knee() {
        let cfg = NicConfig::default();
        let wp = synthetic(200.0, 8.0, 1 << 30);
        let l8 = solve_perf(&wp, &cfg, &naive(), 8).latency_us;
        let l60 = solve_perf(&wp, &cfg, &naive(), 60).latency_us;
        assert!(l60 > 1.3 * l8, "latency should climb: {l8} vs {l60}");
    }

    #[test]
    fn ratio_peaks_at_interior_core_count_for_memory_bound() {
        let cfg = NicConfig::default();
        let wp = synthetic(150.0, 10.0, 1 << 30);
        let ratios: Vec<f64> = (1..=60)
            .map(|c| solve_perf(&wp, &cfg, &naive(), c).ratio())
            .collect();
        let mut best = 1usize;
        for (i, r) in ratios.iter().enumerate() {
            if *r > ratios[best - 1] * (1.0 + 1e-9) {
                best = i + 1;
            }
        }
        assert!(
            (2..60).contains(&best),
            "knee should be interior, got {best}"
        );
    }

    #[test]
    fn compute_bound_with_cache_hits_peaks_earlier() {
        let cfg = NicConfig::default();
        // Cache-resident state (small working set) vs DRAM-resident.
        let hits = synthetic(400.0, 6.0, 64 * 1024);
        let misses = synthetic(400.0, 6.0, 1 << 30);
        let knee = |wp: &WorkloadProfile| -> u32 {
            // First maximum: the fewest cores reaching the peak ratio.
            let mut best = (1u32, solve_perf(wp, &cfg, &naive(), 1).ratio());
            for c in 2..=60 {
                let r = solve_perf(wp, &cfg, &naive(), c).ratio();
                if r > best.1 * (1.0 + 1e-9) {
                    best = (c, r);
                }
            }
            best.0
        };
        assert!(
            knee(&hits) < knee(&misses),
            "cache-hit workload should knee earlier: {} vs {}",
            knee(&hits),
            knee(&misses)
        );
    }

    #[test]
    fn colocation_degrades_both_tenants() {
        let cfg = NicConfig::default();
        let a = synthetic(150.0, 9.0, 1 << 30);
        let b = synthetic(150.0, 9.0, 1 << 30);
        let solo = solve_perf(&a, &cfg, &naive(), 30);
        let pair = solve_colocated(&[&a, &b], &cfg, &[&naive(), &naive()], &[30, 30]);
        assert!(
            pair[0].throughput_mpps < solo.throughput_mpps,
            "colocation should cost throughput: {} vs {}",
            pair[0].throughput_mpps,
            solo.throughput_mpps
        );
        assert!(pair[0].latency_us > solo.latency_us);
    }

    #[test]
    fn compute_bound_neighbour_interferes_less() {
        let cfg = NicConfig::default();
        let victim = synthetic(150.0, 9.0, 1 << 30);
        let mem_hog = synthetic(100.0, 12.0, 1 << 30);
        let compute_nf = synthetic(2000.0, 0.5, 1 << 20);
        let with_hog =
            solve_colocated(&[&victim, &mem_hog], &cfg, &[&naive(), &naive()], &[30, 30]);
        let with_compute = solve_colocated(
            &[&victim, &compute_nf],
            &cfg,
            &[&naive(), &naive()],
            &[30, 30],
        );
        assert!(
            with_compute[0].throughput_mpps > with_hog[0].throughput_mpps,
            "friendly neighbour should hurt less: {} vs {}",
            with_compute[0].throughput_mpps,
            with_hog[0].throughput_mpps
        );
    }

    #[test]
    fn three_tenants_share_channels() {
        let cfg = NicConfig::default();
        let a = synthetic(150.0, 6.0, 1 << 30);
        let b = synthetic(150.0, 6.0, 1 << 30);
        let c = synthetic(150.0, 6.0, 1 << 30);
        let two = solve_colocated(&[&a, &b], &cfg, &[&naive(), &naive()], &[20, 20]);
        let three = solve_colocated(
            &[&a, &b, &c],
            &cfg,
            &[&naive(), &naive(), &naive()],
            &[20, 20, 20],
        );
        assert_eq!(three.len(), 3);
        // A third identical tenant can only hurt the first one.
        assert!(three[0].throughput_mpps <= two[0].throughput_mpps + 1e-9);
        assert!(three[0].latency_us >= two[0].latency_us - 1e-9);
        // Identical tenants converge to identical operating points.
        assert!((three[0].throughput_mpps - three[1].throughput_mpps).abs() < 1e-6);
        assert!((three[1].throughput_mpps - three[2].throughput_mpps).abs() < 1e-6);
    }

    #[test]
    fn line_rate_caps_tiny_workloads() {
        let cfg = NicConfig::default();
        let wp = synthetic(50.0, 0.0, 0);
        let p = solve_perf(&wp, &cfg, &naive(), 60);
        assert!(p.throughput_mpps <= cfg.max_io_mpps + 1e-6);
    }
}
