//! Cheap content fingerprints for memoization keys.
//!
//! `clara-core`'s evaluation engine memoizes vendor compiles and
//! profiling runs across threads. The cache keys come from here: a
//! module is fingerprinted by hashing its canonical printed IR, which is
//! a total function of everything the compiler and profiler consume
//! (globals, functions, blocks, instructions, in order).

use nf_ir::Module;

/// FNV-1a over a byte string — stable across runs and platforms, unlike
/// `std`'s randomized `DefaultHasher`.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Content fingerprint of a module: equal printed IR ⇒ equal fingerprint.
///
/// Printing is linear in module size and far cheaper than a compile or a
/// profiling run, which is what makes it usable as a memo key.
pub fn module_fingerprint(module: &Module) -> u64 {
    fingerprint_bytes(nf_ir::print::module(module).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_modules_collide_and_different_modules_do_not() {
        let a = click_model::elements::cmsketch().module;
        let b = click_model::elements::cmsketch().module;
        let c = click_model::elements::aggcounter().module;
        assert_eq!(module_fingerprint(&a), module_fingerprint(&b));
        assert_ne!(module_fingerprint(&a), module_fingerprint(&c));
    }

    #[test]
    fn fingerprint_is_stable() {
        // Pin the FNV-1a constants: a silent change would invalidate any
        // externally persisted cache keyed on these fingerprints.
        assert_eq!(fingerprint_bytes(b""), 0xcbf29ce484222325);
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63dc4c8601ec8c);
    }
}
