//! Scratch: inspect a real NF's workload profile and sweep.
use click_model::elements;
use nic_sim::*;
use trafgen::{Trace, WorkloadSpec};

fn main() {
    let e = elements::mazunat();
    let spec = WorkloadSpec {
        tcp_ratio: 1.0,
        ..WorkloadSpec::small_flows().with_flows(4096)
    };
    let trace = Trace::generate(&spec, 3000, 2);
    let cfg = NicConfig {
        emem_cache_bytes: 64 * 1024,
        ..NicConfig::default()
    };
    let sim = Simulation::new(&e.module, cfg.clone());
    let port = PortConfig::naive().with_csum_accel();
    let wp = sim.profile(&trace, &port);
    println!(
        "compute={:.1} accesses={:?}",
        wp.compute,
        wp.level_accesses(&port)
    );
    println!("ws={:?}", wp.working_set);
    let (h, m) = wp.emem_split(&cfg, &port);
    println!(
        "emem hits={h:.2} misses={m:.2} mean_size={}",
        wp.mean_pkt_size
    );
    for c in [1u32, 8, 16, 24, 32, 40, 48, 56, 60] {
        let p = solve_perf(&wp, &cfg, &port, c);
        println!(
            "{c:3}: {:7.3} Mpps {:7.3} us ratio={:.4} util={:.3}",
            p.throughput_mpps,
            p.latency_us,
            p.ratio(),
            p.max_channel_util
        );
    }
}
