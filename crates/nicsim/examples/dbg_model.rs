//! Scratch sweep for tuning the contention model constants.
use nic_sim::profile::WorkloadProfile;
use nic_sim::{solve_perf, NicConfig, PortConfig};
use std::collections::BTreeMap;

fn synthetic(compute: f64, emem: f64, ws: u64) -> WorkloadProfile {
    let mut ebg = BTreeMap::new();
    let mut wset = BTreeMap::new();
    if emem > 0.0 {
        ebg.insert(nf_ir::GlobalId(0), emem);
        wset.insert(nf_ir::GlobalId(0), ws);
    }
    WorkloadProfile {
        pkts: 1000,
        compute,
        fixed_accesses: [0.0, 2.0, 0.0, 0.0],
        global_access: ebg,
        working_set: wset,
        mean_pkt_size: 128.0,
    }
}

fn knee(wp: &WorkloadProfile, cfg: &NicConfig) -> (u32, Vec<f64>) {
    let pts: Vec<_> = (1..=60)
        .map(|c| solve_perf(wp, cfg, &PortConfig::naive(), c))
        .collect();
    let k = pts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.ratio().partial_cmp(&b.1.ratio()).unwrap())
        .unwrap()
        .0 as u32
        + 1;
    (k, pts.iter().map(|p| p.throughput_mpps).collect())
}

fn main() {
    let cfg = NicConfig::default();
    for (name, wp) in [
        ("memheavy c200 a8 miss", synthetic(200.0, 8.0, 1 << 30)),
        ("memheavy c150 a10 miss", synthetic(150.0, 10.0, 1 << 30)),
        ("hits c400 a6", synthetic(400.0, 6.0, 64 * 1024)),
        ("miss c400 a6", synthetic(400.0, 6.0, 1 << 30)),
        ("compute c2000 a0.5", synthetic(2000.0, 0.5, 1 << 20)),
    ] {
        let (k, t) = knee(&wp, &cfg);
        println!(
            "{name:24} knee={k:2}  t1={:7.3} t8={:7.3} t40={:7.3} t58={:7.3} t60={:7.3}",
            t[0], t[7], t[39], t[57], t[59]
        );
        let l8 = solve_perf(&wp, &cfg, &PortConfig::naive(), 8).latency_us;
        let l60 = solve_perf(&wp, &cfg, &PortConfig::naive(), 60).latency_us;
        println!("{:24} l8={l8:.2}us l60={l60:.2}us", "");
    }
}
