//! Property tests over the from-scratch ML building blocks.

use proptest::prelude::*;
use tinyml::dataset::Standardizer;
use tinyml::kmeans::KMeans;
use tinyml::tree::{RegressionTree, TreeConfig};

fn arb_points(rows: std::ops::Range<usize>, dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0f64..100.0, dims..=dims),
        rows,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A regression tree's predictions never leave the range of its
    /// training targets (leaves are means of target subsets).
    #[test]
    fn tree_predictions_stay_in_target_range(
        x in arb_points(4..40, 3),
        probe in proptest::collection::vec(-200.0f64..200.0, 3..=3),
    ) {
        let y: Vec<f64> = x.iter().map(|r| r[0] - 2.0 * r[1] + r[2] * r[2] / 10.0).collect();
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default());
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let p = t.predict(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
    }

    /// K-means inertia is (approximately) non-increasing in k: Lloyd's
    /// algorithm only finds local optima, so the property is checked over
    /// a best-of-three seeding with a small tolerance.
    #[test]
    fn kmeans_inertia_monotone_in_k(x in arb_points(6..30, 2), seed in 0u64..100) {
        let mut last = f64::INFINITY;
        for k in 1..=4usize {
            let km = (0..3)
                .map(|i| KMeans::fit(&x, k, seed.wrapping_add(i * 7919)))
                .min_by(|a, b| a.inertia.partial_cmp(&b.inertia).expect("finite"))
                .expect("three fits");
            prop_assert!(km.assignment.iter().all(|&a| a < km.k()));
            prop_assert!(km.inertia <= last * 1.05 + 1e-6,
                "inertia rose from {last} to {} at k={k}", km.inertia);
            last = km.inertia.min(last);
        }
    }

    /// Standardized data has (near-)zero mean and unit variance per
    /// feature with nonzero spread.
    #[test]
    fn standardizer_centers_features(x in arb_points(4..40, 3)) {
        let s = Standardizer::fit(&x);
        let t = s.transform(&x);
        let n = t.len() as f64;
        for d in 0..3 {
            let mean: f64 = t.iter().map(|r| r[d]).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-6, "dim {d} mean {mean}");
        }
    }

    /// The distance report of a distribution against itself is zero, and
    /// against anything else non-negative and symmetric where promised.
    #[test]
    fn distance_identities(p in proptest::collection::vec(0.01f64..1.0, 4..12)) {
        use tinyml::dist;
        let q: Vec<f64> = p.iter().rev().cloned().collect();
        prop_assert!(dist::jensen_shannon(&p, &p).abs() < 1e-9);
        prop_assert!(dist::jensen_shannon(&p, &q) >= 0.0);
        prop_assert!((dist::jensen_shannon(&p, &q) - dist::jensen_shannon(&q, &p)).abs() < 1e-9);
        prop_assert!(dist::variational(&p, &q) <= 2.0 + 1e-9);
        prop_assert!(dist::bhattacharyya(&p, &q) >= -1e-12);
    }
}
