//! LSTM + fully-connected regression head (the paper's Figure 6 model).
//!
//! The model consumes a sequence of token ids (abstract-instruction
//! vocabulary indices, effectively one-hot encoded) and regresses scalar
//! targets — the number of SmartNIC instructions the opaque vendor
//! compiler would emit for the block. Training is full BPTT with Adam and
//! gradient clipping; targets are standardized internally.

use clara_obs as obs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::{clip_grad, sigmoid, Adam, Matrix};

/// Hyperparameters for [`LstmRegressor`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Vocabulary size (token ids must be `< vocab`).
    pub vocab: usize,
    /// LSTM hidden width.
    pub hidden: usize,
    /// Width of the FC layer after the LSTM.
    pub fc_hidden: usize,
    /// Number of regression outputs.
    pub outputs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Gradient-clipping max norm (per parameter tensor).
    pub clip: f64,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> LstmConfig {
        LstmConfig {
            vocab: 256,
            hidden: 32,
            fc_hidden: 24,
            outputs: 1,
            lr: 0.01,
            epochs: 40,
            clip: 5.0,
            seed: 7,
        }
    }
}

/// An LSTM sequence regressor with a two-layer FC head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmRegressor {
    pub(crate) cfg: LstmConfig,
    /// Input weights, `4*hidden x vocab` (one-hot input = column lookup).
    pub(crate) wx: Matrix,
    /// Recurrent weights, `4*hidden x hidden`.
    pub(crate) wh: Matrix,
    /// Gate biases, `4*hidden` (forget-gate bias initialized to 1).
    pub(crate) b: Vec<f64>,
    /// FC layer 1, `fc_hidden x hidden`.
    pub(crate) w1: Matrix,
    /// FC layer 1 bias.
    pub(crate) b1: Vec<f64>,
    /// FC layer 2, `outputs x fc_hidden`.
    pub(crate) w2: Matrix,
    /// FC layer 2 bias.
    pub(crate) b2: Vec<f64>,
    /// Target standardization (fit during training).
    pub(crate) y_mean: Vec<f64>,
    pub(crate) y_std: Vec<f64>,
}

struct StepCache {
    gates: Vec<f64>, // i, f, g, o after nonlinearity (4h)
    c: Vec<f64>,
    h: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// Gradient accumulator for (a lane of) one minibatch.
struct BatchGrads {
    wx: Matrix,
    wh: Matrix,
    b: Vec<f64>,
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    se: f64,
    count: usize,
}

impl BatchGrads {
    fn zeros(m: &LstmRegressor) -> BatchGrads {
        BatchGrads {
            wx: Matrix::zeros(m.wx.rows, m.wx.cols),
            wh: Matrix::zeros(m.wh.rows, m.wh.cols),
            b: vec![0.0; m.b.len()],
            w1: Matrix::zeros(m.w1.rows, m.w1.cols),
            b1: vec![0.0; m.b1.len()],
            w2: Matrix::zeros(m.w2.rows, m.w2.cols),
            b2: vec![0.0; m.b2.len()],
            se: 0.0,
            count: 0,
        }
    }

    fn merge(&mut self, o: &BatchGrads) {
        let pairs: [(&mut Vec<f64>, &Vec<f64>); 7] = [
            (&mut self.wx.data, &o.wx.data),
            (&mut self.wh.data, &o.wh.data),
            (&mut self.b, &o.b),
            (&mut self.w1.data, &o.w1.data),
            (&mut self.b1, &o.b1),
            (&mut self.w2.data, &o.w2.data),
            (&mut self.b2, &o.b2),
        ];
        for (a, b) in pairs {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        self.se += o.se;
        self.count += o.count;
    }
}

impl LstmRegressor {
    /// Creates an untrained model.
    pub fn new(cfg: LstmConfig) -> LstmRegressor {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let h = cfg.hidden;
        let mut b = vec![0.0; 4 * h];
        // Forget-gate bias = 1 (standard trick for gradient flow).
        for v in b.iter_mut().skip(h).take(h) {
            *v = 1.0;
        }
        LstmRegressor {
            wx: Matrix::xavier(4 * h, cfg.vocab, &mut rng),
            wh: Matrix::xavier(4 * h, h, &mut rng),
            b,
            w1: Matrix::xavier(cfg.fc_hidden, h, &mut rng),
            b1: vec![0.0; cfg.fc_hidden],
            w2: Matrix::xavier(cfg.outputs, cfg.fc_hidden, &mut rng),
            b2: vec![0.0; cfg.outputs],
            y_mean: vec![0.0; cfg.outputs],
            y_std: vec![1.0; cfg.outputs],
            cfg,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &LstmConfig {
        &self.cfg
    }

    fn forward(&self, seq: &[usize]) -> (Vec<StepCache>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.cfg.hidden;
        let mut hs = vec![0.0; h];
        let mut cs = vec![0.0; h];
        let mut caches = Vec::with_capacity(seq.len());
        for &tok in seq {
            let tok = tok.min(self.cfg.vocab - 1);
            // pre = Wx[:, tok] + Wh * h + b
            let mut pre = self.wh.matvec(&hs);
            for (r, p) in pre.iter_mut().enumerate() {
                *p += self.wx.get(r, tok) + self.b[r];
            }
            let mut gates = vec![0.0; 4 * h];
            for j in 0..h {
                gates[j] = sigmoid(pre[j]); // input gate
                gates[h + j] = sigmoid(pre[h + j]); // forget gate
                gates[2 * h + j] = pre[2 * h + j].tanh(); // candidate
                gates[3 * h + j] = sigmoid(pre[3 * h + j]); // output gate
            }
            let mut c_new = vec![0.0; h];
            let mut tanh_c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for j in 0..h {
                c_new[j] = gates[h + j] * cs[j] + gates[j] * gates[2 * h + j];
                tanh_c[j] = c_new[j].tanh();
                h_new[j] = gates[3 * h + j] * tanh_c[j];
            }
            caches.push(StepCache {
                gates,
                c: cs.clone(),
                h: hs.clone(),
                tanh_c: tanh_c.clone(),
            });
            cs = c_new;
            hs = h_new;
        }
        // FC head.
        let mut z1 = self.w1.matvec(&hs);
        for (z, b) in z1.iter_mut().zip(self.b1.iter()) {
            *z = (*z + b).max(0.0); // ReLU
        }
        let mut out = self.w2.matvec(&z1);
        for (o, b) in out.iter_mut().zip(self.b2.iter()) {
            *o += b;
        }
        (caches, hs, z1, out)
    }

    /// Predicts the (de-standardized) regression outputs for a sequence.
    pub fn predict(&self, seq: &[usize]) -> Vec<f64> {
        if seq.is_empty() {
            return self.y_mean.clone();
        }
        let (_, _, _, out) = self.forward(seq);
        out.iter()
            .zip(self.y_mean.iter().zip(self.y_std.iter()))
            .map(|(o, (m, s))| o * s + m)
            .collect()
    }

    /// Trains on `(sequence, targets)` pairs; returns final epoch MSE (in
    /// standardized target units).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or shapes mismatch the config.
    pub fn fit(&mut self, seqs: &[Vec<usize>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(seqs.len(), targets.len(), "seqs/targets mismatch");
        assert!(!seqs.is_empty(), "empty training set");
        assert!(
            targets.iter().all(|t| t.len() == self.cfg.outputs),
            "target width mismatch"
        );

        // Standardize targets.
        let n = targets.len() as f64;
        for k in 0..self.cfg.outputs {
            let mean = targets.iter().map(|t| t[k]).sum::<f64>() / n;
            let var = targets.iter().map(|t| (t[k] - mean).powi(2)).sum::<f64>() / n;
            self.y_mean[k] = mean;
            self.y_std[k] = var.sqrt().max(1e-9);
        }
        let ys: Vec<Vec<f64>> = targets
            .iter()
            .map(|t| {
                t.iter()
                    .zip(self.y_mean.iter().zip(self.y_std.iter()))
                    .map(|(y, (m, s))| (y - m) / s)
                    .collect()
            })
            .collect();

        let mut opt_wx = Adam::new(self.wx.data.len(), self.cfg.lr);
        let mut opt_wh = Adam::new(self.wh.data.len(), self.cfg.lr);
        let mut opt_b = Adam::new(self.b.len(), self.cfg.lr);
        let mut opt_w1 = Adam::new(self.w1.data.len(), self.cfg.lr);
        let mut opt_b1 = Adam::new(self.b1.len(), self.cfg.lr);
        let mut opt_w2 = Adam::new(self.w2.data.len(), self.cfg.lr);
        let mut opt_b2 = Adam::new(self.b2.len(), self.cfg.lr);

        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        let mut last_mse = f64::INFINITY;

        const BATCH: usize = 16;
        // Each minibatch splits into a FIXED number of lanes whose partial
        // gradients merge in lane order. The reduction tree depends only on
        // the data — never on the worker count — so a 1-worker and an
        // N-worker run produce bit-identical weights.
        const LANES: usize = 4;
        let _fit_span = obs::span!("lstm-fit", "seqs={} epochs={}", seqs.len(), self.cfg.epochs);
        let epochs_ctr = obs::counter("ml.lstm.epochs");
        let epoch_mse_hist = obs::histogram("ml.lstm.epoch_mse");
        let epoch_ns = obs::volatile_counter("ml.lstm.epoch_ns");
        for _epoch in 0..self.cfg.epochs {
            use rand::seq::SliceRandom;
            let t0 = obs::enabled().then(std::time::Instant::now);
            order.shuffle(&mut rng);
            let mut epoch_se = 0.0;
            let mut count = 0usize;

            for chunk in order.chunks(BATCH) {
                let lane_size = chunk.len().div_ceil(LANES);
                let lanes: Vec<&[usize]> = chunk.chunks(lane_size).collect();
                let partials =
                    crate::parallel::map_ordered(&lanes, |lane| self.grad_lane(lane, seqs, &ys));
                let mut g = BatchGrads::zeros(self);
                for p in &partials {
                    g.merge(p);
                }
                epoch_se += g.se;
                count += g.count;

                // Clip and apply.
                let scale = 1.0 / chunk.len().max(1) as f64;
                for gr in [
                    &mut g.wx.data,
                    &mut g.wh.data,
                    &mut g.b,
                    &mut g.w1.data,
                    &mut g.b1,
                    &mut g.w2.data,
                    &mut g.b2,
                ] {
                    gr.iter_mut().for_each(|v| *v *= scale);
                    clip_grad(gr, self.cfg.clip);
                }
                opt_wx.step(&mut self.wx.data, &g.wx.data);
                opt_wh.step(&mut self.wh.data, &g.wh.data);
                opt_b.step(&mut self.b, &g.b);
                opt_w1.step(&mut self.w1.data, &g.w1.data);
                opt_b1.step(&mut self.b1, &g.b1);
                opt_w2.step(&mut self.w2.data, &g.w2.data);
                opt_b2.step(&mut self.b2, &g.b2);
            }
            if count > 0 {
                last_mse = epoch_se / count as f64;
            }
            epochs_ctr.incr();
            epoch_mse_hist.observe(last_mse);
            if let Some(t0) = t0 {
                epoch_ns.add(t0.elapsed().as_nanos() as u64);
            }
        }
        last_mse
    }

    /// Forward + backward over one lane of a minibatch, against the
    /// *pre-step* parameters (`&self`). Pure, so lanes run concurrently.
    fn grad_lane(&self, lane: &[usize], seqs: &[Vec<usize>], ys: &[Vec<f64>]) -> BatchGrads {
        let h = self.cfg.hidden;
        let mut g = BatchGrads::zeros(self);
        for &si in lane {
            let seq = &seqs[si];
            if seq.is_empty() {
                continue;
            }
            let y = &ys[si];
            let (caches, h_last, z1, out) = self.forward(seq);

            // Output gradient (MSE).
            let dout: Vec<f64> = out.iter().zip(y.iter()).map(|(o, t)| o - t).collect();
            g.se += dout.iter().map(|d| d * d).sum::<f64>();
            g.count += 1;

            // FC head backward.
            g.w2.add_outer(&dout, &z1, 1.0);
            for (gv, d) in g.b2.iter_mut().zip(dout.iter()) {
                *gv += d;
            }
            let mut dz1 = vec![0.0; z1.len()];
            self.w2.add_tmatvec(&dout, &mut dz1);
            for (d, z) in dz1.iter_mut().zip(z1.iter()) {
                if *z <= 0.0 {
                    *d = 0.0; // ReLU gate
                }
            }
            g.w1.add_outer(&dz1, &h_last, 1.0);
            for (gv, d) in g.b1.iter_mut().zip(dz1.iter()) {
                *gv += d;
            }
            let mut dh = vec![0.0; h];
            self.w1.add_tmatvec(&dz1, &mut dh);

            // BPTT.
            let mut dc = vec![0.0; h];
            for (t, cache) in caches.iter().enumerate().rev() {
                let tok = seq[t].min(self.cfg.vocab - 1);
                let gates = &cache.gates;
                let mut dpre = vec![0.0; 4 * h];
                for j in 0..h {
                    let i_g = gates[j];
                    let f_g = gates[h + j];
                    let g_g = gates[2 * h + j];
                    let o_g = gates[3 * h + j];
                    let tc = cache.tanh_c[j];
                    // dh -> o gate and c.
                    let do_ = dh[j] * tc;
                    let dc_t = dc[j] + dh[j] * o_g * (1.0 - tc * tc);
                    let di = dc_t * g_g;
                    let df = dc_t * cache.c[j];
                    let dg = dc_t * i_g;
                    dpre[j] = di * i_g * (1.0 - i_g);
                    dpre[h + j] = df * f_g * (1.0 - f_g);
                    dpre[2 * h + j] = dg * (1.0 - g_g * g_g);
                    dpre[3 * h + j] = do_ * o_g * (1.0 - o_g);
                    dc[j] = dc_t * f_g; // Carry to t-1.
                }
                // Parameter gradients.
                for (r, &d) in dpre.iter().enumerate() {
                    *g.wx.get_mut(r, tok) += d;
                    g.b[r] += d;
                }
                g.wh.add_outer(&dpre, &cache.h, 1.0);
                // dh for t-1.
                let mut dh_prev = vec![0.0; h];
                self.wh.add_tmatvec(&dpre, &mut dh_prev);
                dh = dh_prev;
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic compiler: "cost" of a sequence depends on token identities
    /// and one contextual rule (token 2 after token 1 is free).
    fn toy_cost(seq: &[usize]) -> f64 {
        let mut cost = 0.0;
        let mut prev = usize::MAX;
        for &t in seq {
            cost += match t {
                1 => 1.0,
                2 => {
                    if prev == 1 {
                        0.0 // fused
                    } else {
                        2.0
                    }
                }
                3 => 4.0,
                _ => 0.5,
            };
            prev = t;
        }
        cost
    }

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seqs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let len = rng.gen_range(3..15);
            let seq: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            ys.push(vec![toy_cost(&seq)]);
            seqs.push(seq);
        }
        (seqs, ys)
    }

    #[test]
    fn learns_contextual_costs_better_than_mean() {
        let cfg = LstmConfig {
            vocab: 4,
            hidden: 16,
            fc_hidden: 12,
            outputs: 1,
            lr: 0.02,
            epochs: 60,
            clip: 5.0,
            seed: 3,
        };
        let (train_x, train_y) = toy_data(300, 1);
        let (test_x, test_y) = toy_data(60, 2);
        let mut model = LstmRegressor::new(cfg);
        model.fit(&train_x, &train_y);

        let preds: Vec<f64> = test_x.iter().map(|s| model.predict(s)[0]).collect();
        let truth: Vec<f64> = test_y.iter().map(|t| t[0]).collect();
        let model_err = crate::metrics::wmape(&truth, &preds);

        let mean = train_y.iter().map(|t| t[0]).sum::<f64>() / train_y.len() as f64;
        let mean_err = crate::metrics::wmape(&truth, &vec![mean; truth.len()]);
        assert!(
            model_err < 0.5 * mean_err,
            "lstm wmape {model_err:.3} vs mean predictor {mean_err:.3}"
        );
        assert!(model_err < 0.2, "lstm wmape {model_err:.3} too high");
    }

    #[test]
    fn empty_sequence_predicts_mean() {
        let cfg = LstmConfig {
            vocab: 4,
            epochs: 2,
            ..LstmConfig::default()
        };
        let (x, y) = toy_data(20, 5);
        let mut m = LstmRegressor::new(cfg);
        m.fit(&x, &y);
        let p = m.predict(&[]);
        assert_eq!(p.len(), 1);
        assert!(p[0].is_finite());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let cfg = LstmConfig {
            vocab: 4,
            hidden: 8,
            fc_hidden: 8,
            epochs: 3,
            ..LstmConfig::default()
        };
        let (x, y) = toy_data(30, 9);
        let mut a = LstmRegressor::new(cfg.clone());
        let mut b = LstmRegressor::new(cfg);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x[0]), b.predict(&x[0]));
    }
}
