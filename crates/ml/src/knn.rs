//! k-nearest-neighbour classifier and regressor.

use serde::{Deserialize, Serialize};

/// A kNN model (stores the training set; L2 distance).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Knn {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl Knn {
    /// Stores the training data.
    ///
    /// # Panics
    ///
    /// Panics on empty input, length mismatch, or `k == 0`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], k: usize) -> Knn {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len(), "x/y mismatch");
        assert!(k > 0, "k must be positive");
        Knn {
            k: k.min(x.len()),
            x: x.to_vec(),
            y: y.to_vec(),
        }
    }

    fn neighbours(&self, q: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.x.len()).collect();
        let dist = |i: usize| -> f64 {
            self.x[i]
                .iter()
                .zip(q.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        idx.sort_by(|&a, &b| dist(a).partial_cmp(&dist(b)).expect("finite distances"));
        idx.truncate(self.k);
        idx
    }

    /// Mean of the k nearest labels (regression).
    pub fn predict(&self, q: &[f64]) -> f64 {
        let nb = self.neighbours(q);
        nb.iter().map(|&i| self.y[i]).sum::<f64>() / nb.len() as f64
    }

    /// Majority vote among the k nearest labels (classification).
    pub fn classify(&self, q: &[f64]) -> usize {
        let nb = self.neighbours(q);
        let mut counts = std::collections::HashMap::new();
        for &i in &nb {
            *counts.entry(self.y[i] as usize).or_insert(0usize) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
            .map(|(label, _)| label)
            .expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_classification() {
        let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let m = Knn::fit(&x, &y, 2);
        assert_eq!(m.classify(&[0.5]), 0);
        assert_eq!(m.classify(&[10.4]), 1);
    }

    #[test]
    fn regression_averages_neighbours() {
        let x = vec![vec![0.0], vec![2.0], vec![100.0]];
        let y = vec![1.0, 3.0, 50.0];
        let m = Knn::fit(&x, &y, 2);
        assert_eq!(m.predict(&[1.0]), 2.0);
    }

    #[test]
    fn k_is_clamped_to_dataset() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 3.0];
        let m = Knn::fit(&x, &y, 10);
        assert_eq!(m.predict(&[0.0]), 2.0);
    }
}
