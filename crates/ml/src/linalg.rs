//! Minimal dense linear algebra used by the neural models.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage (`data[r * cols + c]`).
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut StdRng) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-style initialization for a `rows x cols` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::uniform(rows, cols, scale, rng)
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self * x` for a column vector `x` (length = `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `y += self^T * g` — accumulate the transpose-matvec into `y`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn add_tmatvec(&self, g: &[f64], y: &mut [f64]) {
        assert_eq!(g.len(), self.rows, "tmatvec rows mismatch");
        assert_eq!(y.len(), self.cols, "tmatvec cols mismatch");
        for (r, &gr) in g.iter().enumerate() {
            if gr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (yc, &rc) in y.iter_mut().zip(row.iter()) {
                *yc += gr * rc;
            }
        }
    }

    /// Rank-1 update: `self += scale * g * x^T`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn add_outer(&mut self, g: &[f64], x: &[f64], scale: f64) {
        assert_eq!(g.len(), self.rows, "outer rows mismatch");
        assert_eq!(x.len(), self.cols, "outer cols mismatch");
        for (r, &graw) in g.iter().enumerate() {
            let gr = graw * scale;
            if gr == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (rc, &xc) in row.iter_mut().zip(x.iter()) {
                *rc += gr * xc;
            }
        }
    }

    /// Sets every entry to zero (reusing storage).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a += scale * b`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(a: &mut [f64], b: &[f64], scale: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += scale * y;
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// An Adam optimizer state for one parameter tensor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub lr: f64,
}

impl Adam {
    /// Creates optimizer state for a parameter of `n` scalars.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Applies one Adam step: `param -= lr * mhat / (sqrt(vhat) + eps)`.
    ///
    /// # Panics
    ///
    /// Panics if `param`/`grad` lengths differ from the state size.
    pub fn step(&mut self, param: &mut [f64], grad: &[f64]) {
        assert_eq!(param.len(), self.m.len(), "adam param size mismatch");
        assert_eq!(grad.len(), self.m.len(), "adam grad size mismatch");
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for (i, p) in param.iter_mut().enumerate() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grad[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

/// Clips a gradient vector to a maximum L2 norm (returns the pre-clip norm).
pub fn clip_grad(grad: &mut [f64], max_norm: f64) -> f64 {
    let n = norm(grad);
    if n > max_norm && n > 0.0 {
        let s = max_norm / n;
        grad.iter_mut().for_each(|g| *g *= s);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_and_tmatvec_agree_with_manual() {
        let m = Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        let mut y = vec![0.0; 3];
        m.add_tmatvec(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.data, vec![1.5, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(x) = (x-3)^2 starting from 0.
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.01, "x={}", x[0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clip_scales_down_large_gradients() {
        let mut g = vec![3.0, 4.0]; // norm 5
        let pre = clip_grad(&mut g, 1.0);
        assert_eq!(pre, 5.0);
        assert!((norm(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xavier_is_seeded_deterministic() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(Matrix::xavier(3, 3, &mut r1), Matrix::xavier(3, 3, &mut r2));
    }
}
