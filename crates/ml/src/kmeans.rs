//! K-means clustering (Clara's memory-coalescing variable packing).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fitted K-means model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment of each training point.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Runs Lloyd's algorithm with k-means++ initialization.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or `k == 0`.
    pub fn fit(points: &[Vec<f64>], k: usize, seed: u64) -> KMeans {
        assert!(!points.is_empty(), "empty point set");
        assert!(k > 0, "k must be positive");
        let k = k.min(points.len());
        let mut rng = StdRng::seed_from_u64(seed);

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = vec![points[rng.gen_range(0..points.len())].clone()];
        while centroids.len() < k {
            let d2: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(p, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with existing centroids.
                centroids.push(points[rng.gen_range(0..points.len())].clone());
                continue;
            }
            let mut x = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                x -= d;
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(points[chosen].clone());
        }

        let mut assignment = vec![0usize; points.len()];
        for _iter in 0..100 {
            // Assign.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let best = (0..centroids.len())
                    .min_by(|&a, &b| {
                        sq_dist(p, &centroids[a])
                            .partial_cmp(&sq_dist(p, &centroids[b]))
                            .expect("finite")
                    })
                    .expect("k >= 1");
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Update.
            let d = points[0].len();
            let mut sums = vec![vec![0.0; d]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for (s, v) in sums[assignment[i]].iter_mut().zip(p.iter()) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
                if count > 0 {
                    *c = sum.iter().map(|s| s / count as f64).collect();
                }
            }
            if !changed {
                break;
            }
        }

        let inertia = points
            .iter()
            .zip(assignment.iter())
            .map(|(p, &a)| sq_dist(p, &centroids[a]))
            .sum();
        KMeans {
            centroids,
            assignment,
            inertia,
        }
    }

    /// Picks `k` in `1..=k_max` by the elbow criterion (largest relative
    /// inertia drop), then fits with that `k`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn fit_auto(points: &[Vec<f64>], k_max: usize, seed: u64) -> KMeans {
        assert!(!points.is_empty(), "empty point set");
        let k_max = k_max.clamp(1, points.len());
        let fits: Vec<KMeans> = (1..=k_max).map(|k| KMeans::fit(points, k, seed)).collect();
        // Choose the smallest k whose marginal improvement falls below 20%.
        let mut best = 0;
        for i in 1..fits.len() {
            let prev = fits[i - 1].inertia.max(1e-12);
            let gain = (fits[i - 1].inertia - fits[i].inertia) / prev;
            if gain > 0.2 {
                best = i;
            } else {
                break;
            }
        }
        fits.into_iter().nth(best).expect("at least one fit")
    }

    /// Assigns a new point to its nearest centroid.
    pub fn assign(&self, p: &[f64]) -> usize {
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                sq_dist(p, &self.centroids[a])
                    .partial_cmp(&sq_dist(p, &self.centroids[b]))
                    .expect("finite")
            })
            .expect("k >= 1")
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in 0..3 {
            let cx = c as f64 * 10.0;
            for i in 0..20 {
                pts.push(vec![cx + (i % 5) as f64 * 0.1, cx - (i % 3) as f64 * 0.1]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = blobs();
        let km = KMeans::fit(&pts, 3, 1);
        // All points of the same blob share a cluster.
        for blob in 0..3 {
            let first = km.assignment[blob * 20];
            assert!(km.assignment[blob * 20..(blob + 1) * 20]
                .iter()
                .all(|&a| a == first));
        }
        assert!(km.inertia < 10.0);
    }

    #[test]
    fn auto_k_picks_three_for_three_blobs() {
        let pts = blobs();
        let km = KMeans::fit_auto(&pts, 6, 2);
        assert_eq!(km.k(), 3, "expected 3 clusters, got {}", km.k());
    }

    #[test]
    fn assign_matches_training_assignment() {
        let pts = blobs();
        let km = KMeans::fit(&pts, 3, 3);
        for (p, &a) in pts.iter().zip(km.assignment.iter()) {
            assert_eq!(km.assign(p), a);
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&pts, 10, 4);
        assert!(km.k() <= 2);
    }
}
