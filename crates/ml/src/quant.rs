//! Fixed-point (Q16.16) quantized inference — the fast path behind the
//! precision axis.
//!
//! The f64 models in this crate spend most of their inference time in
//! `libm` transcendentals: one LSTM timestep at hidden width `h` evaluates
//! `3h` sigmoids and `2h` tanhs. This module provides drop-in quantized
//! twins ([`QuantLstm`], [`QuantMlp`], [`QuantGbdt`]) that store weights
//! as Q16.16 fixed point (`i32` with 16 fractional bits), accumulate in
//! `i64`, and replace `tanh`/`exp` with a 128-segment first-order Taylor
//! table (value + secant slope per segment, odd symmetry, saturation at
//! `|x| >= 4`; max error vs `f64::tanh` is under `2e-4`). Sigmoid is
//! derived as `σ(x) = (tanh(x/2) + 1) / 2` so both nonlinearities share
//! one table.
//!
//! All quantized arithmetic is integer and therefore exact and
//! platform-independent: the only rounding happens at weight/input
//! quantization and inside `qmul`'s right shift, and both are fully
//! deterministic. A consequence this crate's callers rely on: batched
//! evaluation is **bit-identical** to one-at-a-time evaluation, because
//! each lane's operation sequence is independent of the batch layout.
//! [`QuantLstm::predict_batch_tokens`] exploits that by picking a kernel
//! per batch width: narrow batches run contiguous single-lane kernels
//! with shared scratch, wide ones a structure-of-arrays state layout
//! (lanes contiguous per hidden unit, sequences sorted by length so the
//! active prefix shrinks monotonically).
//!
//! Quantized models implement the same [`Regressor`] trait as their f64
//! sources, so choosing a precision is choosing which `&dyn Regressor` a
//! call site dispatches through — see [`Precision`].

use std::cmp::Reverse;
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Error, Serialize, Value};

use crate::gbdt::GbdtRegressor;
use crate::lstm::LstmRegressor;
use crate::mlp::{Loss, Mlp};
use crate::regressor::{Regressor, RegressorInput};
use crate::tree::FlatNode;

/// Numeric precision for model inference.
///
/// `F64` is the bit-exact reference path; `Q16` runs the Q16.16
/// fixed-point twins in this module. The enum is `#[non_exhaustive]` so
/// narrower formats (Q8.8, block-scaled int8, …) can be added without a
/// breaking change; always keep a wildcard arm when matching.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double-precision floating point (the reference semantics).
    #[default]
    F64,
    /// Q16.16 fixed point with table-approximated nonlinearities.
    Q16,
}

impl Precision {
    /// Every precision this build supports, reference first.
    pub const ALL: &'static [Precision] = &[Precision::F64, Precision::Q16];

    /// Canonical lowercase name (`"f64"` / `"q16"`), as used by CLI flags
    /// and the serve protocol.
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::Q16 => "q16",
        }
    }

    /// Parses a canonical name; the error lists the accepted values.
    pub fn parse(s: &str) -> Result<Precision, String> {
        match s {
            "f64" => Ok(Precision::F64),
            "q16" => Ok(Precision::Q16),
            other => Err(format!(
                "unknown precision {other:?} (expected \"f64\" or \"q16\")"
            )),
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Precision {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Precision {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Envelopes written before the precision axis existed carry no
            // precision field; they are f64 by construction.
            Value::Null => Ok(Precision::F64),
            Value::Str(s) => Precision::parse(s).map_err(Error::msg),
            other => Err(Error::msg(format!(
                "expected a precision string, got {other:?}"
            ))),
        }
    }
}

/// Fractional bits in the Q16.16 format.
pub const FRAC_BITS: u32 = 16;
/// `1.0` in Q16.16.
pub const ONE_Q: i32 = 1 << FRAC_BITS;

/// Quantizes an `f64` to Q16.16, rounding to nearest and saturating at
/// the `i32` range (non-finite inputs saturate; NaN maps to 0).
pub fn to_q(x: f64) -> i32 {
    let scaled = (x * ONE_Q as f64).round();
    if scaled >= i32::MAX as f64 {
        i32::MAX
    } else if scaled <= i32::MIN as f64 {
        i32::MIN
    } else {
        scaled as i32
    }
}

/// Exact Q16.16 → `f64` conversion.
pub fn q_to_f(q: i32) -> f64 {
    q as f64 / ONE_Q as f64
}

/// Q16.16 multiply: widen to `i64`, shift the extra 16 fractional bits
/// back out (truncating toward negative infinity — deterministic).
pub fn qmul(a: i32, b: i32) -> i32 {
    ((a as i64 * b as i64) >> FRAC_BITS) as i32
}

/// Saturating narrow from an `i64` accumulator back to Q16.16.
fn sat(v: i64) -> i32 {
    v.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Widening dot product of two Q16.16 slices (result is Q32.32).
///
/// Four independent accumulators break the 3-cycle integer-multiply
/// dependency chain; integer addition is associative, so the result is
/// bit-identical to a left-to-right sum.
fn dot_q(a: &[i32], b: &[i32]) -> i64 {
    let mut acc = [0i64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..4 {
            acc[i] += wa[i] as i64 * wb[i] as i64;
        }
    }
    let mut tail = 0i64;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x as i64 * y as i64;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Segments in the tanh table; step `8.0 / 256 = 2^-5`.
const TANH_SEGS: usize = 256;
/// Bits of within-segment fraction (`FRAC_BITS - 5`).
const SEG_SHIFT: u32 = FRAC_BITS - 5;
/// Saturation point: `tanh(x) ≈ ±1` beyond `|x| = 8` (error `2e-7`,
/// far below the per-segment curvature budget of `~1e-4`).
const TANH_CLAMP_Q: i64 = 8 * ONE_Q as i64;

/// `(value, secant slope)` per segment, both Q16.16, built once from the
/// f64 reference `tanh`. Secant (not tangent) slopes make the piecewise
/// approximation continuous and halve the worst-case segment error.
fn tanh_table() -> &'static [(i32, i32); TANH_SEGS] {
    static TABLE: OnceLock<[(i32, i32); TANH_SEGS]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [(0i32, 0i32); TANH_SEGS];
        let step = (SEG_SHIFT as f64).exp2() / ONE_Q as f64; // 1/32
        for (i, e) in t.iter_mut().enumerate() {
            let x0 = i as f64 * step;
            let v0 = x0.tanh();
            let v1 = (x0 + step).tanh();
            *e = (to_q(v0), to_q((v1 - v0) / step));
        }
        t
    })
}

/// [`qtanh`] against an already-resolved table — the inference loops
/// hoist the `OnceLock` access out of their hot paths.
#[inline]
fn qtanh_t(table: &[(i32, i32); TANH_SEGS], x: i32) -> i32 {
    let a = (x as i64).abs();
    let mag = if a >= TANH_CLAMP_Q {
        ONE_Q
    } else {
        let idx = (a >> SEG_SHIFT) as usize;
        let frac = (a & ((1 << SEG_SHIFT) - 1)) as i32;
        let (v, s) = table[idx];
        v + qmul(s, frac)
    };
    if x < 0 {
        -mag
    } else {
        mag
    }
}

/// [`qsigmoid`] against an already-resolved table.
#[inline]
fn qsigmoid_t(table: &[(i32, i32); TANH_SEGS], x: i32) -> i32 {
    (qtanh_t(table, x >> 1) + ONE_Q) >> 1
}

/// Fixed-point `tanh` via the segment table (odd symmetry, saturating).
pub fn qtanh(x: i32) -> i32 {
    qtanh_t(tanh_table(), x)
}

/// Fixed-point logistic sigmoid, `σ(x) = (tanh(x/2) + 1) / 2`.
pub fn qsigmoid(x: i32) -> i32 {
    qsigmoid_t(tanh_table(), x)
}

/// Lane count at which batched LSTM inference switches from per-lane
/// contiguous kernels to the structure-of-arrays layout. Below this the
/// per-weight lane loop's setup cost exceeds its streaming win.
const SOA_MIN_LANES: usize = 16;

/// Reusable per-call state for the single-lane LSTM kernel.
#[derive(Default)]
struct Scratch {
    hs: Vec<i32>,
    cs: Vec<i32>,
    pre: Vec<i64>,
}

/// Q16.16 twin of [`LstmRegressor`]: same topology, integer weights,
/// table nonlinearities, and a structure-of-arrays batch path.
///
/// Only the first regression output is evaluated (every Clara predictor
/// trains with `outputs == 1`); the de-standardization stats stay in f64
/// because they scale the final scalar, not the recurrence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantLstm {
    vocab: usize,
    hidden: usize,
    fc_hidden: usize,
    /// Gate input weights stored **column-major** (`vocab x 4h`): a
    /// one-hot input selects one column, so the per-timestep gate loop
    /// reads a contiguous `4h` slice instead of striding by `vocab`.
    wxt: Vec<i32>,
    /// Recurrent weights `4h x h`, row-major.
    wh: Vec<i32>,
    /// Gate biases, `4h`.
    b: Vec<i32>,
    /// FC layer 1 `fc_hidden x h`, row-major.
    w1: Vec<i32>,
    b1: Vec<i32>,
    /// FC layer 2 first row (`fc_hidden` weights for output 0).
    w2: Vec<i32>,
    b2: i32,
    y_mean: f64,
    y_std: f64,
}

impl QuantLstm {
    /// Quantizes a trained f64 LSTM (weights round to nearest Q16.16).
    pub fn quantize(m: &LstmRegressor) -> QuantLstm {
        let cfg = m.config().clone();
        let qv = |v: &[f64]| v.iter().map(|&x| to_q(x)).collect::<Vec<i32>>();
        let rows = 4 * cfg.hidden;
        let mut wxt = vec![0i32; rows * cfg.vocab];
        for r in 0..rows {
            for t in 0..cfg.vocab {
                wxt[t * rows + r] = to_q(m.wx.data[r * cfg.vocab + t]);
            }
        }
        QuantLstm {
            vocab: cfg.vocab,
            hidden: cfg.hidden,
            fc_hidden: cfg.fc_hidden,
            wxt,
            wh: qv(&m.wh.data),
            b: qv(&m.b),
            w1: qv(&m.w1.data),
            b1: qv(&m.b1),
            w2: qv(&m.w2.data[..cfg.fc_hidden]),
            b2: to_q(m.b2[0]),
            y_mean: m.y_mean[0],
            y_std: m.y_std[0],
        }
    }

    /// Predicts the (de-standardized) first output for one sequence.
    pub fn predict_tokens(&self, seq: &[usize]) -> f64 {
        self.run_single(seq, &mut Scratch::default())
    }

    /// One sequence through the recurrence with contiguous state and a
    /// caller-owned scratch (so batch loops allocate once).
    ///
    /// Every entry point funnels into either this kernel or the
    /// structure-of-arrays one below; because all arithmetic is exact
    /// integer math, the two differ only in summation order and therefore
    /// produce bit-identical results.
    fn run_single(&self, seq: &[usize], s: &mut Scratch) -> f64 {
        if seq.is_empty() {
            // Empty sequences short-circuit to the target mean, same as
            // the f64 model.
            return self.y_mean;
        }
        let h = self.hidden;
        let table = tanh_table();
        let Scratch { hs, cs, pre } = s;
        hs.clear();
        hs.resize(h, 0);
        cs.clear();
        cs.resize(h, 0);
        pre.clear();
        pre.resize(4 * h, 0);
        for &tok in seq {
            let tok = tok.min(self.vocab - 1);
            for (r, p) in pre.iter_mut().enumerate() {
                let row = &self.wh[r * h..(r + 1) * h];
                *p = dot_q(row, hs);
            }
            let col = &self.wxt[tok * 4 * h..(tok + 1) * 4 * h];
            for j in 0..h {
                let pre_at =
                    |r: usize| sat((pre[r] >> FRAC_BITS) + col[r] as i64 + self.b[r] as i64);
                let gi = qsigmoid_t(table, pre_at(j));
                let gf = qsigmoid_t(table, pre_at(h + j));
                let gc = qtanh_t(table, pre_at(2 * h + j));
                let go = qsigmoid_t(table, pre_at(3 * h + j));
                let c = sat(qmul(gf, cs[j]) as i64 + qmul(gi, gc) as i64);
                cs[j] = c;
                hs[j] = qmul(go, qtanh_t(table, c));
            }
        }
        self.head(|j| hs[j])
    }

    /// Batch inference: input order is preserved and every element equals
    /// `predict_tokens` on that sequence exactly.
    ///
    /// Narrow batches (under `SOA_MIN_LANES` lanes — the common case
    /// for per-module block sets) run each lane through the contiguous
    /// single-lane kernel with shared scratch; wide batches switch to a
    /// structure-of-arrays layout where lanes are contiguous per hidden
    /// unit and the inner matvec loop streams lanes with one weight
    /// broadcast, with sequences sorted by length so lanes retire from a
    /// shrinking active prefix.
    pub fn predict_batch_tokens(&self, seqs: &[&[usize]]) -> Vec<f64> {
        let n = seqs.len();
        if n == 0 {
            return Vec::new();
        }
        if n < SOA_MIN_LANES {
            let mut scratch = Scratch::default();
            return seqs
                .iter()
                .map(|s| self.run_single(s, &mut scratch))
                .collect();
        }
        let h = self.hidden;
        let table = tanh_table();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| Reverse(seqs[i].len()));
        let max_len = seqs[order[0]].len();
        let mut hs = vec![0i32; h * n];
        let mut cs = vec![0i32; h * n];
        let mut pre = vec![0i64; 4 * h * n];
        for t in 0..max_len {
            let active = order.partition_point(|&i| seqs[i].len() > t);
            // pre[r][k] = Σ_j wh[r][j] · h[j][k], kept in Q32.32 (i64) so
            // the single >>16 at use time matches every batch width.
            // Integer addition is associative, so the loop orders below
            // (and the single-lane kernel) produce bit-identical sums;
            // they differ only in memory order.
            if active < SOA_MIN_LANES {
                // The active prefix has shrunk: per-weight lane loops
                // would spend more time on loop setup than arithmetic, so
                // walk each remaining lane with a strided dot product.
                for k in 0..active {
                    for r in 0..4 * h {
                        let row = &self.wh[r * h..(r + 1) * h];
                        let mut acc = 0i64;
                        for (j, &w) in row.iter().enumerate() {
                            acc += w as i64 * hs[j * n + k] as i64;
                        }
                        pre[r * n + k] = acc;
                    }
                }
            } else {
                // Wide prefix: stream contiguous lane groups per weight.
                for r in 0..4 * h {
                    let row = &self.wh[r * h..(r + 1) * h];
                    let dst = &mut pre[r * n..r * n + active];
                    dst.fill(0);
                    for (j, &w) in row.iter().enumerate() {
                        let w = w as i64;
                        let lane = &hs[j * n..j * n + active];
                        for (d, &hv) in dst.iter_mut().zip(lane) {
                            *d += w * hv as i64;
                        }
                    }
                }
            }
            for k in 0..active {
                let tok = seqs[order[k]][t].min(self.vocab - 1);
                let col = &self.wxt[tok * 4 * h..(tok + 1) * 4 * h];
                for j in 0..h {
                    let pre_at = |r: usize| {
                        sat((pre[r * n + k] >> FRAC_BITS) + col[r] as i64 + self.b[r] as i64)
                    };
                    let gi = qsigmoid_t(table, pre_at(j));
                    let gf = qsigmoid_t(table, pre_at(h + j));
                    let gc = qtanh_t(table, pre_at(2 * h + j));
                    let go = qsigmoid_t(table, pre_at(3 * h + j));
                    let c = sat(qmul(gf, cs[j * n + k]) as i64 + qmul(gi, gc) as i64);
                    cs[j * n + k] = c;
                    hs[j * n + k] = qmul(go, qtanh_t(table, c));
                }
            }
        }
        let mut out = vec![0.0; n];
        for (k, &i) in order.iter().enumerate() {
            out[i] = if seqs[i].is_empty() {
                // Empty sequences short-circuit to the target mean, same
                // as the f64 model.
                self.y_mean
            } else {
                self.head(|j| hs[j * n + k])
            };
        }
        out
    }

    /// FC head (ReLU layer + linear output 0) over a final hidden state.
    fn head(&self, hval: impl Fn(usize) -> i32) -> f64 {
        let h = self.hidden;
        let mut acc_out = 0i64;
        for i in 0..self.fc_hidden {
            let mut acc = 0i64;
            for j in 0..h {
                acc += self.w1[i * h + j] as i64 * hval(j) as i64;
            }
            let z = sat((acc >> FRAC_BITS) + self.b1[i] as i64).max(0);
            acc_out += self.w2[i] as i64 * z as i64;
        }
        let o = sat((acc_out >> FRAC_BITS) + self.b2 as i64);
        q_to_f(o) * self.y_std + self.y_mean
    }
}

impl Regressor for QuantLstm {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        self.predict_tokens(x.tokens())
    }

    fn predict_batch(&self, xs: &[RegressorInput<'_>]) -> Vec<f64> {
        let seqs: Vec<&[usize]> = xs.iter().map(|x| x.tokens()).collect();
        self.predict_batch_tokens(&seqs)
    }
}

/// A row-major Q16.16 weight matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QMatrix {
    /// Output dimensionality of the layer.
    pub rows: usize,
    /// Input dimensionality of the layer.
    pub cols: usize,
    /// Row-major `rows x cols` weights.
    pub data: Vec<i32>,
}

/// Q16.16 twin of a scalar-regression [`Mlp`] (ReLU hidden layers,
/// linear output, de-standardization in f64).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantMlp {
    weights: Vec<QMatrix>,
    biases: Vec<Vec<i32>>,
    y_mean: f64,
    y_std: f64,
}

impl QuantMlp {
    /// Quantizes a trained regression MLP.
    ///
    /// # Panics
    ///
    /// Panics if the network was trained with [`Loss::Softmax`] —
    /// classifiers have no quantized path.
    pub fn quantize(m: &Mlp) -> QuantMlp {
        assert!(
            matches!(m.cfg.loss, Loss::Mse),
            "only regression MLPs can be quantized"
        );
        QuantMlp {
            weights: m
                .weights
                .iter()
                .map(|w| QMatrix {
                    rows: w.rows,
                    cols: w.cols,
                    data: w.data.iter().map(|&x| to_q(x)).collect(),
                })
                .collect(),
            biases: m
                .biases
                .iter()
                .map(|b| b.iter().map(|&x| to_q(x)).collect())
                .collect(),
            y_mean: m.y_mean,
            y_std: m.y_std,
        }
    }

    /// Predicts the (de-standardized) first output for one feature row.
    pub fn predict_features(&self, x: &[f64]) -> f64 {
        let mut a: Vec<i32> = x.iter().map(|&v| to_q(v)).collect();
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            let mut z = vec![0i32; w.rows];
            for (r, zr) in z.iter_mut().enumerate() {
                let mut acc = 0i64;
                for (c, &av) in a.iter().enumerate() {
                    acc += w.data[r * w.cols + c] as i64 * av as i64;
                }
                let mut v = sat((acc >> FRAC_BITS) + b[r] as i64);
                if l < last {
                    v = v.max(0); // ReLU on hidden layers only.
                }
                *zr = v;
            }
            a = z;
        }
        q_to_f(a[0]) * self.y_std + self.y_mean
    }
}

impl Regressor for QuantMlp {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        self.predict_features(x.features())
    }
}

/// One flattened tree node: `feat < 0` marks a leaf whose `q` holds the
/// shrinkage-scaled leaf value; otherwise `q` is the split threshold and
/// `left`/`right` index into the node array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNode {
    feat: i32,
    q: i32,
    left: u32,
    right: u32,
}

/// Q16.16 twin of [`GbdtRegressor`]: array-flattened trees, quantized
/// thresholds, leaf values pre-scaled by the shrinkage at quantize time
/// so prediction is one `i64` sum over leaves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantGbdt {
    base_q: i64,
    trees: Vec<Vec<QNode>>,
}

impl QuantGbdt {
    /// Quantizes a fitted GBDT ensemble.
    pub fn quantize(m: &GbdtRegressor) -> QuantGbdt {
        QuantGbdt {
            base_q: to_q(m.base) as i64,
            trees: m
                .trees
                .iter()
                .map(|t| {
                    t.flatten()
                        .iter()
                        .map(|n| match n {
                            FlatNode::Leaf { value } => QNode {
                                feat: -1,
                                q: to_q(m.shrinkage * value),
                                left: 0,
                                right: 0,
                            },
                            FlatNode::Split {
                                feat,
                                thresh,
                                left,
                                right,
                            } => QNode {
                                feat: *feat as i32,
                                q: to_q(*thresh),
                                left: *left as u32,
                                right: *right as u32,
                            },
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Predicts for one feature row.
    pub fn predict_features(&self, x: &[f64]) -> f64 {
        let xq: Vec<i32> = x.iter().map(|&v| to_q(v)).collect();
        let mut acc = self.base_q;
        for t in &self.trees {
            let mut i = 0usize;
            loop {
                let n = &t[i];
                if n.feat < 0 {
                    acc += n.q as i64;
                    break;
                }
                i = if xq[n.feat as usize] <= n.q {
                    n.left as usize
                } else {
                    n.right as usize
                };
            }
        }
        acc as f64 / ONE_Q as f64
    }
}

impl Regressor for QuantGbdt {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        self.predict_features(x.features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::GbdtConfig;
    use crate::lstm::LstmConfig;
    use crate::mlp::MlpConfig;
    use serde_json::{from_str, to_string};

    #[test]
    fn q16_round_trip_error_is_half_lsb() {
        for &x in &[0.0, 1.0, -1.0, 0.333, -7.25, 1234.5678, -0.00001] {
            assert!((q_to_f(to_q(x)) - x).abs() <= 0.5 / ONE_Q as f64 + 1e-12);
        }
        assert_eq!(to_q(f64::NAN), 0);
        assert_eq!(to_q(f64::INFINITY), i32::MAX);
        assert_eq!(to_q(f64::NEG_INFINITY), i32::MIN);
        assert_eq!(qmul(to_q(1.5), to_q(2.0)), to_q(3.0));
    }

    #[test]
    fn table_tanh_and_sigmoid_stay_within_error_budget() {
        let mut max_t = 0.0f64;
        let mut max_s = 0.0f64;
        let mut x = -8.0;
        while x <= 8.0 {
            let t = q_to_f(qtanh(to_q(x)));
            let s = q_to_f(qsigmoid(to_q(x)));
            max_t = max_t.max((t - x.tanh()).abs());
            max_s = max_s.max((s - 1.0 / (1.0 + (-x).exp())).abs());
            x += 0.00137;
        }
        assert!(max_t < 2e-4, "tanh error {max_t}");
        assert!(max_s < 2e-4, "sigmoid error {max_s}");
        // Odd symmetry and saturation.
        assert_eq!(qtanh(to_q(0.7)), -qtanh(to_q(-0.7)));
        assert_eq!(qtanh(to_q(40.0)), ONE_Q);
        assert_eq!(qtanh(i32::MIN), -ONE_Q);
    }

    #[test]
    fn precision_parses_renders_and_survives_serde() {
        for &p in Precision::ALL {
            assert_eq!(Precision::parse(p.as_str()), Ok(p));
            let json = to_string(&p).unwrap();
            assert_eq!(from_str::<Precision>(&json).unwrap(), p);
        }
        assert!(Precision::parse("q8").is_err());
        // Missing-field semantics: Null decodes as the legacy default.
        assert_eq!(Precision::from_value(&Value::Null).unwrap(), Precision::F64);
    }

    fn toy_lstm() -> LstmRegressor {
        let cfg = LstmConfig {
            vocab: 12,
            hidden: 10,
            fc_hidden: 8,
            outputs: 1,
            lr: 0.02,
            epochs: 40,
            clip: 5.0,
            seed: 5,
        };
        let seqs: Vec<Vec<usize>> = (0..30)
            .map(|i| (0..(3 + i % 9)).map(|j| (i + j) % 12).collect())
            .collect();
        let targets: Vec<Vec<f64>> = seqs
            .iter()
            .map(|s| vec![s.len() as f64 * 3.0 + s.iter().sum::<usize>() as f64 * 0.25])
            .collect();
        let mut m = LstmRegressor::new(cfg);
        m.fit(&seqs, &targets);
        m
    }

    #[test]
    fn quantized_lstm_tracks_f64_reference() {
        let m = toy_lstm();
        let q = QuantLstm::quantize(&m);
        for i in 0..24usize {
            let seq: Vec<usize> = (0..(1 + i % 11)).map(|j| (j * 5 + i) % 12).collect();
            let f = m.predict(&seq)[0];
            let qv = q.predict_tokens(&seq);
            assert!(
                (qv - f).abs() <= 0.5f64.max(0.02 * f.abs()),
                "seq {i}: f64 {f} vs q16 {qv}"
            );
        }
        // Empty input short-circuits identically.
        assert_eq!(q.predict_tokens(&[]), m.predict(&[])[0]);
    }

    #[test]
    fn soa_batch_is_bit_identical_to_single_lane() {
        let q = QuantLstm::quantize(&toy_lstm());
        let seqs: Vec<Vec<usize>> = (0..17)
            .map(|i| (0..(i % 7)).map(|j| (i * 3 + j) % 12).collect())
            .collect();
        let refs: Vec<&[usize]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batched = q.predict_batch_tokens(&refs);
        for (i, s) in refs.iter().enumerate() {
            let single = q.predict_tokens(s);
            assert!(
                batched[i].to_bits() == single.to_bits(),
                "lane {i} diverged: batch {} vs single {single}",
                batched[i]
            );
        }
        // Trait batch entry point sees the same values.
        let inputs: Vec<RegressorInput<'_>> =
            refs.iter().map(|s| RegressorInput::Tokens(s)).collect();
        assert_eq!(Regressor::predict_batch(&q, &inputs), batched);
    }

    #[test]
    fn quantized_mlp_and_gbdt_track_f64() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64 * 0.5, ((i * 7) % 13) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 1.5 * r[0] + 2.0 * r[1] - r[2]).collect();

        let mut mlp = Mlp::new(MlpConfig {
            inputs: 3,
            hidden: vec![12],
            outputs: 1,
            loss: Loss::Mse,
            lr: 0.01,
            epochs: 60,
            seed: 3,
        });
        mlp.fit(&x, &y);
        let qm = QuantMlp::quantize(&mlp);

        let gbdt = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let qg = QuantGbdt::quantize(&gbdt);

        for row in &x {
            let fm = mlp.predict_scalar(row);
            let fg = gbdt.predict(row);
            assert!(
                (qm.predict_features(row) - fm).abs() <= 0.5f64.max(0.02 * fm.abs()),
                "mlp drifted at {row:?}"
            );
            assert!(
                (qg.predict_features(row) - fg).abs() <= 0.5f64.max(0.02 * fg.abs()),
                "gbdt drifted at {row:?}"
            );
        }
    }

    #[test]
    fn quantized_models_survive_serde() {
        let q = QuantLstm::quantize(&toy_lstm());
        let seq = [1usize, 4, 7, 2];
        let back: QuantLstm = from_str(&to_string(&q).unwrap()).unwrap();
        assert_eq!(
            back.predict_tokens(&seq).to_bits(),
            q.predict_tokens(&seq).to_bits()
        );
    }
}
