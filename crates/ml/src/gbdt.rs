//! Gradient-boosted decision trees (regression and classification).
//!
//! Clara uses GBDT for multicore scale-out prediction (Section 4.2) and as
//! a baseline classifier for algorithm identification (Figure 9). The
//! ranking variant lives in [`crate::rank`].

use serde::{Deserialize, Serialize};

use crate::linalg::sigmoid;
use crate::tree::{RegressionTree, TreeConfig};

/// Hyperparameters for gradient boosting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub rounds: usize,
    /// Shrinkage (learning rate) applied to each tree.
    pub shrinkage: f64,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
}

impl Default for GbdtConfig {
    fn default() -> GbdtConfig {
        GbdtConfig {
            rounds: 80,
            shrinkage: 0.1,
            tree: TreeConfig {
                max_depth: 4,
                min_split: 4,
                min_leaf: 2,
            },
        }
    }
}

/// GBDT for squared-error regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtRegressor {
    pub(crate) base: f64,
    pub(crate) shrinkage: f64,
    pub(crate) trees: Vec<RegressionTree>,
}

impl GbdtRegressor {
    /// Fits on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on empty input or length mismatch.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &GbdtConfig) -> GbdtRegressor {
        assert_eq!(x.len(), y.len(), "x/y mismatch");
        assert!(!x.is_empty(), "empty training set");
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let _fit_span = clara_obs::span!("gbdt-fit", "rows={} rounds={}", x.len(), cfg.rounds);
        let rounds_ctr = clara_obs::counter("ml.gbdt.rounds");
        for _ in 0..cfg.rounds {
            rounds_ctr.incr();
            let resid: Vec<f64> = y.iter().zip(pred.iter()).map(|(t, p)| t - p).collect();
            let tree = RegressionTree::fit(x, &resid, &cfg.tree);
            for (p, xi) in pred.iter_mut().zip(x.iter()) {
                *p += cfg.shrinkage * tree.predict(xi);
            }
            trees.push(tree);
        }
        GbdtRegressor {
            base,
            shrinkage: cfg.shrinkage,
            trees,
        }
    }

    /// Predicts for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when no trees were fitted.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// GBDT multi-class classifier (one-vs-rest logistic boosting).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    per_class: Vec<GbdtBinary>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GbdtBinary {
    base: f64,
    shrinkage: f64,
    trees: Vec<RegressionTree>,
}

impl GbdtBinary {
    fn fit(x: &[Vec<f64>], targets: &[f64], cfg: &GbdtConfig) -> GbdtBinary {
        // Logistic loss: F starts at log-odds; each round fits the
        // negative gradient (residual of probability).
        let pos = targets.iter().sum::<f64>();
        let n = targets.len() as f64;
        let p0 = (pos / n).clamp(1e-6, 1.0 - 1e-6);
        let base = (p0 / (1.0 - p0)).ln();
        let mut f = vec![base; targets.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            let grad: Vec<f64> = targets
                .iter()
                .zip(f.iter())
                .map(|(t, fi)| t - sigmoid(*fi))
                .collect();
            let tree = RegressionTree::fit(x, &grad, &cfg.tree);
            for (fi, xi) in f.iter_mut().zip(x.iter()) {
                *fi += cfg.shrinkage * tree.predict(xi);
            }
            trees.push(tree);
        }
        GbdtBinary {
            base,
            shrinkage: cfg.shrinkage,
            trees,
        }
    }

    fn score(&self, x: &[f64]) -> f64 {
        self.base + self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

impl GbdtClassifier {
    /// Fits on labels `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics on empty input or out-of-range labels.
    pub fn fit(
        x: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        cfg: &GbdtConfig,
    ) -> GbdtClassifier {
        assert!(!x.is_empty(), "empty training set");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        let per_class = (0..n_classes)
            .map(|c| {
                let t: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { 0.0 })
                    .collect();
                GbdtBinary::fit(x, &t, cfg)
            })
            .collect();
        GbdtClassifier { per_class }
    }

    /// Per-class logit scores.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.per_class.iter().map(|b| b.score(x)).collect()
    }

    /// Predicted class.
    pub fn classify(&self, x: &[f64]) -> usize {
        crate::mlp::argmax(&self.scores(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn regressor_beats_single_tree_on_smooth_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(0.0..6.3), rng.gen_range(0.0..6.3)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin() + 0.5 * r[1].cos()).collect();

        let gbdt = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let single = crate::tree::RegressionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 4,
                min_split: 4,
                min_leaf: 2,
            },
        );
        let g_err =
            crate::metrics::rmse(&y, &x.iter().map(|r| gbdt.predict(r)).collect::<Vec<_>>());
        let s_err =
            crate::metrics::rmse(&y, &x.iter().map(|r| single.predict(r)).collect::<Vec<_>>());
        assert!(g_err < s_err, "gbdt {g_err:.4} vs tree {s_err:.4}");
        assert!(g_err < 0.15, "gbdt rmse {g_err:.4}");
    }

    #[test]
    fn classifier_separates_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            let cx = c as f64 * 4.0;
            for _ in 0..40 {
                x.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    -cx + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(c);
            }
        }
        let m = GbdtClassifier::fit(&x, &labels, 3, &GbdtConfig::default());
        let preds: Vec<usize> = x.iter().map(|r| m.classify(r)).collect();
        let acc = crate::metrics::accuracy(&labels, &preds);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![4.0, 4.0, 4.0];
        let m = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        assert!((m.predict(&[9.0]) - 4.0).abs() < 1e-9);
    }
}
