//! The shared inference surface: one object-safe [`Regressor`] trait over
//! every scalar-regression model in the crate.
//!
//! Callers that used to match on the concrete model type (`LstmRegressor`
//! vs `Mlp` vs `GbdtRegressor`, each with a differently-named predict
//! method) now encode their input once as a [`RegressorInput`] and
//! dispatch through `&dyn Regressor`. Sequence models consume
//! [`RegressorInput::Tokens`]; feature-vector models consume
//! [`RegressorInput::Features`]. The quantized fixed-point variants in
//! [`crate::quant`] implement the same trait, which is what lets the
//! precision axis stay invisible to call sites: picking f64 vs Q16.16 is
//! picking which `&dyn Regressor` to hand out.

use crate::automl::AutoMlRegressor;
use crate::cnn::Cnn1d;
use crate::gbdt::GbdtRegressor;
use crate::knn::Knn;
use crate::lstm::LstmRegressor;
use crate::mlp::Mlp;

/// A borrowed model input: either a token-id sequence (LSTM/CNN) or a
/// dense feature vector (MLP/GBDT/kNN/AutoML).
#[derive(Debug, Clone, Copy)]
pub enum RegressorInput<'a> {
    /// Vocabulary-encoded token ids for sequence models.
    Tokens(&'a [usize]),
    /// Dense features for vector models.
    Features(&'a [f64]),
}

impl<'a> RegressorInput<'a> {
    /// Unwraps a token sequence.
    ///
    /// # Panics
    ///
    /// Panics if the input is [`RegressorInput::Features`]; callers are
    /// expected to encode for the model they dispatch to.
    pub fn tokens(&self) -> &'a [usize] {
        match self {
            RegressorInput::Tokens(t) => t,
            RegressorInput::Features(_) => {
                panic!("sequence regressor was handed a feature vector")
            }
        }
    }

    /// Unwraps a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the input is [`RegressorInput::Tokens`].
    pub fn features(&self) -> &'a [f64] {
        match self {
            RegressorInput::Features(f) => f,
            RegressorInput::Tokens(_) => {
                panic!("feature regressor was handed a token sequence")
            }
        }
    }
}

/// Object-safe scalar regression: one input in, one `f64` out.
///
/// Multi-output models expose their first output (every Clara predictor is
/// trained with `outputs == 1`). `predict_batch` defaults to a per-item
/// loop; implementations with a faster batch layout (the quantized LSTM's
/// structure-of-arrays path) override it, and are required to return
/// exactly the same values the per-item loop would.
pub trait Regressor {
    /// Predicts one scalar for one input.
    fn predict(&self, x: RegressorInput<'_>) -> f64;

    /// Predicts one scalar per input, in order.
    fn predict_batch(&self, xs: &[RegressorInput<'_>]) -> Vec<f64> {
        xs.iter().map(|&x| self.predict(x)).collect()
    }
}

impl Regressor for LstmRegressor {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        LstmRegressor::predict(self, x.tokens())[0]
    }
}

impl Regressor for Cnn1d {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        Cnn1d::predict(self, x.tokens())[0]
    }
}

impl Regressor for Mlp {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        self.predict_scalar(x.features())
    }
}

impl Regressor for GbdtRegressor {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        GbdtRegressor::predict(self, x.features())
    }
}

impl Regressor for AutoMlRegressor {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        AutoMlRegressor::predict(self, x.features())
    }
}

impl Regressor for Knn {
    fn predict(&self, x: RegressorInput<'_>) -> f64 {
        Knn::predict(self, x.features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::{GbdtConfig, GbdtRegressor};
    use crate::mlp::{Loss, Mlp, MlpConfig};

    #[test]
    fn trait_dispatch_matches_inherent_methods() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + r[1]).collect();
        let gbdt = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let mut mlp = Mlp::new(MlpConfig {
            inputs: 2,
            hidden: vec![8],
            outputs: 1,
            loss: Loss::Mse,
            lr: 0.01,
            epochs: 30,
            seed: 7,
        });
        mlp.fit(&x, &y);
        let probe = [3.0, 4.0];
        let dg: &dyn Regressor = &gbdt;
        let dm: &dyn Regressor = &mlp;
        assert_eq!(
            dg.predict(RegressorInput::Features(&probe)),
            gbdt.predict(&probe)
        );
        assert_eq!(
            dm.predict(RegressorInput::Features(&probe)),
            mlp.predict_scalar(&probe)
        );
        let batch = [
            RegressorInput::Features(&probe[..]),
            RegressorInput::Features(&probe[..]),
        ];
        assert_eq!(dg.predict_batch(&batch), vec![gbdt.predict(&probe); 2]);
    }

    #[test]
    #[should_panic(expected = "feature regressor was handed a token sequence")]
    fn input_kind_mismatch_panics() {
        let toks = [1usize, 2];
        RegressorInput::Tokens(&toks).features();
    }
}
