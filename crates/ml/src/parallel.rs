//! Minimal order-preserving parallel map on scoped threads.
//!
//! `tinyml` sits below `clara-core`, so it cannot use the evaluation
//! engine's pool; this is the same worker model (index-assigned tasks,
//! order-restoring merge) in miniature, used by training loops that
//! parallelize *within* a gradient step. The knob is shared: the engine
//! forwards its `set_threads` here, and both honour `CLARA_THREADS`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker count (0 restores the default resolution).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Worker count: override, else `CLARA_THREADS`, else the machine.
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("CLARA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on the worker pool, returning results in input
/// order. With one worker this is a plain serial map; the caller is
/// responsible for making `f` pure so the two paths agree bit for bit.
pub fn map_ordered<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                done.lock().expect("poisoned").append(&mut local);
            });
        }
    });
    let mut out = done.into_inner().expect("poisoned");
    out.sort_unstable_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        set_threads(4);
        let items: Vec<usize> = (0..100).collect();
        let out = map_ordered(&items, |&x| x * 3);
        set_threads(0);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches() {
        set_threads(1);
        let items = vec![1.5f64, 2.5, 3.5];
        let a = map_ordered(&items, |x| x.sqrt());
        set_threads(3);
        let b = map_ordered(&items, |x| x.sqrt());
        set_threads(0);
        assert_eq!(a, b);
    }
}
