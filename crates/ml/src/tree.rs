//! CART decision trees (regression and classification).
//!
//! Exact split search over all features and thresholds. These trees are
//! the building blocks for the random forest ([`crate::automl`]), the GBDT
//! ([`crate::gbdt`]), and the LambdaMART ranker ([`crate::rank`]).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree growth limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Minimum samples in each child.
    pub min_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 6,
            min_split: 4,
            min_leaf: 2,
        }
    }
}

/// A tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feat: usize,
        thresh: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn eval(&self, x: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feat,
                thresh,
                left,
                right,
            } => {
                if x[*feat] <= *thresh {
                    left.eval(x)
                } else {
                    right.eval(x)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// Finds the best (feature, threshold) split of `rows` minimizing the sum
/// of child variances (weighted). Returns `None` when no valid split exists.
fn best_split(
    x: &[Vec<f64>],
    y: &[f64],
    rows: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, f64)> {
    let n = rows.len();
    if n < 2 * min_leaf {
        return None;
    }
    let total_sum: f64 = rows.iter().map(|&r| y[r]).sum();
    let total_sq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<(usize, f64, f64)> = None; // (feat, thresh, gain)
    let mut sorted = rows.to_vec();
    for &f in features {
        sorted.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for i in 0..n - 1 {
            let r = sorted[i];
            left_sum += y[r];
            left_sq += y[r] * y[r];
            let nl = i + 1;
            let nr = n - nl;
            if nl < min_leaf || nr < min_leaf {
                continue;
            }
            let xv = x[sorted[i]][f];
            let xn = x[sorted[i + 1]][f];
            if xv == xn {
                continue; // Can't split between equal values.
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl as f64)
                + (right_sq - right_sum * right_sum / nr as f64);
            let gain = parent_sse - sse;
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, (xv + xn) / 2.0, gain));
            }
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    rows: &[usize],
    cfg: &TreeConfig,
    depth: usize,
    feature_pool: &[usize],
    n_feats: usize,
    rng: &mut Option<&mut StdRng>,
) -> Node {
    let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len().max(1) as f64;
    if depth >= cfg.max_depth || rows.len() < cfg.min_split {
        return Node::Leaf { value: mean };
    }
    // Feature subsampling (for forests); deterministic full set otherwise.
    let chosen: Vec<usize> = match rng {
        Some(rng) if n_feats < feature_pool.len() => {
            let mut pool = feature_pool.to_vec();
            pool.shuffle(rng);
            pool.truncate(n_feats);
            pool
        }
        _ => feature_pool.to_vec(),
    };
    match best_split(x, y, rows, &chosen, cfg.min_leaf) {
        None => Node::Leaf { value: mean },
        Some((feat, thresh, _)) => {
            let (l, r): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&row| x[row][feat] <= thresh);
            if l.is_empty() || r.is_empty() {
                return Node::Leaf { value: mean };
            }
            Node::Split {
                feat,
                thresh,
                left: Box::new(grow(x, y, &l, cfg, depth + 1, feature_pool, n_feats, rng)),
                right: Box::new(grow(x, y, &r, cfg, depth + 1, feature_pool, n_feats, rng)),
            }
        }
    }
}

/// A CART regression tree (variance-reduction splits, mean leaves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    root: Node,
}

impl RegressionTree {
    /// Fits a tree on the full dataset.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &TreeConfig) -> RegressionTree {
        Self::fit_rows(x, y, &(0..x.len()).collect::<Vec<_>>(), cfg, None, 0)
    }

    /// Fits a tree on a row subset with optional feature subsampling
    /// (`n_feats` features considered per split when `rng` is provided).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit_rows(
        x: &[Vec<f64>],
        y: &[f64],
        rows: &[usize],
        cfg: &TreeConfig,
        mut rng: Option<&mut StdRng>,
        n_feats: usize,
    ) -> RegressionTree {
        assert!(!rows.is_empty(), "empty training rows");
        assert_eq!(x.len(), y.len(), "x/y mismatch");
        let d = x[rows[0]].len();
        let pool: Vec<usize> = (0..d).collect();
        let nf = if n_feats == 0 { d } else { n_feats.min(d) };
        RegressionTree {
            root: grow(x, y, rows, cfg, 0, &pool, nf, &mut rng),
        }
    }

    /// Predicts for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.root.eval(x)
    }

    /// Actual depth of the grown tree.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Flattens the tree into a preorder node array whose `left`/`right`
    /// fields index into the array — the layout pointer-free consumers
    /// (the quantized GBDT) evaluate with an iterative walk.
    pub fn flatten(&self) -> Vec<FlatNode> {
        fn go(n: &Node, out: &mut Vec<FlatNode>) -> usize {
            let at = out.len();
            match n {
                Node::Leaf { value } => out.push(FlatNode::Leaf { value: *value }),
                Node::Split {
                    feat,
                    thresh,
                    left,
                    right,
                } => {
                    out.push(FlatNode::Split {
                        feat: *feat,
                        thresh: *thresh,
                        left: 0,
                        right: 0,
                    });
                    let l = go(left, out);
                    let r = go(right, out);
                    if let FlatNode::Split { left, right, .. } = &mut out[at] {
                        *left = l;
                        *right = r;
                    }
                }
            }
            at
        }
        let mut out = Vec::new();
        go(&self.root, &mut out);
        out
    }
}

/// One node of a [`RegressionTree::flatten`] array. Split children are
/// indices into the same array; the root is index 0.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatNode {
    /// Terminal node carrying the regression value.
    Leaf {
        /// Mean target of the leaf's training rows.
        value: f64,
    },
    /// Interior `x[feat] <= thresh` split.
    Split {
        /// Feature index tested.
        feat: usize,
        /// Split threshold (`<=` goes left).
        thresh: f64,
        /// Array index of the left child.
        left: usize,
        /// Array index of the right child.
        right: usize,
    },
}

/// A CART classifier built as one regression tree per class on one-hot
/// targets (equivalent to gini-style probability estimation at the leaves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationTree {
    trees: Vec<RegressionTree>,
}

impl ClassificationTree {
    /// Fits on class labels `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or labels exceed `n_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
    ) -> ClassificationTree {
        assert!(!x.is_empty(), "empty training set");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        let trees = (0..n_classes)
            .map(|c| {
                let y: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { 0.0 })
                    .collect();
                RegressionTree::fit(x, &y, cfg)
            })
            .collect();
        ClassificationTree { trees }
    }

    /// Per-class scores (leaf probabilities).
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.trees.iter().map(|t| t.predict(x)).collect()
    }

    /// Predicted class (argmax of scores).
    pub fn classify(&self, x: &[f64]) -> usize {
        crate::mlp::argmax(&self.scores(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[33.0]), 5.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 2,
                min_split: 2,
                min_leaf: 1,
            },
        );
        assert!(t.depth() <= 2);
    }

    #[test]
    fn pure_leaf_short_circuits() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![7.0, 7.0, 7.0];
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[100.0]), 7.0);
    }

    #[test]
    fn classifies_axis_aligned_regions() {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                labels.push(usize::from(i >= 5) * 2 + usize::from(j >= 5));
            }
        }
        let t = ClassificationTree::fit(&x, &labels, 4, &TreeConfig::default());
        assert_eq!(t.classify(&[2.0, 2.0]), 0);
        assert_eq!(t.classify(&[2.0, 8.0]), 1);
        assert_eq!(t.classify(&[8.0, 2.0]), 2);
        assert_eq!(t.classify(&[8.0, 8.0]), 3);
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let t = RegressionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.predict(&[1.0]), 0.5);
    }
}
