//! Distribution distances for Table 1 (data-synthesis fidelity).
//!
//! All functions take two probability vectors over the same support. Inputs
//! are re-normalized defensively; zero entries are handled by the standard
//! conventions of each divergence.

fn normalize(p: &[f64]) -> Vec<f64> {
    let s: f64 = p.iter().sum();
    if s <= 0.0 {
        return vec![0.0; p.len()];
    }
    p.iter().map(|x| (x / s).max(0.0)).collect()
}

fn kl(p: &[f64], q: &[f64]) -> f64 {
    p.iter()
        .zip(q.iter())
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| pi * (pi / qi.max(1e-12)).ln())
        .sum()
}

/// Jensen–Shannon divergence (natural log; in `[0, ln 2]`).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = normalize(p);
    let q = normalize(q);
    let m: Vec<f64> = p.iter().zip(q.iter()).map(|(a, b)| (a + b) / 2.0).collect();
    0.5 * kl(&p, &m) + 0.5 * kl(&q, &m)
}

/// Rényi divergence of order `alpha` (defaults in the paper's table use a
/// fixed order; we follow the common choice α = 0.5 doubled convention via
/// [`renyi`] with α = 2).
///
/// # Panics
///
/// Panics if lengths differ or `alpha == 1` (use KL instead).
pub fn renyi(p: &[f64], q: &[f64], alpha: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    assert!(alpha > 0.0 && (alpha - 1.0).abs() > 1e-9, "bad alpha");
    // Smooth both distributions toward uniform so support mismatches give
    // large-but-finite divergences instead of saturating at the epsilon
    // floor.
    let smooth = |v: &[f64]| -> Vec<f64> {
        let n = v.len().max(1) as f64;
        let nv = normalize(v);
        nv.iter().map(|x| 0.99 * x + 0.01 / n).collect()
    };
    let p = smooth(p);
    let q = smooth(q);
    let s: f64 = p
        .iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| pi.powf(alpha) * qi.powf(1.0 - alpha))
        .sum();
    (s.max(1e-300)).ln() / (alpha - 1.0)
}

/// Bhattacharyya distance `-ln Σ √(p q)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bhattacharyya(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = normalize(p);
    let q = normalize(q);
    let bc: f64 = p.iter().zip(q.iter()).map(|(a, b)| (a * b).sqrt()).sum();
    -(bc.clamp(1e-300, 1.0)).ln()
}

/// Cosine distance `1 - (p·q)/(|p||q|)`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn cosine(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let dot: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
    let np: f64 = p.iter().map(|a| a * a).sum::<f64>().sqrt();
    let nq: f64 = q.iter().map(|a| a * a).sum::<f64>().sqrt();
    if np == 0.0 || nq == 0.0 {
        return 1.0;
    }
    (1.0 - dot / (np * nq)).max(0.0)
}

/// Euclidean (L2) distance between the normalized distributions.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn euclidean(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = normalize(p);
    let q = normalize(q);
    p.iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Variational (total variation, scaled to `[0, 1]` via L1/2... the paper
/// reports the L1 distance itself, in `[0, 2]`; we report `Σ|p - q|`).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn variational(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = normalize(p);
    let q = normalize(q);
    p.iter().zip(q.iter()).map(|(a, b)| (a - b).abs()).sum()
}

/// All six Table 1 metrics, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceReport {
    /// Jensen–Shannon divergence.
    pub jensen_shannon: f64,
    /// Rényi divergence (α = 2).
    pub renyi: f64,
    /// Bhattacharyya distance.
    pub bhattacharyya: f64,
    /// Cosine distance.
    pub cosine: f64,
    /// Euclidean distance.
    pub euclidean: f64,
    /// Variational (L1) distance.
    pub variational: f64,
}

impl DistanceReport {
    /// Computes all six metrics between two distributions.
    pub fn compute(p: &[f64], q: &[f64]) -> DistanceReport {
        DistanceReport {
            jensen_shannon: jensen_shannon(p, q),
            renyi: renyi(p, q, 2.0),
            bhattacharyya: bhattacharyya(p, q),
            cosine: cosine(p, q),
            euclidean: euclidean(p, q),
            variational: variational(p, q),
        }
    }

    /// True when every metric of `self` is at most that of `other`
    /// (i.e., `self` is uniformly closer).
    pub fn dominates(&self, other: &DistanceReport) -> bool {
        self.jensen_shannon <= other.jensen_shannon
            && self.renyi <= other.renyi
            && self.bhattacharyya <= other.bhattacharyya
            && self.cosine <= other.cosine
            && self.euclidean <= other.euclidean
            && self.variational <= other.variational
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: [f64; 4] = [0.4, 0.3, 0.2, 0.1];
    const Q: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

    #[test]
    fn identical_distributions_have_zero_distance() {
        let r = DistanceReport::compute(&P, &P);
        assert!(r.jensen_shannon.abs() < 1e-12);
        assert!(r.renyi.abs() < 1e-9);
        assert!(r.bhattacharyya.abs() < 1e-12);
        assert!(r.cosine.abs() < 1e-12);
        assert!(r.euclidean.abs() < 1e-12);
        assert!(r.variational.abs() < 1e-12);
    }

    #[test]
    fn distances_are_symmetric() {
        assert!((jensen_shannon(&P, &Q) - jensen_shannon(&Q, &P)).abs() < 1e-12);
        assert!((bhattacharyya(&P, &Q) - bhattacharyya(&Q, &P)).abs() < 1e-12);
        assert!((euclidean(&P, &Q) - euclidean(&Q, &P)).abs() < 1e-12);
        assert!((variational(&P, &Q) - variational(&Q, &P)).abs() < 1e-12);
        assert!((cosine(&P, &Q) - cosine(&Q, &P)).abs() < 1e-12);
    }

    #[test]
    fn js_is_bounded_by_ln2() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let js = jensen_shannon(&a, &b);
        assert!((js - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn closer_distribution_scores_lower_everywhere() {
        let near = [0.38, 0.31, 0.21, 0.10];
        let near_r = DistanceReport::compute(&P, &near);
        let far_r = DistanceReport::compute(&P, &Q);
        assert!(near_r.dominates(&far_r));
        assert!(!far_r.dominates(&near_r));
    }

    #[test]
    fn unnormalized_inputs_are_accepted() {
        let a = [4.0, 3.0, 2.0, 1.0]; // same shape as P
        assert!(jensen_shannon(&a, &P).abs() < 1e-12);
    }

    #[test]
    fn variational_bounded_by_two() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((variational(&a, &b) - 2.0).abs() < 1e-12);
    }
}
