//! LambdaMART-style pairwise ranking on gradient-boosted trees.
//!
//! Clara's NF colocation analysis (Section 4.5) ranks candidate NF pairs by
//! colocation friendliness using XGBoost's LambdaMART. This module
//! implements the same scheme: each boosting round computes pairwise
//! RankNet lambdas within every query group (weighted by the rank-position
//! gain, as in LambdaMART) and fits a regression tree to them.

use serde::{Deserialize, Serialize};

use crate::gbdt::GbdtConfig;
use crate::tree::RegressionTree;

/// One ranking query: candidate items with features and true relevance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankGroup {
    /// Feature vector per candidate.
    pub features: Vec<Vec<f64>>,
    /// Ground-truth relevance per candidate (higher = better).
    pub relevance: Vec<f64>,
}

/// A fitted LambdaMART ranking model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LambdaMart {
    shrinkage: f64,
    trees: Vec<RegressionTree>,
}

impl LambdaMart {
    /// Trains on ranking groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or any group is malformed.
    pub fn fit(groups: &[RankGroup], cfg: &GbdtConfig) -> LambdaMart {
        assert!(!groups.is_empty(), "no ranking groups");
        for g in groups {
            assert_eq!(
                g.features.len(),
                g.relevance.len(),
                "group features/relevance mismatch"
            );
        }
        // Flatten all items; remember group boundaries.
        let mut x: Vec<Vec<f64>> = Vec::new();
        let mut bounds = Vec::new();
        for g in groups {
            let start = x.len();
            x.extend(g.features.iter().cloned());
            bounds.push((start, x.len()));
        }
        let mut scores = vec![0.0f64; x.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        const SIGMA: f64 = 1.0;

        for _ in 0..cfg.rounds {
            let mut lambdas = vec![0.0f64; x.len()];
            for (gi, g) in groups.iter().enumerate() {
                let (start, end) = bounds[gi];
                let n = end - start;
                // Current rank positions (desc score) for gain weighting.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    scores[start + b]
                        .partial_cmp(&scores[start + a])
                        .expect("finite scores")
                });
                let mut pos = vec![0usize; n];
                for (rank, &item) in order.iter().enumerate() {
                    pos[item] = rank;
                }
                for i in 0..n {
                    for j in 0..n {
                        if g.relevance[i] <= g.relevance[j] {
                            continue;
                        }
                        let s_diff = scores[start + i] - scores[start + j];
                        let rho = 1.0 / (1.0 + (SIGMA * s_diff).exp());
                        // LambdaMART position-gain weight: how much the
                        // discounted gain changes if i and j swap places.
                        let d_i = 1.0 / ((pos[i] + 2) as f64).log2();
                        let d_j = 1.0 / ((pos[j] + 2) as f64).log2();
                        let w = (g.relevance[i] - g.relevance[j]).abs() * (d_i - d_j).abs();
                        let l = SIGMA * rho * w.max(1e-3);
                        lambdas[start + i] += l;
                        lambdas[start + j] -= l;
                    }
                }
            }
            let tree = RegressionTree::fit(&x, &lambdas, &cfg.tree);
            for (s, xi) in scores.iter_mut().zip(x.iter()) {
                *s += cfg.shrinkage * tree.predict(xi);
            }
            trees.push(tree);
        }
        LambdaMart {
            shrinkage: cfg.shrinkage,
            trees,
        }
    }

    /// Ranking score for one candidate (higher = ranked earlier).
    pub fn score(&self, x: &[f64]) -> f64 {
        self.shrinkage * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Ranks candidates by descending score; returns candidate indices.
    pub fn rank(&self, candidates: &[Vec<f64>]) -> Vec<usize> {
        let scores: Vec<f64> = candidates.iter().map(|c| self.score(c)).collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Relevance is a nonlinear function of features; groups are random
    /// candidate sets.
    fn make_groups(n: usize, seed: u64) -> Vec<RankGroup> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let k = rng.gen_range(3..8);
                let features: Vec<Vec<f64>> = (0..k)
                    .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
                    .collect();
                let relevance = features
                    .iter()
                    .map(|f| (f[0] * 2.0 - f[1]).tanh() + 0.3 * f[0] * f[1])
                    .collect();
                RankGroup {
                    features,
                    relevance,
                }
            })
            .collect()
    }

    #[test]
    fn learns_to_rank_held_out_groups() {
        let train = make_groups(120, 1);
        let test = make_groups(40, 2);
        let model = LambdaMart::fit(&train, &GbdtConfig::default());

        let mut top1_hits = 0;
        let mut top3_hits = 0;
        for g in &test {
            let scores: Vec<f64> = g.features.iter().map(|f| model.score(f)).collect();
            if crate::metrics::topk_contains_best(&g.relevance, &scores, 1) {
                top1_hits += 1;
            }
            if crate::metrics::topk_contains_best(&g.relevance, &scores, 3) {
                top3_hits += 1;
            }
        }
        let top1 = top1_hits as f64 / test.len() as f64;
        let top3 = top3_hits as f64 / test.len() as f64;
        assert!(top1 > 0.6, "top-1 accuracy {top1}");
        assert!(top3 > 0.85, "top-3 accuracy {top3}");
    }

    #[test]
    fn rank_orders_by_score() {
        let train = make_groups(30, 3);
        let model = LambdaMart::fit(&train, &GbdtConfig::default());
        let cands = vec![vec![0.9, 0.1], vec![0.1, 0.9], vec![0.5, 0.5]];
        let order = model.rank(&cands);
        let scores: Vec<f64> = cands.iter().map(|c| model.score(c)).collect();
        assert!(scores[order[0]] >= scores[order[1]]);
        assert!(scores[order[1]] >= scores[order[2]]);
    }
}
