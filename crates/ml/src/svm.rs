//! Linear support vector machines (Clara's algorithm-identification model).
//!
//! Binary SVMs are trained by SGD on the L2-regularized hinge loss
//! (Pegasos-style); multi-class classification is one-vs-rest over the
//! binary machines, which matches the paper's "iterates through all known
//! accelerators and uses the trained classifiers to label" description.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::dot;

/// Hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SvmConfig {
    /// L2 regularization strength (λ).
    pub lambda: f64,
    /// Number of SGD epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> SvmConfig {
        SvmConfig {
            lambda: 1e-3,
            epochs: 60,
            seed: 17,
        }
    }
}

/// A binary linear SVM: `f(x) = w·x + b`, positive margin = class +1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Weight vector.
    pub w: Vec<f64>,
    /// Bias.
    pub b: f64,
}

impl LinearSvm {
    /// Trains on ±1 labels via Pegasos SGD.
    ///
    /// # Panics
    ///
    /// Panics on empty input, mismatched lengths, or labels not in {-1, 1}.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: &SvmConfig) -> LinearSvm {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len(), "x/y mismatch");
        assert!(
            y.iter().all(|&l| l == 1.0 || l == -1.0),
            "labels must be ±1"
        );
        let d = x[0].len();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut t: u64 = 0;
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (cfg.lambda * t as f64);
                let margin = y[i] * (dot(&w, &x[i]) + b);
                // L2 shrink.
                let shrink = 1.0 - eta * cfg.lambda;
                w.iter_mut().for_each(|wi| *wi *= shrink);
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x[i].iter()) {
                        *wi += eta * y[i] * xi;
                    }
                    b += eta * y[i];
                }
            }
        }
        LinearSvm { w, b }
    }

    /// Decision value (positive = class +1).
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.w, x) + self.b
    }

    /// Predicted ±1 label.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// One-vs-rest multi-class SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiSvm {
    machines: Vec<LinearSvm>,
}

impl MultiSvm {
    /// Fits one binary machine per class (labels `0..n_classes`).
    ///
    /// # Panics
    ///
    /// Panics on empty input or out-of-range labels.
    pub fn fit(x: &[Vec<f64>], labels: &[usize], n_classes: usize, cfg: &SvmConfig) -> MultiSvm {
        assert!(!x.is_empty(), "empty training set");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        let machines = (0..n_classes)
            .map(|c| {
                let y: Vec<f64> = labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { -1.0 })
                    .collect();
                LinearSvm::fit(x, &y, cfg)
            })
            .collect();
        MultiSvm { machines }
    }

    /// Per-class decision values.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        self.machines.iter().map(|m| m.decision(x)).collect()
    }

    /// Predicted class (largest decision value).
    pub fn classify(&self, x: &[f64]) -> usize {
        crate::mlp::argmax(&self.scores(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn separates_linearly_separable_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..100 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            x.push(vec![a, b]);
            y.push(if a + b > 0.1 { 1.0 } else { -1.0 });
        }
        let m = LinearSvm::fit(&x, &y, &SvmConfig::default());
        let errs = x
            .iter()
            .zip(y.iter())
            .filter(|(xi, yi)| m.predict(xi) != **yi)
            .count();
        assert!(errs <= 3, "{errs} errors");
    }

    #[test]
    fn multiclass_one_vs_rest() {
        // Three corner blobs: each class is linearly separable from the
        // union of the others (a requirement of one-vs-rest).
        let centers = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)];
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..30 {
                x.push(vec![cx + (i % 3) as f64 * 0.1, cy + (i % 5) as f64 * 0.1]);
                labels.push(c);
            }
        }
        let m = MultiSvm::fit(&x, &labels, 3, &SvmConfig::default());
        let preds: Vec<usize> = x.iter().map(|r| m.classify(r)).collect();
        assert!(crate::metrics::accuracy(&labels, &preds) > 0.95);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        let _ = LinearSvm::fit(&[vec![1.0]], &[0.5], &SvmConfig::default());
    }
}
