//! 1-D convolutional network (the "CNN" baseline of Figure 8).
//!
//! Token ids are embedded, convolved with a bank of width-`k` filters,
//! ReLU'd, globally max-pooled, and fed to a linear output — the standard
//! text-classification CNN the paper compares against. Max-pooling keeps
//! *local* n-gram features but discards long-range order, which is why it
//! trails the LSTM on compiler mimicry.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::{clip_grad, Adam, Matrix};

/// Hyperparameters for [`Cnn1d`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding width.
    pub embed: usize,
    /// Number of convolution filters.
    pub filters: usize,
    /// Filter width (tokens).
    pub width: usize,
    /// Number of regression outputs.
    pub outputs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> CnnConfig {
        CnnConfig {
            vocab: 256,
            embed: 16,
            filters: 24,
            width: 3,
            outputs: 1,
            lr: 0.01,
            epochs: 50,
            seed: 13,
        }
    }
}

/// A 1-D CNN sequence regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnn1d {
    cfg: CnnConfig,
    /// Embedding table, `embed x vocab`.
    emb: Matrix,
    /// Convolution filters, `filters x (embed*width)`.
    conv: Matrix,
    /// Filter biases.
    conv_b: Vec<f64>,
    /// Output layer, `outputs x filters`.
    out_w: Matrix,
    /// Output bias.
    out_b: Vec<f64>,
    y_mean: Vec<f64>,
    y_std: Vec<f64>,
}

impl Cnn1d {
    /// Creates an untrained model.
    pub fn new(cfg: CnnConfig) -> Cnn1d {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        Cnn1d {
            emb: Matrix::xavier(cfg.embed, cfg.vocab, &mut rng),
            conv: Matrix::xavier(cfg.filters, cfg.embed * cfg.width, &mut rng),
            conv_b: vec![0.0; cfg.filters],
            out_w: Matrix::xavier(cfg.outputs, cfg.filters, &mut rng),
            out_b: vec![0.0; cfg.outputs],
            y_mean: vec![0.0; cfg.outputs],
            y_std: vec![1.0; cfg.outputs],
            cfg,
        }
    }

    /// Builds the padded embedding windows for a sequence.
    fn windows(&self, seq: &[usize]) -> Vec<Vec<f64>> {
        let k = self.cfg.width;
        let e = self.cfg.embed;
        // Pad so even short sequences yield one window.
        let padded: Vec<usize> = if seq.len() < k {
            let mut v = seq.to_vec();
            v.resize(k, 0);
            v
        } else {
            seq.to_vec()
        };
        (0..=padded.len() - k)
            .map(|start| {
                let mut w = vec![0.0; e * k];
                for (pos, &tok) in padded[start..start + k].iter().enumerate() {
                    let tok = tok.min(self.cfg.vocab - 1);
                    for row in 0..e {
                        w[pos * e + row] = self.emb.get(row, tok);
                    }
                }
                w
            })
            .collect()
    }

    /// Forward pass: returns (windows, per-filter argmax window, pooled, out).
    fn forward(&self, seq: &[usize]) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>, Vec<f64>) {
        let wins = self.windows(seq);
        let nf = self.cfg.filters;
        let mut pooled = vec![f64::NEG_INFINITY; nf];
        let mut arg = vec![0usize; nf];
        for (wi, w) in wins.iter().enumerate() {
            let act = self.conv.matvec(w);
            for f in 0..nf {
                let a = (act[f] + self.conv_b[f]).max(0.0);
                if a > pooled[f] {
                    pooled[f] = a;
                    arg[f] = wi;
                }
            }
        }
        for p in pooled.iter_mut() {
            if !p.is_finite() {
                *p = 0.0;
            }
        }
        let mut out = self.out_w.matvec(&pooled);
        for (o, b) in out.iter_mut().zip(self.out_b.iter()) {
            *o += b;
        }
        (wins, arg, pooled, out)
    }

    /// Predicts the de-standardized regression outputs.
    pub fn predict(&self, seq: &[usize]) -> Vec<f64> {
        if seq.is_empty() {
            return self.y_mean.clone();
        }
        let (_, _, _, out) = self.forward(seq);
        out.iter()
            .zip(self.y_mean.iter().zip(self.y_std.iter()))
            .map(|(o, (m, s))| o * s + m)
            .collect()
    }

    /// Trains the model; returns final epoch MSE in standardized units.
    ///
    /// # Panics
    ///
    /// Panics on empty inputs or shape mismatches.
    pub fn fit(&mut self, seqs: &[Vec<usize>], targets: &[Vec<f64>]) -> f64 {
        assert_eq!(seqs.len(), targets.len(), "seqs/targets mismatch");
        assert!(!seqs.is_empty(), "empty training set");

        let n = targets.len() as f64;
        for k in 0..self.cfg.outputs {
            let mean = targets.iter().map(|t| t[k]).sum::<f64>() / n;
            let var = targets.iter().map(|t| (t[k] - mean).powi(2)).sum::<f64>() / n;
            self.y_mean[k] = mean;
            self.y_std[k] = var.sqrt().max(1e-9);
        }
        let ys: Vec<Vec<f64>> = targets
            .iter()
            .map(|t| {
                t.iter()
                    .zip(self.y_mean.iter().zip(self.y_std.iter()))
                    .map(|(y, (m, s))| (y - m) / s)
                    .collect()
            })
            .collect();

        let mut opt_emb = Adam::new(self.emb.data.len(), self.cfg.lr);
        let mut opt_conv = Adam::new(self.conv.data.len(), self.cfg.lr);
        let mut opt_cb = Adam::new(self.conv_b.len(), self.cfg.lr);
        let mut opt_ow = Adam::new(self.out_w.data.len(), self.cfg.lr);
        let mut opt_ob = Adam::new(self.out_b.len(), self.cfg.lr);

        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xfeed);
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        let mut last = f64::INFINITY;
        const BATCH: usize = 16;
        let e = self.cfg.embed;
        let k = self.cfg.width;

        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for chunk in order.chunks(BATCH) {
                let mut g_emb = Matrix::zeros(self.emb.rows, self.emb.cols);
                let mut g_conv = Matrix::zeros(self.conv.rows, self.conv.cols);
                let mut g_cb = vec![0.0; self.conv_b.len()];
                let mut g_ow = Matrix::zeros(self.out_w.rows, self.out_w.cols);
                let mut g_ob = vec![0.0; self.out_b.len()];

                for &i in chunk {
                    let seq = &seqs[i];
                    if seq.is_empty() {
                        continue;
                    }
                    let (wins, arg, pooled, out) = self.forward(seq);
                    let dout: Vec<f64> = out.iter().zip(ys[i].iter()).map(|(o, t)| o - t).collect();
                    total += dout.iter().map(|d| d * d).sum::<f64>();
                    count += 1;

                    g_ow.add_outer(&dout, &pooled, 1.0);
                    for (g, d) in g_ob.iter_mut().zip(dout.iter()) {
                        *g += d;
                    }
                    let mut dpool = vec![0.0; pooled.len()];
                    self.out_w.add_tmatvec(&dout, &mut dpool);

                    // Route through max-pool + ReLU into conv and embedding.
                    let padded: Vec<usize> = if seq.len() < k {
                        let mut v = seq.clone();
                        v.resize(k, 0);
                        v
                    } else {
                        seq.clone()
                    };
                    for (f, &d) in dpool.iter().enumerate() {
                        if d == 0.0 || pooled[f] <= 0.0 {
                            continue; // ReLU dead or no gradient.
                        }
                        let wi = arg[f];
                        let win = &wins[wi];
                        // Conv weight gradient for this filter row.
                        for (c, &wv) in win.iter().enumerate() {
                            *g_conv.get_mut(f, c) += d * wv;
                        }
                        g_cb[f] += d;
                        // Embedding gradient.
                        for pos in 0..k {
                            let tok = padded[wi + pos].min(self.cfg.vocab - 1);
                            for row in 0..e {
                                *g_emb.get_mut(row, tok) += d * self.conv.get(f, pos * e + row);
                            }
                        }
                    }
                }

                let scale = 1.0 / chunk.len().max(1) as f64;
                for g in [&mut g_emb.data, &mut g_conv.data, &mut g_ow.data] {
                    g.iter_mut().for_each(|v| *v *= scale);
                    clip_grad(g, 5.0);
                }
                for g in [&mut g_cb, &mut g_ob] {
                    g.iter_mut().for_each(|v| *v *= scale);
                    clip_grad(g, 5.0);
                }
                opt_emb.step(&mut self.emb.data, &g_emb.data);
                opt_conv.step(&mut self.conv.data, &g_conv.data);
                opt_cb.step(&mut self.conv_b, &g_cb);
                opt_ow.step(&mut self.out_w.data, &g_ow.data);
                opt_ob.step(&mut self.out_b, &g_ob);
            }
            if count > 0 {
                last = total / count as f64;
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn learns_local_pattern_costs() {
        // Cost = 5 * (# of [1,2] bigrams) + 0.2 * len: local patterns a CNN
        // with width >= 2 can capture.
        let mut rng = StdRng::seed_from_u64(4);
        let gen = |rng: &mut StdRng| -> (Vec<usize>, f64) {
            let len = rng.gen_range(4..20);
            let seq: Vec<usize> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let bigrams = seq.windows(2).filter(|w| w == &[1, 2]).count();
            let cost = 5.0 * bigrams as f64 + 0.2 * len as f64;
            (seq, cost)
        };
        let train: Vec<(Vec<usize>, f64)> = (0..300).map(|_| gen(&mut rng)).collect();
        let test: Vec<(Vec<usize>, f64)> = (0..60).map(|_| gen(&mut rng)).collect();

        let mut m = Cnn1d::new(CnnConfig {
            vocab: 4,
            embed: 8,
            filters: 12,
            width: 2,
            outputs: 1,
            lr: 0.02,
            epochs: 60,
            seed: 5,
        });
        let xs: Vec<Vec<usize>> = train.iter().map(|(s, _)| s.clone()).collect();
        let ys: Vec<Vec<f64>> = train.iter().map(|(_, y)| vec![*y]).collect();
        m.fit(&xs, &ys);

        let truth: Vec<f64> = test.iter().map(|(_, y)| *y).collect();
        let preds: Vec<f64> = test.iter().map(|(s, _)| m.predict(s)[0]).collect();
        let err = crate::metrics::wmape(&truth, &preds);
        let mean = ys.iter().map(|t| t[0]).sum::<f64>() / ys.len() as f64;
        let base = crate::metrics::wmape(&truth, &vec![mean; truth.len()]);
        assert!(err < base, "cnn wmape {err:.3} vs mean {base:.3}");
    }

    #[test]
    fn short_sequences_are_padded() {
        let m = Cnn1d::new(CnnConfig {
            vocab: 4,
            width: 5,
            ..CnnConfig::default()
        });
        let p = m.predict(&[1]);
        assert!(p[0].is_finite());
        assert_eq!(m.predict(&[]).len(), 1);
    }
}
