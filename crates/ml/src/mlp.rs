//! Multi-layer perceptron ("DNN" baseline of the paper's Figure 8/9).
//!
//! A plain fully-connected network over fixed-size feature vectors (Clara
//! feeds it the bag-of-tokens histogram of a code block, which discards
//! the sequence information the LSTM exploits — that information loss is
//! exactly why the paper finds DNNs weaker for instruction prediction).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::linalg::{clip_grad, Adam, Matrix};

/// Training objective for [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error (regression).
    Mse,
    /// Softmax cross-entropy (classification; outputs = class count).
    Softmax,
}

/// Hyperparameters for [`Mlp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub inputs: usize,
    /// Hidden layer widths (ReLU between layers).
    pub hidden: Vec<usize>,
    /// Output dimensionality (1 for scalar regression; classes for softmax).
    pub outputs: usize,
    /// Objective.
    pub loss: Loss,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> MlpConfig {
        MlpConfig {
            inputs: 16,
            hidden: vec![32, 16],
            outputs: 1,
            loss: Loss::Mse,
            lr: 0.01,
            epochs: 60,
            seed: 11,
        }
    }
}

/// A fully-connected network with ReLU activations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub(crate) cfg: MlpConfig,
    pub(crate) weights: Vec<Matrix>,
    pub(crate) biases: Vec<Vec<f64>>,
    pub(crate) y_mean: f64,
    pub(crate) y_std: f64,
}

impl Mlp {
    /// Creates an untrained network.
    pub fn new(cfg: MlpConfig) -> Mlp {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dims = vec![cfg.inputs];
        dims.extend(&cfg.hidden);
        dims.push(cfg.outputs);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in dims.windows(2) {
            weights.push(Matrix::xavier(w[1], w[0], &mut rng));
            biases.push(vec![0.0; w[1]]);
        }
        Mlp {
            cfg,
            weights,
            biases,
            y_mean: 0.0,
            y_std: 1.0,
        }
    }

    fn forward(&self, x: &[f64]) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut acts = vec![x.to_vec()];
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(self.biases.iter()).enumerate() {
            let mut z = w.matvec(acts.last().expect("non-empty"));
            for (zi, bi) in z.iter_mut().zip(b.iter()) {
                *zi += bi;
                if l < last {
                    *zi = zi.max(0.0); // ReLU on hidden layers only.
                }
            }
            acts.push(z);
        }
        let out = acts.pop().expect("has output");
        (acts, out)
    }

    /// Regression prediction (de-standardized). For classifiers, returns
    /// raw logits.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        let (_, out) = self.forward(x);
        match self.cfg.loss {
            Loss::Mse => out.iter().map(|o| o * self.y_std + self.y_mean).collect(),
            Loss::Softmax => out,
        }
    }

    /// Scalar regression convenience (first output).
    pub fn predict_scalar(&self, x: &[f64]) -> f64 {
        self.predict(x)[0]
    }

    /// Classification: argmax over softmax logits.
    pub fn classify(&self, x: &[f64]) -> usize {
        let (_, out) = self.forward(x);
        argmax(&out)
    }

    /// Trains the network. For `Loss::Softmax`, labels are class indices
    /// (`y[i] as usize`); for `Loss::Mse` they are regression targets
    /// (only `outputs == 1` supported via this entry point).
    ///
    /// # Panics
    ///
    /// Panics on empty input or shape mismatches.
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "x/y mismatch");
        assert!(!x.is_empty(), "empty training set");
        assert!(
            x.iter().all(|r| r.len() == self.cfg.inputs),
            "input width mismatch"
        );

        if self.cfg.loss == Loss::Mse {
            let n = y.len() as f64;
            self.y_mean = y.iter().sum::<f64>() / n;
            self.y_std = (y.iter().map(|v| (v - self.y_mean).powi(2)).sum::<f64>() / n)
                .sqrt()
                .max(1e-9);
        }

        let mut opts: Vec<(Adam, Adam)> = self
            .weights
            .iter()
            .zip(self.biases.iter())
            .map(|(w, b)| {
                (
                    Adam::new(w.data.len(), self.cfg.lr),
                    Adam::new(b.len(), self.cfg.lr),
                )
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xabcd);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut last_loss = f64::INFINITY;
        const BATCH: usize = 16;

        let _fit_span = clara_obs::span!("mlp-fit", "rows={} epochs={}", x.len(), self.cfg.epochs);
        let epochs_ctr = clara_obs::counter("ml.mlp.epochs");
        for _ in 0..self.cfg.epochs {
            epochs_ctr.incr();
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for chunk in order.chunks(BATCH) {
                let mut g_w: Vec<Matrix> = self
                    .weights
                    .iter()
                    .map(|w| Matrix::zeros(w.rows, w.cols))
                    .collect();
                let mut g_b: Vec<Vec<f64>> =
                    self.biases.iter().map(|b| vec![0.0; b.len()]).collect();

                for &i in chunk {
                    let (acts, out) = self.forward(&x[i]);
                    let dout = match self.cfg.loss {
                        Loss::Mse => {
                            let t = (y[i] - self.y_mean) / self.y_std;
                            let d = out[0] - t;
                            total += d * d;
                            vec![d]
                        }
                        Loss::Softmax => {
                            let probs = softmax(&out);
                            let label = y[i] as usize;
                            total += -probs[label.min(probs.len() - 1)].max(1e-12).ln();
                            let mut d = probs;
                            let li = label.min(d.len() - 1);
                            d[li] -= 1.0;
                            d
                        }
                    };
                    count += 1;
                    // Backprop.
                    let mut delta = dout;
                    for l in (0..self.weights.len()).rev() {
                        g_w[l].add_outer(&delta, &acts[l], 1.0);
                        for (g, d) in g_b[l].iter_mut().zip(delta.iter()) {
                            *g += d;
                        }
                        if l > 0 {
                            let mut prev = vec![0.0; self.weights[l].cols];
                            self.weights[l].add_tmatvec(&delta, &mut prev);
                            // ReLU derivative on the hidden activation.
                            for (p, a) in prev.iter_mut().zip(acts[l].iter()) {
                                if *a <= 0.0 {
                                    *p = 0.0;
                                }
                            }
                            delta = prev;
                        }
                    }
                }
                let scale = 1.0 / chunk.len().max(1) as f64;
                for l in 0..self.weights.len() {
                    g_w[l].data.iter_mut().for_each(|v| *v *= scale);
                    g_b[l].iter_mut().for_each(|v| *v *= scale);
                    clip_grad(&mut g_w[l].data, 5.0);
                    clip_grad(&mut g_b[l], 5.0);
                    opts[l].0.step(&mut self.weights[l].data, &g_w[l].data);
                    opts[l].1.step(&mut self.biases[l], &g_b[l]);
                }
            }
            if count > 0 {
                last_loss = total / count as f64;
            }
        }
        last_loss
    }
}

/// Softmax over logits.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum.max(1e-300)).collect()
}

/// Index of the maximum element.
///
/// # Panics
///
/// Panics on empty input.
pub fn argmax(v: &[f64]) -> usize {
    assert!(!v.is_empty(), "argmax of empty slice");
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn regresses_a_linear_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 1.0).collect();
        let mut m = Mlp::new(MlpConfig {
            inputs: 2,
            hidden: vec![16],
            outputs: 1,
            loss: Loss::Mse,
            lr: 0.02,
            epochs: 80,
            seed: 2,
        });
        m.fit(&x, &y);
        let err = crate::metrics::mae(
            &y,
            &x.iter().map(|r| m.predict_scalar(r)).collect::<Vec<_>>(),
        );
        assert!(err < 0.2, "mae {err}");
    }

    #[test]
    fn classifies_xor() {
        let x = [
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = [0.0, 1.0, 1.0, 0.0];
        // XOR needs a hidden layer; repeat data for more gradient steps.
        let xs: Vec<Vec<f64>> = x.iter().cycle().take(200).cloned().collect();
        let ys: Vec<f64> = y.iter().cycle().take(200).cloned().collect();
        let mut m = Mlp::new(MlpConfig {
            inputs: 2,
            hidden: vec![8],
            outputs: 2,
            loss: Loss::Softmax,
            lr: 0.05,
            epochs: 60,
            seed: 3,
        });
        m.fit(&xs, &ys);
        for (xi, yi) in x.iter().zip(y.iter()) {
            assert_eq!(m.classify(xi), *yi as usize, "at {xi:?}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(argmax(&p), 2);
    }
}
