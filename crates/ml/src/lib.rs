//! `tinyml`: from-scratch machine learning for the Clara reproduction.
//!
//! The Clara paper (SOSP 2021) uses Scikit-learn, TensorFlow and XGBoost.
//! None of those exist in this self-contained Rust workspace, so this crate
//! re-implements every model the paper trains or compares against:
//!
//! | Paper use | Model | Module |
//! |---|---|---|
//! | Instruction prediction (Clara) | LSTM + FC regression | [`lstm`] |
//! | Instruction prediction baselines | DNN (MLP), CNN | [`mlp`], [`cnn`] |
//! | AutoML baseline (TPOT) | random pipeline search | [`automl`] |
//! | Algorithm identification (Clara) | linear SVM | [`svm`] |
//! | Algorithm-ID baselines | kNN, decision tree, GBDT | [`knn`], [`tree`], [`gbdt`] |
//! | Scale-out analysis (Clara) | GBDT regression | [`gbdt`] |
//! | Colocation ranking (Clara) | LambdaMART-style pairwise ranking | [`rank`] |
//! | Memory coalescing | K-means | [`kmeans`] |
//! | Feature visualization (Fig. 10a) | PCA | [`pca`] |
//! | Data-synthesis fidelity (Table 1) | distribution distances | [`dist`] |
//!
//! Everything is deterministic given a seed, trains in `f64`, and is
//! sized for the small/medium datasets Clara works with (10²–10⁵ samples).
//! For inference there is additionally a Q16.16 fixed-point fast path
//! ([`quant`]: quantized LSTM/MLP/GBDT twins with table-approximated
//! nonlinearities), reached through the shared [`regressor::Regressor`]
//! trait that unifies every scalar-regression model behind one
//! `predict`/`predict_batch` surface.

pub mod automl;
pub mod cnn;
pub mod dataset;
pub mod dist;
pub mod gbdt;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod mlp;
pub mod parallel;
pub mod pca;
pub mod quant;
pub mod rank;
pub mod regressor;
pub mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use linalg::Matrix;
pub use quant::{Precision, QuantGbdt, QuantLstm, QuantMlp};
pub use regressor::{Regressor, RegressorInput};
