//! Principal component analysis (Figure 10a's feature-space projection).
//!
//! Components are extracted by power iteration with deflation on the
//! covariance matrix — ample for the top-2 projections Clara plots.

use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Feature means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal components (unit vectors), most significant first.
    pub components: Vec<Vec<f64>>,
    /// Eigenvalues (explained variance) per component.
    pub explained: Vec<f64>,
}

impl Pca {
    /// Fits `n_components` principal components.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `n_components == 0`.
    pub fn fit(rows: &[Vec<f64>], n_components: usize) -> Pca {
        assert!(!rows.is_empty(), "empty data");
        assert!(n_components > 0, "need at least one component");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let n_components = n_components.min(d);

        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r.iter()) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);

        // Covariance matrix (d x d).
        let mut cov = vec![vec![0.0; d]; d];
        for r in rows {
            let c: Vec<f64> = r.iter().zip(mean.iter()).map(|(v, m)| v - m).collect();
            for i in 0..d {
                if c[i] == 0.0 {
                    continue;
                }
                for j in 0..d {
                    cov[i][j] += c[i] * c[j] / n;
                }
            }
        }

        let mut components = Vec::new();
        let mut explained = Vec::new();
        for k in 0..n_components {
            // Power iteration with a deterministic start.
            let mut v: Vec<f64> = (0..d).map(|i| if i == k % d { 1.0 } else { 0.1 }).collect();
            normalize(&mut v);
            let mut eig = 0.0;
            for _ in 0..200 {
                let mut w = vec![0.0; d];
                for i in 0..d {
                    for j in 0..d {
                        w[i] += cov[i][j] * v[j];
                    }
                }
                let nrm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
                if nrm < 1e-14 {
                    break; // Null space; keep current v.
                }
                eig = nrm;
                w.iter_mut().for_each(|x| *x /= nrm);
                let delta: f64 = w.iter().zip(v.iter()).map(|(a, b)| (a - b).abs()).sum();
                v = w;
                if delta < 1e-12 {
                    break;
                }
            }
            // Deflate.
            for i in 0..d {
                for j in 0..d {
                    cov[i][j] -= eig * v[i] * v[j];
                }
            }
            components.push(v);
            explained.push(eig);
        }
        Pca {
            mean,
            components,
            explained,
        }
    }

    /// Projects one row onto the fitted components.
    pub fn project(&self, row: &[f64]) -> Vec<f64> {
        let c: Vec<f64> = row
            .iter()
            .zip(self.mean.iter())
            .map(|(v, m)| v - m)
            .collect();
        self.components
            .iter()
            .map(|comp| comp.iter().zip(c.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }
}

fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        v.iter_mut().for_each(|x| *x /= n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dominant_direction() {
        // Points along y = 2x with small noise: PC1 ~ (1, 2)/sqrt(5).
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let t = (i as f64 - 50.0) / 10.0;
                vec![t, 2.0 * t + 0.01 * ((i % 7) as f64 - 3.0)]
            })
            .collect();
        let pca = Pca::fit(&rows, 2);
        let c = &pca.components[0];
        let expected = [1.0 / 5f64.sqrt(), 2.0 / 5f64.sqrt()];
        let dot = (c[0] * expected[0] + c[1] * expected[1]).abs();
        assert!(dot > 0.999, "PC1 {c:?}");
        assert!(pca.explained[0] > 10.0 * pca.explained[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 5) as f64, (i % 3) as f64 * 2.0, (i % 7) as f64 - 3.0])
            .collect();
        let pca = Pca::fit(&rows, 3);
        for i in 0..3 {
            let ni: f64 = pca.components[i].iter().map(|x| x * x).sum();
            assert!((ni - 1.0).abs() < 1e-6, "norm {ni}");
            for j in (i + 1)..3 {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(pca.components[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-4, "components {i},{j} dot {dot}");
            }
        }
    }

    #[test]
    fn projection_centers_data() {
        let rows = vec![vec![1.0, 1.0], vec![3.0, 3.0]];
        let pca = Pca::fit(&rows, 1);
        let p0 = pca.project(&rows[0])[0];
        let p1 = pca.project(&rows[1])[0];
        assert!((p0 + p1).abs() < 1e-9, "projections should be symmetric");
    }
}
