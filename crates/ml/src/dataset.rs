//! Tabular datasets: features, labels, splits, and normalization.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A tabular dataset of feature vectors and scalar labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows (all the same length).
    pub x: Vec<Vec<f64>>,
    /// Labels, one per row (class index or regression target).
    pub y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, checking shape.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != y.len()` or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Dataset {
        assert_eq!(x.len(), y.len(), "rows/labels mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        Dataset { x, y }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Appends one sample.
    pub fn push(&mut self, features: Vec<f64>, label: f64) {
        if !self.x.is_empty() {
            assert_eq!(features.len(), self.dim(), "feature dim mismatch");
        }
        self.x.push(features);
        self.y.push(label);
    }

    /// Shuffles and splits into `(train, test)` with `test_frac` held out.
    pub fn split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = ((self.len() as f64) * test_frac.clamp(0.0, 1.0)).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.len()));
        let pick = |ids: &[usize]| {
            Dataset::new(
                ids.iter().map(|&i| self.x[i].clone()).collect(),
                ids.iter().map(|&i| self.y[i]).collect(),
            )
        };
        (pick(train_idx), pick(test_idx))
    }

    /// K-fold cross-validation index sets: `(train, validation)` pairs.
    pub fn kfold(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        let k = k.max(2);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let val: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (i % k == f).then_some(s))
                .collect();
            let train: Vec<usize> = idx
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (i % k != f).then_some(s))
                .collect();
            folds.push((train, val));
        }
        folds
    }

    /// Selects a subset of rows by index.
    pub fn subset(&self, ids: &[usize]) -> Dataset {
        Dataset::new(
            ids.iter().map(|&i| self.x[i].clone()).collect(),
            ids.iter().map(|&i| self.y[i]).collect(),
        )
    }
}

/// Per-feature standardization (zero mean, unit variance) fit on a dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits on the given rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit(rows: &[Vec<f64>]) -> Standardizer {
        assert!(!rows.is_empty(), "cannot fit on empty data");
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r.iter()) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = vec![0.0; d];
        for r in rows {
            for ((v, x), m) in var.iter_mut().zip(r.iter()).zip(mean.iter()) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Standardizer { mean, std }
    }

    /// Transforms one row in place.
    pub fn apply(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(self.mean.iter()).zip(self.std.iter()) {
            *x = (*x - m) / s;
        }
    }

    /// Transforms a whole dataset, returning a new copy.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut r = r.clone();
                self.apply(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            (0..10).map(|i| vec![i as f64, (i * 2) as f64]).collect(),
            (0..10).map(|i| i as f64).collect(),
        )
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = toy();
        let (train, test) = d.split(0.3, 1);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 3);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn kfold_covers_every_row_once_as_validation() {
        let d = toy();
        let folds = d.kfold(5, 2);
        let mut seen = vec![0; d.len()];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn standardizer_centers_and_scales() {
        let d = toy();
        let s = Standardizer::fit(&d.x);
        let t = s.transform(&d.x);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / t.len() as f64;
        assert!(mean0.abs() < 1e-9);
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / t.len() as f64;
        assert!((var0 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]);
    }
}
