//! Mini-AutoML: random pipeline search with cross-validation (TPOT stand-in).
//!
//! TPOT, the AutoML baseline of the paper, searches ML pipelines and
//! hyperparameters. This module does the same at a smaller scale: it
//! samples candidate pipelines (random forest, GBDT, kNN, decision tree —
//! plus bagging/hyperparameter variations), scores each by k-fold
//! cross-validation, and refits the winner on the full data. In the
//! paper's experiments TPOT selected a random-forest pipeline for
//! instruction prediction and a kNN for algorithm identification; the same
//! winners tend to emerge here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::gbdt::{GbdtConfig, GbdtRegressor};
use crate::knn::Knn;
use crate::metrics;
use crate::tree::{ClassificationTree, RegressionTree, TreeConfig};

/// A random forest regressor (bagged trees with feature subsampling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `n_trees` bagged trees.
    ///
    /// # Panics
    ///
    /// Panics on empty input.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        n_trees: usize,
        cfg: &TreeConfig,
        seed: u64,
    ) -> RandomForest {
        assert!(!x.is_empty(), "empty training set");
        let mut rng = StdRng::seed_from_u64(seed);
        let d = x[0].len();
        let n_feats = ((d as f64).sqrt().ceil() as usize).max(1);
        let trees = (0..n_trees)
            .map(|_| {
                let rows: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                RegressionTree::fit_rows(x, y, &rows, cfg, Some(&mut rng), n_feats)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over the ensemble.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len().max(1) as f64
    }
}

/// The model family a pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Random forest.
    RandomForest,
    /// Gradient-boosted trees.
    Gbdt,
    /// k-nearest neighbours.
    Knn,
    /// A single decision tree.
    DecisionTree,
}

impl PipelineKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::RandomForest => "random-forest",
            PipelineKind::Gbdt => "gbdt",
            PipelineKind::Knn => "knn",
            PipelineKind::DecisionTree => "decision-tree",
        }
    }
}

/// A fitted regression pipeline chosen by AutoML search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FittedRegressor {
    /// Random forest.
    Forest(RandomForest),
    /// GBDT.
    Gbdt(GbdtRegressor),
    /// kNN.
    Knn(Knn),
    /// Single tree.
    Tree(RegressionTree),
}

impl FittedRegressor {
    /// Predicts for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        match self {
            FittedRegressor::Forest(m) => m.predict(x),
            FittedRegressor::Gbdt(m) => m.predict(x),
            FittedRegressor::Knn(m) => m.predict(x),
            FittedRegressor::Tree(m) => m.predict(x),
        }
    }
}

/// Result of an AutoML regression search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoMlRegressor {
    /// The winning fitted pipeline.
    pub model: FittedRegressor,
    /// Which family won.
    pub chosen: PipelineKind,
    /// Cross-validated MAE of the winner.
    pub cv_mae: f64,
}

#[derive(Debug, Clone, Copy)]
enum RegCandidate {
    Forest { trees: usize, depth: usize },
    Gbdt { rounds: usize, depth: usize },
    Knn { k: usize },
    Tree { depth: usize },
}

fn fit_reg(c: RegCandidate, x: &[Vec<f64>], y: &[f64], seed: u64) -> FittedRegressor {
    match c {
        RegCandidate::Forest { trees, depth } => FittedRegressor::Forest(RandomForest::fit(
            x,
            y,
            trees,
            &TreeConfig {
                max_depth: depth,
                min_split: 4,
                min_leaf: 2,
            },
            seed,
        )),
        RegCandidate::Gbdt { rounds, depth } => FittedRegressor::Gbdt(GbdtRegressor::fit(
            x,
            y,
            &GbdtConfig {
                rounds,
                shrinkage: 0.1,
                tree: TreeConfig {
                    max_depth: depth,
                    min_split: 4,
                    min_leaf: 2,
                },
            },
        )),
        RegCandidate::Knn { k } => FittedRegressor::Knn(Knn::fit(x, y, k)),
        RegCandidate::Tree { depth } => FittedRegressor::Tree(RegressionTree::fit(
            x,
            y,
            &TreeConfig {
                max_depth: depth,
                min_split: 4,
                min_leaf: 2,
            },
        )),
    }
}

impl AutoMlRegressor {
    /// Searches `budget` random pipelines with 3-fold CV and refits the
    /// best on all data.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn search(data: &Dataset, budget: usize, seed: u64) -> AutoMlRegressor {
        assert!(!data.is_empty(), "empty dataset");
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = data.kfold(3, seed);
        let mut best: Option<(RegCandidate, f64)> = None;

        for trial in 0..budget.max(1) {
            let cand = match trial % 4 {
                0 => RegCandidate::Forest {
                    trees: rng.gen_range(20..80),
                    depth: rng.gen_range(4..10),
                },
                1 => RegCandidate::Gbdt {
                    rounds: rng.gen_range(30..120),
                    depth: rng.gen_range(2..6),
                },
                2 => RegCandidate::Knn {
                    k: rng.gen_range(1..8),
                },
                _ => RegCandidate::Tree {
                    depth: rng.gen_range(3..12),
                },
            };
            let mut maes = Vec::new();
            for (train_idx, val_idx) in &folds {
                if train_idx.is_empty() || val_idx.is_empty() {
                    continue;
                }
                let train = data.subset(train_idx);
                let val = data.subset(val_idx);
                let m = fit_reg(cand, &train.x, &train.y, seed ^ trial as u64);
                let preds: Vec<f64> = val.x.iter().map(|r| m.predict(r)).collect();
                maes.push(metrics::mae(&val.y, &preds));
            }
            let mae = maes.iter().sum::<f64>() / maes.len().max(1) as f64;
            if best.is_none_or(|(_, b)| mae < b) {
                best = Some((cand, mae));
            }
        }
        let (cand, cv_mae) = best.expect("at least one trial");
        let chosen = match cand {
            RegCandidate::Forest { .. } => PipelineKind::RandomForest,
            RegCandidate::Gbdt { .. } => PipelineKind::Gbdt,
            RegCandidate::Knn { .. } => PipelineKind::Knn,
            RegCandidate::Tree { .. } => PipelineKind::DecisionTree,
        };
        AutoMlRegressor {
            model: fit_reg(cand, &data.x, &data.y, seed),
            chosen,
            cv_mae,
        }
    }

    /// Predicts for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.model.predict(x)
    }
}

/// A fitted classification pipeline chosen by AutoML search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FittedClassifier {
    /// kNN classifier.
    Knn(Knn),
    /// Decision-tree classifier.
    Tree(ClassificationTree),
}

impl FittedClassifier {
    /// Predicted class for one row.
    pub fn classify(&self, x: &[f64]) -> usize {
        match self {
            FittedClassifier::Knn(m) => m.classify(x),
            FittedClassifier::Tree(m) => m.classify(x),
        }
    }
}

/// Result of an AutoML classification search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoMlClassifier {
    /// The winning fitted pipeline.
    pub model: FittedClassifier,
    /// Which family won.
    pub chosen: PipelineKind,
    /// Cross-validated accuracy of the winner.
    pub cv_accuracy: f64,
}

impl AutoMlClassifier {
    /// Searches `budget` random pipelines with 3-fold CV.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn search(
        x: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        budget: usize,
        seed: u64,
    ) -> AutoMlClassifier {
        assert!(!x.is_empty(), "empty dataset");
        let data = Dataset::new(x.to_vec(), labels.iter().map(|&l| l as f64).collect());
        let folds = data.kfold(3, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<(usize, usize, f64)> = None; // (kind, param, acc)

        for trial in 0..budget.max(1) {
            let (kind, param) = if trial % 2 == 0 {
                (0, rng.gen_range(1..8)) // kNN, k
            } else {
                (1, rng.gen_range(3..12)) // tree, depth
            };
            let mut accs = Vec::new();
            for (train_idx, val_idx) in &folds {
                if train_idx.is_empty() || val_idx.is_empty() {
                    continue;
                }
                let train = data.subset(train_idx);
                let val = data.subset(val_idx);
                let tl: Vec<usize> = train.y.iter().map(|&v| v as usize).collect();
                let vl: Vec<usize> = val.y.iter().map(|&v| v as usize).collect();
                let preds: Vec<usize> = if kind == 0 {
                    let m = Knn::fit(&train.x, &train.y, param);
                    val.x.iter().map(|r| m.classify(r)).collect()
                } else {
                    let m = ClassificationTree::fit(
                        &train.x,
                        &tl,
                        n_classes,
                        &TreeConfig {
                            max_depth: param,
                            min_split: 4,
                            min_leaf: 2,
                        },
                    );
                    val.x.iter().map(|r| m.classify(r)).collect()
                };
                accs.push(metrics::accuracy(&vl, &preds));
            }
            let acc = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
            if best.is_none_or(|(_, _, b)| acc > b) {
                best = Some((kind, param, acc));
            }
        }
        let (kind, param, cv_accuracy) = best.expect("at least one trial");
        let (model, chosen) = if kind == 0 {
            (
                FittedClassifier::Knn(Knn::fit(&data.x, &data.y, param)),
                PipelineKind::Knn,
            )
        } else {
            (
                FittedClassifier::Tree(ClassificationTree::fit(
                    &data.x,
                    labels,
                    n_classes,
                    &TreeConfig {
                        max_depth: param,
                        min_split: 4,
                        min_leaf: 2,
                    },
                )),
                PipelineKind::DecisionTree,
            )
        };
        AutoMlClassifier {
            model,
            chosen,
            cv_accuracy,
        }
    }

    /// Predicted class for one row.
    pub fn classify(&self, x: &[f64]) -> usize {
        self.model.classify(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_search_finds_a_decent_model() {
        let x: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![(i % 25) as f64, (i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0 + r[1]).collect();
        let data = Dataset::new(x.clone(), y.clone());
        let auto = AutoMlRegressor::search(&data, 8, 1);
        let preds: Vec<f64> = x.iter().map(|r| auto.predict(r)).collect();
        let err = metrics::mae(&y, &preds);
        assert!(err < 3.0, "mae {err} for {:?}", auto.chosen);
    }

    #[test]
    fn classifier_search_separates_blobs() {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..40 {
                x.push(vec![c as f64 * 10.0 + (i % 5) as f64 * 0.1]);
                labels.push(c);
            }
        }
        let auto = AutoMlClassifier::search(&x, &labels, 2, 6, 2);
        assert!(auto.cv_accuracy > 0.95);
        assert_eq!(auto.classify(&[0.2]), 0);
        assert_eq!(auto.classify(&[10.2]), 1);
    }

    #[test]
    fn forest_outperforms_deep_single_tree_on_noise() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(8);
        let x: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] + rng.gen_range(-1.0..1.0)).collect();
        let test_x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
        let test_y: Vec<f64> = test_x.iter().map(|r| r[0]).collect();
        let forest = RandomForest::fit(
            &x,
            &y,
            40,
            &TreeConfig {
                max_depth: 10,
                min_split: 2,
                min_leaf: 1,
            },
            3,
        );
        let tree = RegressionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 10,
                min_split: 2,
                min_leaf: 1,
            },
        );
        let f_err = metrics::rmse(
            &test_y,
            &test_x.iter().map(|r| forest.predict(r)).collect::<Vec<_>>(),
        );
        let t_err = metrics::rmse(
            &test_y,
            &test_x.iter().map(|r| tree.predict(r)).collect::<Vec<_>>(),
        );
        assert!(f_err < t_err, "forest {f_err:.3} vs tree {t_err:.3}");
    }
}
