//! Evaluation metrics used throughout the paper's evaluation.

/// Weighted mean absolute percentage error:
/// `Σ|y - ŷ| / Σ|y|` — the headline metric of the paper's Section 5.2.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn wmape(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "wmape length mismatch");
    let denom: f64 = truth.iter().map(|y| y.abs()).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = truth
        .iter()
        .zip(pred.iter())
        .map(|(y, p)| (y - p).abs())
        .sum();
    num / denom
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mae length mismatch");
    assert!(!truth.is_empty(), "mae of empty slice");
    truth
        .iter()
        .zip(pred.iter())
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "rmse length mismatch");
    assert!(!truth.is_empty(), "rmse of empty slice");
    (truth
        .iter()
        .zip(pred.iter())
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / truth.len() as f64)
        .sqrt()
}

/// Binary precision/recall for a positive class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// TP / (TP + FP); 1.0 when nothing was predicted positive.
    pub precision: f64,
    /// TP / (TP + FN); 1.0 when nothing is actually positive.
    pub recall: f64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Computes precision/recall treating `positive` as the positive class.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn precision_recall(truth: &[usize], pred: &[usize], positive: usize) -> PrecisionRecall {
    assert_eq!(truth.len(), pred.len(), "precision_recall length mismatch");
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&t, &p) in truth.iter().zip(pred.iter()) {
        match (t == positive, p == positive) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    PrecisionRecall {
        precision: if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
        tp,
        fp,
        fn_,
    }
}

/// Micro-averaged precision/recall over all classes except `negative_class`
/// (the "none of the accelerators" label in algorithm identification).
pub fn micro_precision_recall(
    truth: &[usize],
    pred: &[usize],
    negative_class: usize,
) -> PrecisionRecall {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&t, &p) in truth.iter().zip(pred.iter()) {
        if p != negative_class {
            if t == p {
                tp += 1;
            } else {
                fp += 1;
                if t != negative_class {
                    fn_ += 1; // Was a positive of another class, missed.
                }
            }
        } else if t != negative_class {
            fn_ += 1;
        }
    }
    PrecisionRecall {
        precision: if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
        tp,
        fp,
        fn_,
    }
}

/// Classification accuracy.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "accuracy length mismatch");
    assert!(!truth.is_empty(), "accuracy of empty slice");
    truth
        .iter()
        .zip(pred.iter())
        .filter(|(t, p)| t == p)
        .count() as f64
        / truth.len() as f64
}

/// Top-k ranking accuracy: does the true best item appear among the
/// predicted top k? `scores` are predicted (higher = better ranked),
/// `truth` are ground-truth qualities (higher = actually better).
pub fn topk_contains_best(truth: &[f64], scores: &[f64], k: usize) -> bool {
    assert_eq!(truth.len(), scores.len(), "topk length mismatch");
    if truth.is_empty() {
        return false;
    }
    let best = (0..truth.len())
        .max_by(|&a, &b| truth[a].partial_cmp(&truth[b]).expect("finite"))
        .expect("non-empty");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite"));
    order.iter().take(k).any(|&i| i == best)
}

/// Kendall tau-a rank correlation between two score vectors.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wmape_zero_for_perfect_prediction() {
        assert_eq!(wmape(&[10.0, 20.0], &[10.0, 20.0]), 0.0);
        assert!((wmape(&[10.0, 10.0], &[11.0, 9.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mae_and_rmse_basic() {
        assert_eq!(mae(&[1.0, 3.0], &[2.0, 1.0]), 1.5);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_counts() {
        let truth = [1, 1, 0, 0, 1];
        let pred = [1, 0, 1, 0, 1];
        let pr = precision_recall(&truth, &pred, 1);
        assert_eq!(pr.tp, 2);
        assert_eq!(pr.fp, 1);
        assert_eq!(pr.fn_, 1);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn micro_pr_ignores_true_negatives() {
        // classes: 0 = none, 1 = crc, 2 = lpm
        let truth = [0, 1, 2, 0, 1];
        let pred = [0, 1, 1, 1, 0];
        let pr = micro_precision_recall(&truth, &pred, 0);
        // tp: idx1. fp: idx2 (wrong class), idx3 (was none). fn: idx2, idx4.
        assert_eq!(pr.tp, 1);
        assert_eq!(pr.fp, 2);
        assert_eq!(pr.fn_, 2);
    }

    #[test]
    fn topk_ranking() {
        let truth = [0.1, 0.9, 0.5];
        let scores = [0.3, 0.2, 0.9]; // predicted order: 2, 0, 1
        assert!(!topk_contains_best(&truth, &scores, 1));
        assert!(!topk_contains_best(&truth, &scores, 2));
        assert!(topk_contains_best(&truth, &scores, 3));
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 1.0);
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), -1.0);
    }
}
