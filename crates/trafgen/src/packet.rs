//! Packet descriptors: flow keys, protocols, and deterministic payloads.

use serde::{Deserialize, Serialize};

/// TCP SYN flag bit.
pub const TCP_SYN: u8 = 0x02;
/// TCP ACK flag bit.
pub const TCP_ACK: u8 = 0x10;
/// TCP FIN flag bit.
pub const TCP_FIN: u8 = 0x01;
/// TCP RST flag bit.
pub const TCP_RST: u8 = 0x04;
/// TCP PSH flag bit.
pub const TCP_PSH: u8 = 0x08;

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
}

impl Proto {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
        }
    }
}

/// The 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// A stable 32-bit mix of the 5-tuple (useful as a hash-table key).
    pub fn mix(&self) -> u32 {
        let mut h = self
            .src_ip
            .wrapping_mul(0x9e37_79b9)
            .rotate_left(13)
            .wrapping_add(self.dst_ip);
        h ^= u32::from(self.src_port) << 16 | u32::from(self.dst_port);
        h = h.wrapping_mul(0x85eb_ca6b);
        h ^= u32::from(self.proto.number());
        h ^ (h >> 16)
    }

    /// The reverse-direction key (src/dst swapped).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }
}

/// One packet of a trace.
///
/// Header fields are stored explicitly; payload bytes are synthesized
/// deterministically from `payload_seed` on demand so traces stay compact
/// regardless of packet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Flow 5-tuple.
    pub flow: FlowKey,
    /// Dense id of the flow within its trace (0-based).
    pub flow_id: u32,
    /// Total packet length in bytes (Ethernet frame, 64..=1518).
    pub size: u16,
    /// TCP flags (0 for UDP).
    pub tcp_flags: u8,
    /// TCP sequence number (0 for UDP).
    pub seq: u32,
    /// IPv4 TTL.
    pub ttl: u8,
    /// Seed for deterministic payload synthesis.
    pub payload_seed: u64,
}

impl Packet {
    /// Payload length in bytes (size minus Ethernet/IP/TCP-or-UDP headers).
    pub fn payload_len(&self) -> u16 {
        let hdr = 14 + 20 + if self.flow.proto == Proto::Tcp { 20 } else { 8 };
        self.size.saturating_sub(hdr)
    }

    /// Deterministic payload byte at `off` (0 past the payload end).
    pub fn payload_byte(&self, off: u16) -> u8 {
        if off >= self.payload_len() {
            return 0;
        }
        let x = self
            .payload_seed
            .wrapping_add(u64::from(off).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (x >> 32) as u8
    }

    /// Deterministic 32-bit payload word at byte offset `off` (big-endian).
    pub fn payload_word(&self, off: u16) -> u32 {
        u32::from_be_bytes([
            self.payload_byte(off),
            self.payload_byte(off.saturating_add(1)),
            self.payload_byte(off.saturating_add(2)),
            self.payload_byte(off.saturating_add(3)),
        ])
    }

    /// Is the SYN flag set?
    pub fn is_syn(&self) -> bool {
        self.tcp_flags & TCP_SYN != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            src_ip: 0x0a00_0001,
            dst_ip: 0xc0a8_0101,
            src_port: 3333,
            dst_port: 80,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn flow_mix_is_stable_and_spreads() {
        let a = key().mix();
        let mut other = key();
        other.src_port = 3334;
        assert_ne!(a, other.mix());
        assert_eq!(a, key().mix());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let r = key().reversed();
        assert_eq!(r.src_ip, key().dst_ip);
        assert_eq!(r.dst_port, key().src_port);
        assert_eq!(r.reversed(), key());
    }

    #[test]
    fn payload_is_deterministic_and_bounded() {
        let p = Packet {
            flow: key(),
            flow_id: 0,
            size: 128,
            tcp_flags: TCP_ACK,
            seq: 1,
            ttl: 64,
            payload_seed: 7,
        };
        assert_eq!(p.payload_len(), 128 - 54);
        assert_eq!(p.payload_byte(5), p.payload_byte(5));
        assert_eq!(p.payload_byte(5000), 0); // past end
        let q = Packet {
            payload_seed: 8,
            ..p
        };
        assert_ne!(p.payload_word(0), q.payload_word(0));
    }

    #[test]
    fn udp_payload_headers_are_shorter() {
        let mut k = key();
        k.proto = Proto::Udp;
        let p = Packet {
            flow: k,
            flow_id: 0,
            size: 64,
            tcp_flags: 0,
            seq: 0,
            ttl: 64,
            payload_seed: 0,
        };
        assert_eq!(p.payload_len(), 64 - 42);
        assert!(!p.is_syn());
    }
}
