//! Deterministic workload and packet-trace generation.
//!
//! This crate stands in for the `trafgen` packet generator and the pcap
//! traces used by the Clara paper. A [`WorkloadSpec`] captures the workload
//! axes the paper varies — number of concurrent flows, flow-size
//! distribution, packet sizes, SYN mix — and [`Trace::generate`] expands it
//! into a deterministic, seeded packet sequence.
//!
//! The two named profiles from the paper's Section 5.4 are provided:
//! [`WorkloadSpec::large_flows`] (few flows, many packets each — mostly
//! cache hits on the NIC) and [`WorkloadSpec::small_flows`] (many flows —
//! mostly cache misses).
//!
//! # Examples
//!
//! ```
//! use trafgen::{Trace, WorkloadSpec};
//!
//! let spec = WorkloadSpec::large_flows();
//! let trace = Trace::generate(&spec, 1000, 42);
//! assert_eq!(trace.pkts.len(), 1000);
//! assert!(trace.unique_flows() <= spec.flows as usize);
//! ```

pub mod packet;
pub mod schedule;
pub mod spec;
pub mod trace;

pub use packet::{FlowKey, Packet, Proto, TCP_ACK, TCP_FIN, TCP_PSH, TCP_RST, TCP_SYN};
pub use schedule::{Phase, Schedule, BUILTIN_SCHEDULES};
pub use spec::{FlowDist, PktSizeDist, WorkloadSpec};
pub use trace::Trace;
