//! Trace generation: expanding a [`WorkloadSpec`] into packets.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::packet::{FlowKey, Packet, Proto, TCP_ACK, TCP_SYN};
use crate::spec::{FlowDist, PktSizeDist, WorkloadSpec};

/// A generated packet trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The specification this trace was generated from.
    pub spec: WorkloadSpec,
    /// Packets in arrival order.
    pub pkts: Vec<Packet>,
}

impl Trace {
    /// Generates `n` packets for `spec`, deterministically from `seed`.
    pub fn generate(spec: &WorkloadSpec, n: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = flow_table(spec, &mut rng);
        let cdf = popularity_cdf(spec, flows.len());
        let mut seen_syn: HashSet<u32> = HashSet::new();
        let mut pkts = Vec::with_capacity(n);
        for i in 0..n {
            let flow_id = sample_flow(&cdf, &mut rng) as u32;
            let flow = flows[flow_id as usize];
            let size = sample_size(&spec.pkt_size, &mut rng);
            let tcp_flags = if flow.proto == Proto::Tcp {
                // First packet of a flow is a SYN; later ones are SYN with
                // probability `syn_ratio` (flow re-setup), else ACK/data.
                if seen_syn.insert(flow_id) || rng.gen_bool(spec.syn_ratio.clamp(0.0, 1.0)) {
                    TCP_SYN
                } else {
                    TCP_ACK
                }
            } else {
                0
            };
            pkts.push(Packet {
                flow,
                flow_id,
                size,
                tcp_flags,
                seq: i as u32,
                ttl: 64,
                payload_seed: seed.wrapping_mul(0x1000_0000_01b3).wrapping_add(i as u64),
            });
        }
        Trace {
            spec: spec.clone(),
            pkts,
        }
    }

    /// Number of distinct flows that actually appear in the trace.
    pub fn unique_flows(&self) -> usize {
        self.pkts
            .iter()
            .map(|p| p.flow_id)
            .collect::<HashSet<_>>()
            .len()
    }

    /// Mean packet size over the trace.
    pub fn mean_size(&self) -> f64 {
        if self.pkts.is_empty() {
            return 0.0;
        }
        self.pkts.iter().map(|p| f64::from(p.size)).sum::<f64>() / self.pkts.len() as f64
    }

    /// Fraction of packets with the SYN flag set.
    pub fn syn_fraction(&self) -> f64 {
        if self.pkts.is_empty() {
            return 0.0;
        }
        self.pkts.iter().filter(|p| p.is_syn()).count() as f64 / self.pkts.len() as f64
    }
}

fn flow_table(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<FlowKey> {
    let n = spec.flows.max(1) as usize;
    let mut flows = Vec::with_capacity(n);
    for i in 0..n {
        let proto = if rng.gen_bool(spec.tcp_ratio.clamp(0.0, 1.0)) {
            Proto::Tcp
        } else {
            Proto::Udp
        };
        // Internal 10.0.0.0/8 clients talking to external servers, with the
        // flow index mixed into the address bits so IPs are distinct.
        flows.push(FlowKey {
            src_ip: 0x0a00_0000 | (i as u32 & 0x00ff_ffff),
            dst_ip: rng.gen::<u32>() | 0x4000_0000,
            // Reduce in usize *before* narrowing: `i as u16 % 60000`
            // wraps the flow index at 65536 and biases ports toward the
            // low end once the flow table outgrows u16.
            src_port: 1024 + (i % 60000) as u16,
            dst_port: *[80u16, 443, 53, 8080]
                .get(rng.gen_range(0usize..4))
                .expect("index in range"),
            proto,
        });
    }
    flows
}

fn popularity_cdf(spec: &WorkloadSpec, n: usize) -> Vec<f64> {
    let weights: Vec<f64> = match spec.flow_dist {
        FlowDist::Uniform => vec![1.0; n],
        FlowDist::Zipf { s } => (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect(),
    };
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_flow(cdf: &[f64], rng: &mut StdRng) -> usize {
    let x: f64 = rng.gen();
    match cdf.binary_search_by(|p| p.partial_cmp(&x).expect("finite cdf")) {
        Ok(i) | Err(i) => i.min(cdf.len() - 1),
    }
}

fn sample_size(dist: &PktSizeDist, rng: &mut StdRng) -> u16 {
    match *dist {
        PktSizeDist::Fixed(s) => s,
        PktSizeDist::Bimodal {
            small,
            large,
            small_frac,
        } => {
            if rng.gen_bool(small_frac.clamp(0.0, 1.0)) {
                small
            } else {
                large
            }
        }
        PktSizeDist::Uniform { min, max } => rng.gen_range(min..=max.max(min)),
    }
    .clamp(64, 1518)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::large_flows();
        let a = Trace::generate(&spec, 500, 7);
        let b = Trace::generate(&spec, 500, 7);
        assert_eq!(a.pkts, b.pkts);
        let c = Trace::generate(&spec, 500, 8);
        assert_ne!(a.pkts, c.pkts);
    }

    #[test]
    fn zipf_concentrates_traffic() {
        let uni = WorkloadSpec {
            flow_dist: FlowDist::Uniform,
            ..WorkloadSpec::large_flows().with_flows(1000)
        };
        let zipf = WorkloadSpec {
            flow_dist: FlowDist::Zipf { s: 1.3 },
            ..WorkloadSpec::large_flows().with_flows(1000)
        };
        let tu = Trace::generate(&uni, 5000, 1);
        let tz = Trace::generate(&zipf, 5000, 1);
        let top_share = |t: &Trace| {
            let mut counts = vec![0usize; 1000];
            for p in &t.pkts {
                counts[p.flow_id as usize] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[..10].iter().sum::<usize>() as f64 / t.pkts.len() as f64
        };
        assert!(
            top_share(&tz) > 2.0 * top_share(&tu),
            "zipf {} vs uniform {}",
            top_share(&tz),
            top_share(&tu)
        );
    }

    #[test]
    fn first_packet_per_tcp_flow_is_syn() {
        let spec = WorkloadSpec {
            syn_ratio: 0.0,
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows()
        };
        let t = Trace::generate(&spec, 2000, 3);
        let mut seen = HashSet::new();
        for p in &t.pkts {
            if seen.insert(p.flow_id) {
                assert!(p.is_syn(), "first packet of flow {} not SYN", p.flow_id);
            } else {
                assert!(!p.is_syn());
            }
        }
    }

    #[test]
    fn sizes_respect_distribution() {
        let spec = WorkloadSpec::min_size();
        let t = Trace::generate(&spec, 300, 11);
        assert!(t.pkts.iter().all(|p| p.size == 64));
        assert_eq!(t.mean_size(), 64.0);

        let spec = WorkloadSpec {
            pkt_size: PktSizeDist::Uniform { min: 64, max: 128 },
            ..WorkloadSpec::large_flows()
        };
        let t = Trace::generate(&spec, 300, 11);
        assert!(t.pkts.iter().all(|p| (64..=128).contains(&p.size)));
    }

    #[test]
    fn src_ports_follow_flow_index_past_u16_wrap() {
        // Flow tables larger than 65536 entries used to truncate the
        // index to u16 before the modulo, collapsing ports onto the low
        // end of the range. The port must be a pure function of the flow
        // index reduced modulo 60000 in full width.
        let spec = WorkloadSpec {
            flow_dist: FlowDist::Uniform,
            ..WorkloadSpec::large_flows().with_flows(70_000)
        };
        let t = Trace::generate(&spec, 4000, 9);
        let mut past_wrap = 0;
        for p in &t.pkts {
            let want = 1024 + (p.flow_id as usize % 60_000) as u16;
            assert_eq!(p.flow.src_port, want, "flow {}", p.flow_id);
            if p.flow_id >= 65_536 {
                past_wrap += 1;
            }
        }
        assert!(past_wrap > 0, "trace never sampled a flow past the wrap");
    }

    #[test]
    fn syn_fraction_tracks_ratio() {
        let spec = WorkloadSpec {
            syn_ratio: 0.5,
            tcp_ratio: 1.0,
            ..WorkloadSpec::small_flows().with_flows(10)
        };
        let t = Trace::generate(&spec, 4000, 5);
        let f = t.syn_fraction();
        assert!((0.4..0.6).contains(&f), "syn fraction {f}");
    }
}
