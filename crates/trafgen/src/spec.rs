//! Workload specifications: the axes the paper's evaluation varies.

use serde::{Deserialize, Serialize};

/// How packets are distributed across flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowDist {
    /// Every flow is equally likely.
    Uniform,
    /// Zipf-distributed flow popularity with the given skew exponent.
    Zipf {
        /// Skew exponent (larger = heavier head).
        s: f64,
    },
}

/// Packet-size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PktSizeDist {
    /// All packets the same size.
    Fixed(u16),
    /// IMIX-like bimodal mix: `small_frac` of packets at `small`, rest at
    /// `large`.
    Bimodal {
        /// Small packet size in bytes.
        small: u16,
        /// Large packet size in bytes.
        large: u16,
        /// Fraction of small packets in `[0, 1]`.
        small_frac: f64,
    },
    /// Uniformly random sizes in `[min, max]`.
    Uniform {
        /// Minimum size in bytes.
        min: u16,
        /// Maximum size in bytes.
        max: u16,
    },
}

/// A complete workload specification.
///
/// Mirrors the paper's workload descriptions: "a workload specification
/// includes packet sizes, the number of flows, and the IP address
/// distribution" (Section 5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable profile name.
    pub name: String,
    /// Number of concurrent flows.
    pub flows: u32,
    /// Flow popularity distribution.
    pub flow_dist: FlowDist,
    /// Packet sizes.
    pub pkt_size: PktSizeDist,
    /// Fraction of TCP packets carrying SYN (flow setups).
    pub syn_ratio: f64,
    /// Fraction of TCP traffic (remainder is UDP).
    pub tcp_ratio: f64,
    /// Offered load in millions of packets per second.
    pub rate_mpps: f64,
}

impl WorkloadSpec {
    /// The paper's "large flows" profile: few concurrent flows, so per-flow
    /// state mostly hits the NIC's SRAM cache.
    pub fn large_flows() -> WorkloadSpec {
        WorkloadSpec {
            name: "large-flows".into(),
            flows: 64,
            flow_dist: FlowDist::Zipf { s: 1.1 },
            pkt_size: PktSizeDist::Fixed(256),
            syn_ratio: 0.001,
            tcp_ratio: 0.9,
            rate_mpps: 30.0,
        }
    }

    /// The paper's "small flows" profile: many concurrent flows, so state
    /// lookups mostly miss the cache and go to DRAM.
    pub fn small_flows() -> WorkloadSpec {
        WorkloadSpec {
            name: "small-flows".into(),
            flows: 262_144,
            flow_dist: FlowDist::Uniform,
            pkt_size: PktSizeDist::Fixed(128),
            syn_ratio: 0.05,
            tcp_ratio: 0.9,
            rate_mpps: 30.0,
        }
    }

    /// Minimum-size line-rate stress profile (64-byte packets).
    pub fn min_size() -> WorkloadSpec {
        WorkloadSpec {
            name: "min-size".into(),
            flows: 4096,
            flow_dist: FlowDist::Uniform,
            pkt_size: PktSizeDist::Fixed(64),
            syn_ratio: 0.01,
            tcp_ratio: 1.0,
            rate_mpps: 59.5,
        }
    }

    /// A mixed-size IMIX-like profile.
    pub fn imix() -> WorkloadSpec {
        WorkloadSpec {
            name: "imix".into(),
            flows: 8192,
            flow_dist: FlowDist::Zipf { s: 0.9 },
            pkt_size: PktSizeDist::Bimodal {
                small: 64,
                large: 1400,
                small_frac: 0.6,
            },
            syn_ratio: 0.02,
            tcp_ratio: 0.85,
            rate_mpps: 20.0,
        }
    }

    /// Returns a copy with a different flow count (for sweeps).
    pub fn with_flows(mut self, flows: u32) -> WorkloadSpec {
        self.flows = flows;
        self
    }

    /// Returns a copy with a fixed packet size (for sweeps).
    pub fn with_pkt_size(mut self, size: u16) -> WorkloadSpec {
        self.pkt_size = PktSizeDist::Fixed(size);
        self
    }

    /// Returns a copy with a different offered rate.
    pub fn with_rate(mut self, rate_mpps: f64) -> WorkloadSpec {
        self.rate_mpps = rate_mpps;
        self
    }

    /// Mean packet size implied by the size distribution.
    pub fn mean_pkt_size(&self) -> f64 {
        match self.pkt_size {
            PktSizeDist::Fixed(s) => f64::from(s),
            PktSizeDist::Bimodal {
                small,
                large,
                small_frac,
            } => f64::from(small) * small_frac + f64::from(large) * (1.0 - small_frac),
            PktSizeDist::Uniform { min, max } => (f64::from(min) + f64::from(max)) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_differ_in_flow_count() {
        assert!(WorkloadSpec::small_flows().flows > WorkloadSpec::large_flows().flows * 100);
    }

    #[test]
    fn with_helpers_update_fields() {
        let w = WorkloadSpec::large_flows()
            .with_flows(7)
            .with_pkt_size(99)
            .with_rate(1.5);
        assert_eq!(w.flows, 7);
        assert_eq!(w.pkt_size, PktSizeDist::Fixed(99));
        assert_eq!(w.rate_mpps, 1.5);
    }

    #[test]
    fn mean_size_matches_distributions() {
        assert_eq!(WorkloadSpec::min_size().mean_pkt_size(), 64.0);
        let w = WorkloadSpec::imix();
        let m = w.mean_pkt_size();
        assert!(m > 64.0 && m < 1400.0);
    }
}
