//! Time-varying workload schedules for drift-driven re-planning.
//!
//! A [`Schedule`] is a named sequence of [`Phase`]s, each pinning one
//! [`WorkloadSpec`] for a number of consecutive *epochs*. The placement
//! replay (`clara place --replay <schedule>`) walks the schedule epoch by
//! epoch, re-profiling the NF set on each epoch's trace and re-solving
//! the placement ILP when the observed per-NF load drifts past a
//! threshold.
//!
//! Determinism contract: [`Schedule::epoch_trace`] seeds each trace from
//! the *phase* index, not the epoch index, so every epoch inside one
//! phase replays a bit-identical trace. A single-phase schedule is
//! therefore exactly stationary — replaying it can never register drift —
//! while a phase boundary changes the workload discontinuously and is
//! guaranteed to register whatever drift the two specs imply.

use serde::{Deserialize, Serialize};

use crate::spec::WorkloadSpec;
use crate::trace::Trace;

/// One homogeneous stretch of a schedule: the same workload replayed for
/// `epochs` consecutive epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Workload generated during this phase.
    pub spec: WorkloadSpec,
    /// Number of consecutive epochs the phase lasts.
    pub epochs: usize,
}

/// A named, deterministic sequence of workload phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Schedule name (appears in replay reports).
    pub name: String,
    /// Phases in replay order.
    pub phases: Vec<Phase>,
}

/// Builtin schedule names accepted by [`Schedule::builtin`].
pub const BUILTIN_SCHEDULES: [&str; 4] = ["steady", "shift", "burst", "churn"];

impl Schedule {
    /// Drift-free baseline: `epochs` epochs of the large-flows profile.
    /// Replaying it never migrates state (pinned by a proptest).
    pub fn steady(epochs: usize) -> Schedule {
        Schedule {
            name: "steady".into(),
            phases: vec![Phase {
                spec: WorkloadSpec::large_flows(),
                epochs: epochs.max(1),
            }],
        }
    }

    /// The paper's Section 5.4 workload shift: large flows (NIC cache
    /// hits) for the first half, then a small-flows storm (8192 flows,
    /// cache misses) for the rest. The boundary injects a load shift
    /// large enough to trigger at least one re-solve.
    pub fn shift(epochs: usize) -> Schedule {
        let epochs = epochs.max(2);
        let first = epochs / 2;
        Schedule {
            name: "shift".into(),
            phases: vec![
                Phase {
                    spec: WorkloadSpec::large_flows(),
                    epochs: first,
                },
                Phase {
                    spec: WorkloadSpec::small_flows().with_flows(8192),
                    epochs: epochs - first,
                },
            ],
        }
    }

    /// A transient burst: large flows, a one-epoch minimum-size packet
    /// storm, then large flows again — exercises re-planning *back* to
    /// the original plan.
    pub fn burst(epochs: usize) -> Schedule {
        let epochs = epochs.max(3);
        let tail = (epochs - 1) / 2;
        Schedule {
            name: "burst".into(),
            phases: vec![
                Phase {
                    spec: WorkloadSpec::large_flows(),
                    epochs: epochs - 1 - tail,
                },
                Phase {
                    spec: WorkloadSpec::min_size(),
                    epochs: 1,
                },
                Phase {
                    spec: WorkloadSpec::large_flows(),
                    epochs: tail,
                },
            ],
        }
    }

    /// Flow-population churn: four short phases of small-flow storms,
    /// each drawing a fresh flow population (epoch traces are seeded by
    /// phase, so no two phases share a 5-tuple population) with the
    /// population size stepping up and back down. Every boundary floods
    /// the NFs' flow tables with never-seen keys while the previous
    /// phase's entries go idle — the timeout-and-eviction-heavy workload
    /// the stateful corpus's churn counters are pinned against.
    pub fn churn(epochs: usize) -> Schedule {
        let epochs = epochs.max(4);
        let base = epochs / 4;
        let extra = epochs - base * 4;
        let flows = [2048u32, 8192, 4096, 16384];
        Schedule {
            name: "churn".into(),
            phases: flows
                .iter()
                .enumerate()
                .map(|(i, &f)| Phase {
                    spec: WorkloadSpec::small_flows().with_flows(f),
                    epochs: base + usize::from(i < extra),
                })
                .collect(),
        }
    }

    /// Resolves a builtin schedule by name (`steady`, `shift`, `burst`,
    /// `churn`) sized to `epochs` epochs; `None` for unknown names.
    pub fn builtin(name: &str, epochs: usize) -> Option<Schedule> {
        match name {
            "steady" => Some(Schedule::steady(epochs)),
            "shift" => Some(Schedule::shift(epochs)),
            "burst" => Some(Schedule::burst(epochs)),
            "churn" => Some(Schedule::churn(epochs)),
            _ => None,
        }
    }

    /// Total epochs across all phases.
    pub fn epochs(&self) -> usize {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// Maps an epoch index to `(phase_index, spec)`; `None` past the end.
    pub fn phase_of(&self, epoch: usize) -> Option<(usize, &WorkloadSpec)> {
        let mut start = 0;
        for (i, p) in self.phases.iter().enumerate() {
            if epoch < start + p.epochs {
                return Some((i, &p.spec));
            }
            start += p.epochs;
        }
        None
    }

    /// Generates the trace observed during `epoch`: `packets` packets of
    /// the phase's spec, seeded by `seed + phase_index` so all epochs of
    /// one phase replay identically (see the module docs).
    pub fn epoch_trace(&self, epoch: usize, packets: usize, seed: u64) -> Option<Trace> {
        let (phase, spec) = self.phase_of(epoch)?;
        Some(Trace::generate(spec, packets, seed.wrapping_add(phase as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_resolve_and_cover_requested_epochs() {
        for name in BUILTIN_SCHEDULES {
            let s = Schedule::builtin(name, 6).unwrap();
            assert_eq!(s.name, name);
            assert_eq!(s.epochs(), 6, "{name}");
            assert!(s.phase_of(5).is_some());
            assert!(s.phase_of(6).is_none());
        }
        assert!(Schedule::builtin("nosuch", 4).is_none());
    }

    #[test]
    fn epochs_within_a_phase_replay_identical_traces() {
        let s = Schedule::shift(6);
        let a = s.epoch_trace(0, 100, 42).unwrap();
        let b = s.epoch_trace(1, 100, 42).unwrap();
        assert_eq!(a.pkts, b.pkts);
        // Crossing the phase boundary changes the workload.
        let c = s.epoch_trace(3, 100, 42).unwrap();
        assert_ne!(a.pkts, c.pkts);
    }

    #[test]
    fn steady_is_single_phase() {
        let s = Schedule::steady(4);
        assert_eq!(s.phases.len(), 1);
        let a = s.epoch_trace(0, 50, 7).unwrap();
        let d = s.epoch_trace(3, 50, 7).unwrap();
        assert_eq!(a.pkts, d.pkts);
    }

    #[test]
    fn churn_phases_draw_disjoint_flow_populations() {
        let s = Schedule::churn(8);
        assert_eq!(s.phases.len(), 4);
        assert_eq!(s.epochs(), 8);
        // Each phase's trace is seeded differently, so the flow
        // populations at a boundary are (overwhelmingly) disjoint.
        let a = s.epoch_trace(0, 200, 11).unwrap();
        let b = s.epoch_trace(2, 200, 11).unwrap();
        let keys = |t: &Trace| {
            t.pkts
                .iter()
                .map(|p| p.flow)
                .collect::<std::collections::HashSet<_>>()
        };
        let (ka, kb) = (keys(&a), keys(&b));
        assert!(ka.intersection(&kb).count() * 10 < ka.len().min(kb.len()));
    }

    #[test]
    fn burst_returns_to_the_original_workload() {
        let s = Schedule::burst(5);
        assert_eq!(s.phases.len(), 3);
        assert_eq!(s.phases[1].epochs, 1);
        assert_eq!(s.phases[0].spec.name, s.phases[2].spec.name);
    }
}
