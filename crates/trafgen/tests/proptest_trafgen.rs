//! Property tests over the workload generator.

use proptest::prelude::*;
use trafgen::{FlowDist, PktSizeDist, Trace, WorkloadSpec};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u32..5000,
        prop_oneof![
            Just(FlowDist::Uniform),
            (0.5f64..2.0).prop_map(|s| FlowDist::Zipf { s })
        ],
        prop_oneof![
            (64u16..1500).prop_map(PktSizeDist::Fixed),
            (64u16..400, 500u16..1500, 0.0f64..1.0).prop_map(|(s, l, f)| {
                PktSizeDist::Bimodal {
                    small: s,
                    large: l,
                    small_frac: f,
                }
            }),
        ],
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(
            |(flows, flow_dist, pkt_size, syn_ratio, tcp_ratio)| WorkloadSpec {
                name: "prop".into(),
                flows,
                flow_dist,
                pkt_size,
                syn_ratio,
                tcp_ratio,
                rate_mpps: 10.0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn traces_are_deterministic_and_well_formed(spec in arb_spec(), seed in 0u64..1000) {
        let a = Trace::generate(&spec, 120, seed);
        let b = Trace::generate(&spec, 120, seed);
        prop_assert_eq!(&a.pkts, &b.pkts);
        prop_assert_eq!(a.pkts.len(), 120);
        for p in &a.pkts {
            // Frame sizes stay within Ethernet bounds.
            prop_assert!((64..=1518).contains(&p.size));
            // Flow ids index the flow table.
            prop_assert!(p.flow_id < spec.flows.max(1));
            // UDP packets never carry TCP flags.
            if p.flow.proto == trafgen::Proto::Udp {
                prop_assert_eq!(p.tcp_flags, 0);
            }
        }
        prop_assert!(a.unique_flows() <= spec.flows.max(1) as usize);
    }

    #[test]
    fn payload_bytes_are_pure(seed in 0u64..1000, off in 0u16..600) {
        let spec = WorkloadSpec::imix();
        let t = Trace::generate(&spec, 3, seed);
        for p in &t.pkts {
            prop_assert_eq!(p.payload_byte(off), p.payload_byte(off));
            if off >= p.payload_len() {
                prop_assert_eq!(p.payload_byte(off), 0);
            }
        }
    }
}
