//! The accelerator variant catalog.
//!
//! SmartNIC accelerator units are not interchangeable black boxes: a CRC
//! engine is wired for specific polynomials, a checksum unit folds at a
//! fixed width, an LPM block matches prefixes up to a fixed depth. Clara's
//! cross-device predictions (paper Section 4.1) therefore need to talk
//! about *which* algorithm variant a device implements, not just "has a
//! CRC engine".
//!
//! This crate is the single source of truth for those variants: one static
//! [`CATALOG`] table of named entries, each carrying the algorithm class
//! ([`AccelUnit`]), its operand width, the defining polynomial (where one
//! exists), bit order, and a relative cost scale. Everything else in the
//! workspace resolves variants by name through [`lookup`]:
//!
//! - HAL device manifests declare their accelerator *menu* as catalog
//!   names, validated at load time;
//! - `nic-sim` lowering scales accelerator cycle costs by the variant's
//!   [`Variant::cycle_scale`];
//! - algorithm identification matches NF code against catalog polynomials
//!   via [`match_constants`];
//! - the synthesizer emits NFs that target a chosen menu, seeded from
//!   [`reference_module`].
//!
//! # Examples
//!
//! ```
//! let v = clara_accel::lookup("crc32-ieee").expect("in catalog");
//! assert_eq!(v.poly, 0x04C1_1DB7);
//! assert_eq!(clara_accel::default_for(clara_accel::AccelUnit::Crc).name, "crc32-ieee");
//! assert!(clara_accel::lookup("crc31-bogus").is_none());
//! ```

use nf_ir::{
    ApiCall, BinOp, FunctionBuilder, Inst, MemRef, Module, Operand, PktField, StateKind, Ty,
};
use serde::{Deserialize, Serialize};

/// The accelerator unit classes devices expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccelUnit {
    /// Ones-complement checksum fold (IP/TCP/UDP checksums).
    Checksum,
    /// Cyclic redundancy check engine.
    Crc,
    /// Non-cryptographic hash unit (flow-table indexing).
    Hash,
    /// Longest-prefix-match block.
    Lpm,
}

impl AccelUnit {
    /// All units, in catalog order.
    pub const ALL: [AccelUnit; 4] = [
        AccelUnit::Checksum,
        AccelUnit::Crc,
        AccelUnit::Hash,
        AccelUnit::Lpm,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AccelUnit::Checksum => "checksum",
            AccelUnit::Crc => "crc",
            AccelUnit::Hash => "hash",
            AccelUnit::Lpm => "lpm",
        }
    }

    /// Inverse of [`AccelUnit::name`].
    pub fn from_name(s: &str) -> Option<AccelUnit> {
        AccelUnit::ALL.into_iter().find(|u| u.name() == s)
    }
}

/// One named accelerator algorithm variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Variant {
    /// Catalog name, e.g. `"crc32-ieee"`. Unique across the catalog.
    pub name: &'static str,
    /// The unit class this variant belongs to.
    pub unit: AccelUnit,
    /// Operand width in bits (CRC register, fold width, LPM key width).
    pub width: u32,
    /// Defining polynomial or mixing constant; 0 for purely structural
    /// variants (checksum folds, LPM widths).
    pub poly: u64,
    /// Whether the bit order is reflected (LSB-first).
    pub reflected: bool,
    /// Per-operation cycle-cost multiplier relative to the unit's default
    /// variant (1.0). Wider registers cost more per invocation.
    pub cycle_scale: f64,
}

/// The catalog: every accelerator algorithm variant the toolchain can name.
///
/// Names follow the `unit`-`spec` convention. Each unit's *default* variant
/// (the one [`default_for`] returns, with `cycle_scale == 1.0`) is what a
/// manifest gets when it names an operation without a `variant =` key, so
/// pre-catalog manifests lower to identical costs.
pub const CATALOG: &[Variant] = &[
    // -- checksum folds ------------------------------------------------
    Variant { name: "csum-fold16", unit: AccelUnit::Checksum, width: 16, poly: 0, reflected: false, cycle_scale: 1.0 },
    Variant { name: "csum-fold32", unit: AccelUnit::Checksum, width: 32, poly: 0, reflected: false, cycle_scale: 1.25 },
    // -- CRC engines ---------------------------------------------------
    Variant { name: "crc8-smbus", unit: AccelUnit::Crc, width: 8, poly: 0x07, reflected: false, cycle_scale: 0.25 },
    Variant { name: "crc8-maxim", unit: AccelUnit::Crc, width: 8, poly: 0x31, reflected: true, cycle_scale: 0.25 },
    Variant { name: "crc16-ccitt", unit: AccelUnit::Crc, width: 16, poly: 0x1021, reflected: false, cycle_scale: 0.5 },
    Variant { name: "crc16-ibm", unit: AccelUnit::Crc, width: 16, poly: 0x8005, reflected: true, cycle_scale: 0.5 },
    Variant { name: "crc32-ieee", unit: AccelUnit::Crc, width: 32, poly: 0x04C1_1DB7, reflected: true, cycle_scale: 1.0 },
    Variant { name: "crc32c", unit: AccelUnit::Crc, width: 32, poly: 0x1EDC_6F41, reflected: true, cycle_scale: 1.0 },
    Variant { name: "crc64-ecma", unit: AccelUnit::Crc, width: 64, poly: 0x42F0_E1EB_A9EA_3693, reflected: false, cycle_scale: 2.0 },
    Variant { name: "crc64-iso", unit: AccelUnit::Crc, width: 64, poly: 0x1B, reflected: true, cycle_scale: 2.0 },
    // -- hash units ----------------------------------------------------
    Variant { name: "hash-lookup3", unit: AccelUnit::Hash, width: 32, poly: 0x9E37_79B9, reflected: false, cycle_scale: 1.0 },
    Variant { name: "hash-fnv1a", unit: AccelUnit::Hash, width: 32, poly: 0x0100_0193, reflected: false, cycle_scale: 1.1 },
    // -- LPM blocks ----------------------------------------------------
    Variant { name: "lpm-w16", unit: AccelUnit::Lpm, width: 16, poly: 0, reflected: false, cycle_scale: 0.6 },
    Variant { name: "lpm-w24", unit: AccelUnit::Lpm, width: 24, poly: 0, reflected: false, cycle_scale: 0.8 },
    Variant { name: "lpm-w32", unit: AccelUnit::Lpm, width: 32, poly: 0, reflected: false, cycle_scale: 1.0 },
];

/// Looks a variant up by catalog name.
pub fn lookup(name: &str) -> Option<&'static Variant> {
    CATALOG.iter().find(|v| v.name == name)
}

/// All catalog names, in catalog order.
pub fn names() -> Vec<&'static str> {
    CATALOG.iter().map(|v| v.name).collect()
}

/// The variants of one unit class, in catalog order.
pub fn variants_of(unit: AccelUnit) -> Vec<&'static Variant> {
    CATALOG.iter().filter(|v| v.unit == unit).collect()
}

/// The default variant of a unit: the first catalog entry of that unit
/// with `cycle_scale == 1.0`. Manifests that do not pin a variant get
/// this one, so their lowered costs match the pre-catalog behaviour.
pub fn default_for(unit: AccelUnit) -> &'static Variant {
    CATALOG
        .iter()
        .find(|v| v.unit == unit && v.cycle_scale == 1.0)
        .expect("every unit has a scale-1.0 default")
}

/// Reverses the low `width` bits of `x` (the reflected-bit-order form).
pub fn reflect_bits(x: u64, width: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..width.min(64) {
        if x >> i & 1 == 1 {
            out |= 1 << (width - 1 - i);
        }
    }
    out
}

/// Scans a module's constants for catalog polynomials.
///
/// A variant matches when its polynomial — in either bit order, masked to
/// the variant's width — appears as an immediate operand of an XOR or
/// multiply (the mixing positions where CRC polynomials and hash
/// constants live; masks and comparisons don't count, which keeps small
/// polynomials like `0x07` from matching every flag test). Purely
/// structural variants (poly 0) never match. Returns matches in catalog
/// order, deduplicated.
pub fn match_constants(module: &Module) -> Vec<&'static Variant> {
    let mut consts: Vec<u64> = Vec::new();
    for f in &module.funcs {
        for b in &f.blocks {
            for inst in &b.insts {
                let Inst::Bin { op: BinOp::Xor | BinOp::Mul, lhs, rhs, .. } = inst else {
                    continue;
                };
                for op in [lhs, rhs] {
                    if let Operand::Const(c) = op {
                        consts.push(*c as u64);
                    }
                }
            }
        }
    }
    CATALOG
        .iter()
        .filter(|v| {
            if v.poly == 0 {
                return false;
            }
            let mask = if v.width >= 64 { u64::MAX } else { (1 << v.width) - 1 };
            let fwd = v.poly & mask;
            let rev = reflect_bits(v.poly, v.width);
            consts
                .iter()
                .any(|&c| (c & mask == fwd || c & mask == rev) && c & !mask == 0 && c != 0)
        })
        .collect()
}

/// Builds a deterministic reference kernel for a catalog variant.
///
/// The module is a self-contained packet handler whose inner computation
/// embeds the variant's defining constants (polynomial, width mask), so it
/// round-trips through [`match_constants`] and gives the synthesizer a
/// menu-targeted seed. The kernel is unrolled — no loops — which keeps it
/// trivially verifiable and bit-exact across execution layers.
pub fn reference_module(variant: &Variant) -> Module {
    let mut m = Module::new(format!("ref_{}", variant.name.replace('-', "_")));
    let g_out = m.add_global("result", StateKind::Scalar, 8, 1);
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    fb.switch_to(entry);
    let _ = fb.call(ApiCall::IpHeader, vec![]);
    let a = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let b = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(0)));
    let mut acc = fb.bin(BinOp::Xor, Ty::I64, a, b);
    let mask = if variant.width >= 64 {
        -1i64
    } else {
        (1i64 << variant.width) - 1
    };
    match variant.unit {
        AccelUnit::Crc | AccelUnit::Hash => {
            // Eight rounds of the shift/conditional-xor CRC step (or
            // multiply-free hash mixing), polynomial as the round constant.
            let poly = Operand::imm(variant.poly as i64);
            for _ in 0..8 {
                let sh = if variant.reflected {
                    fb.bin(BinOp::LShr, Ty::I64, acc, Operand::imm(1))
                } else {
                    fb.bin(BinOp::Shl, Ty::I64, acc, Operand::imm(1))
                };
                let mixed = fb.bin(BinOp::Xor, Ty::I64, sh, poly);
                acc = fb.bin(BinOp::And, Ty::I64, mixed, Operand::imm(mask));
            }
        }
        AccelUnit::Checksum => {
            // Load/add/fold ones-complement style: sum payload words, then
            // fold the carries back in at the variant's width.
            for i in 0..4u16 {
                let w = fb.load(Ty::I32, MemRef::pkt(PktField::Payload(i * 4)));
                acc = fb.bin(BinOp::Add, Ty::I64, acc, w);
            }
            let hi = fb.bin(BinOp::LShr, Ty::I64, acc, Operand::imm(i64::from(variant.width)));
            let lo = fb.bin(BinOp::And, Ty::I64, acc, Operand::imm(mask));
            acc = fb.bin(BinOp::Add, Ty::I64, hi, lo);
        }
        AccelUnit::Lpm => {
            // Stride-8 prefix walk to the variant's key width: successive
            // masked shifts of the destination address.
            let dst = fb.load(Ty::I32, MemRef::pkt(PktField::IpDst));
            for depth in (8..=variant.width).step_by(8) {
                let sh = fb.bin(
                    BinOp::LShr,
                    Ty::I64,
                    dst,
                    Operand::imm(i64::from(32u32.saturating_sub(depth))),
                );
                let masked = fb.bin(BinOp::And, Ty::I64, sh, Operand::imm(mask));
                acc = fb.bin(BinOp::Xor, Ty::I64, acc, masked);
            }
        }
    }
    fb.store(Ty::I64, acc, MemRef::global(g_out));
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(None);
    m.funcs.push(fb.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), CATALOG.len());
    }

    #[test]
    fn lookup_round_trips_every_entry() {
        for v in CATALOG {
            assert_eq!(lookup(v.name).expect("present").name, v.name);
        }
        assert!(lookup("crc12-nonsense").is_none());
    }

    #[test]
    fn every_unit_has_a_default_with_unit_scale() {
        for u in AccelUnit::ALL {
            let d = default_for(u);
            assert_eq!(d.unit, u);
            assert_eq!(d.cycle_scale, 1.0, "{}", d.name);
            assert_eq!(AccelUnit::from_name(u.name()), Some(u));
        }
        assert_eq!(default_for(AccelUnit::Checksum).name, "csum-fold16");
        assert_eq!(default_for(AccelUnit::Crc).name, "crc32-ieee");
        assert_eq!(default_for(AccelUnit::Lpm).name, "lpm-w32");
    }

    #[test]
    fn reflect_bits_is_an_involution() {
        for v in CATALOG.iter().filter(|v| v.poly != 0) {
            assert_eq!(reflect_bits(reflect_bits(v.poly, v.width), v.width), v.poly);
        }
        assert_eq!(reflect_bits(0x07, 8), 0xE0);
    }

    #[test]
    fn reference_modules_verify_and_match_their_own_variant() {
        for v in CATALOG {
            let m = reference_module(v);
            nf_ir::verify::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", v.name));
            let hits = match_constants(&m);
            if v.poly != 0 {
                assert!(
                    hits.iter().any(|h| h.name == v.name),
                    "{} missing from its own reference kernel ({:?})",
                    v.name,
                    hits.iter().map(|h| h.name).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn match_constants_ignores_plain_modules() {
        let mut m = Module::new("plain");
        let g = m.add_global("ctr", StateKind::Scalar, 4, 1);
        let mut fb = FunctionBuilder::new("process");
        let e = fb.entry_block();
        fb.switch_to(e);
        let c = fb.load(Ty::I32, MemRef::global(g));
        let c2 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
        fb.store(Ty::I32, c2, MemRef::global(g));
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
        fb.ret(None);
        m.funcs.push(fb.finish());
        assert!(match_constants(&m).is_empty());
    }
}
