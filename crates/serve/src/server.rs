//! The daemon: TCP + UDS acceptors, per-tenant work queues, sharded
//! worker pool.
//!
//! Life of a request: a connection thread parses the line (or frame —
//! see [`crate::transport`]), resolves the tenant it runs as, and — for
//! work ops — tries to enqueue a job. Admission is decided **under the
//! queue lock** in one linearized step: draining servers answer
//! `draining`, a full shared queue answers `overloaded`, and a tenant
//! that filled its own quota answers `quota_exceeded` while everyone
//! else keeps being admitted. Admitted jobs go onto the tenant's
//! sub-queue; the connection thread parks on a channel while a worker
//! picks the job up.
//!
//! Dispatch is **deficit round-robin across tenants**: tenants with
//! pending jobs form a ring, each visit grants a quantum of
//! `batch_max` jobs, and unused credit carries (bounded) to the next
//! visit. A visit coalesces runs of adjacent `predict` jobs bound for
//! the *same device backend at the same precision* into one
//! [`Clara::predict_batch_on_prec`] call — coalescing never crosses
//! tenants. Workers are **sharded**: tenant *k* (registration order) is
//! pinned to shard `k % workers` and worker *i* serves shard
//! `i % min(workers, tenants)`, so a single tenant's burst occupies its
//! own slice of the pool while a lone-tenant workload still uses every
//! worker. `stats` is answered inline without queueing so it stays
//! responsive under load, and now carries per-tenant counters, the
//! `errors` total, and pairwise colocation-interference predictions.
//!
//! The server holds every backend in [`ServeOptions::backends`] warm
//! and routes each request by its `backend` field, falling back to the
//! tenant's registered default and then the server default; a name that
//! is not loaded is rejected before queueing with a typed
//! `unknown_backend` error.
//!
//! Drain (the `drain` op, [`ServerHandle::drain`], or SIGTERM via
//! [`install_sigterm_drain`]) flips the drain flag **while holding the
//! queue lock**, so it linearizes against admission: every job admitted
//! before the flip is answered by the worker pool, every request after
//! it gets the typed `draining` error, and drain always terminates.
//! (Checking the flag outside the lock used to leave a window where a
//! job could be pushed onto a queue whose workers had already observed
//! empty-and-draining and exited — `await_quiesce` then spun forever.)

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clara_core::{
    difftest, engine, Clara, ClaraError, DifftestConfig, NicConfig, PlacementFailure,
    PlacementRequest, Precision, Prediction,
};
use clara_hal::{Backend as _, DeviceBackend};
use clara_obs as obs;
use nf_ir::Module;
use serde::Value;

use crate::protocol::{self, Envelope, ErrorKind, RegisterSpec, Request, WorkSpec};
use crate::tenant::{Registry, Tenant};
use crate::transport;

/// How the daemon is sized. Plain struct: every field has a sensible
/// default, override what you need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Also listen on a Unix-domain socket at this path, speaking
    /// length-prefixed frames (the `uds` transport). `None`: TCP only.
    pub uds_path: Option<String>,
    /// Worker threads executing queued jobs.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get `overloaded`.
    pub queue_cap: usize,
    /// Most `predict` jobs coalesced into one batched engine stage;
    /// also the deficit-round-robin quantum.
    pub batch_max: usize,
    /// Per-request budget measured from enqueue. Also installed as the
    /// engine's `stage_deadline` so a wedged stage is cut short too.
    pub deadline: Option<Duration>,
    /// Built-in device backends held warm for per-request routing. The
    /// first entry serves requests that name no backend. Empty: the
    /// default device only.
    pub backends: Vec<String>,
    /// Inference precision for requests that do not name one.
    pub precision: Precision,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:4117".to_string(),
            uds_path: None,
            workers: 2,
            queue_cap: 64,
            batch_max: 8,
            deadline: None,
            backends: vec![clara_hal::DEFAULT_BACKEND.to_string()],
            precision: Precision::F64,
        }
    }
}

/// What the server did over its lifetime (returned by
/// [`ServerHandle::join`]). Summed per-tenant counters (wire `stats`)
/// reconcile exactly with these totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Work requests answered successfully.
    pub served: u64,
    /// Requests rejected by shared-queue admission control.
    pub overloaded: u64,
    /// Requests rejected by their tenant's own admission quota.
    pub quota_exceeded: u64,
    /// Requests that failed for any other reason.
    pub errors: u64,
}

enum JobKind {
    Predict(WorkSpec),
    Analyze(WorkSpec),
    Difftest { seeds: u64, start: u64, pkts: usize },
    Place(PlacementRequest),
}

struct Job {
    id: Option<u64>,
    tenant: Arc<Tenant>,
    kind: JobKind,
    enqueued: Instant,
    resp: mpsc::Sender<String>,
}

/// One tenant's sub-queue plus its deficit-round-robin credit.
struct TenantQueue {
    /// Latest registration of the owning tenant (refreshed at enqueue).
    tenant: Arc<Tenant>,
    jobs: VecDeque<Job>,
    deficit: u64,
}

/// Everything admission and dispatch agree on, under one lock: the
/// per-tenant sub-queues, the DRR ring of tenants with pending jobs,
/// the shared-capacity total, and the drain flag (in here precisely so
/// drain linearizes against admission).
struct QueueState {
    queues: BTreeMap<String, TenantQueue>,
    ring: VecDeque<String>,
    total: usize,
    draining: bool,
}

/// A served prediction's identity: the materialized work spec plus the
/// route (device, precision) that executed it. The trained model is
/// fixed for the server's lifetime, so this key fully determines the
/// prediction — and it hashes in nanoseconds, unlike the engine's
/// serialize-and-FNV content fingerprints.
type PredictKey = (String, usize, u64, bool, String, Precision);

/// Most entries the completed-prediction memo holds. Inserts past the
/// cap are dropped (never evicted), so a burst of distinctly-seeded
/// one-off requests cannot wash out the steady-state working set.
const PREDICT_CACHE_CAP: usize = 8192;

struct Shared {
    clara: Arc<Clara>,
    /// Predictor-weights fingerprint, hashed once at startup: computing
    /// it per batch costs milliseconds, which would dominate every warm
    /// sub-millisecond predict this daemon exists to serve.
    predictor_fp: u64,
    /// Completed predictions by spec + route. The engine's own caches
    /// make the second identical request recompute nothing; this layer
    /// makes it *re-hash* nothing (the engine keys its caches by
    /// content fingerprints that serialize the module and trace on
    /// every lookup, ~100us per request — 30-50% of a warm round trip).
    predict_cache: Mutex<HashMap<PredictKey, Prediction>>,
    corpus: BTreeMap<String, Module>,
    /// Warm device backends, default (request names none) first.
    backends: Vec<&'static DeviceBackend>,
    registry: Registry,
    /// NIC model used for colocation-interference predictions.
    nic: NicConfig,
    queue: Mutex<QueueState>,
    cv: Condvar,
    stopped: AtomicBool,
    in_flight: AtomicUsize,
    served: AtomicU64,
    overloaded: AtomicU64,
    quota_exceeded: AtomicU64,
    errors: AtomicU64,
    opts: ServeOptions,
    root: obs::SpanHandle,
}

impl Shared {
    /// Resolves the backend a request routes to: the named warm device,
    /// or the default (first) one when the request names none. `None`
    /// means the name is not loaded. (Tenant defaults are already
    /// materialized into the spec at dispatch.)
    fn backend_of(&self, w: &WorkSpec) -> Option<&'static DeviceBackend> {
        match &w.backend {
            None => Some(self.backends[0]),
            Some(name) => self.backends.iter().copied().find(|b| b.name() == name),
        }
    }

    /// The backend name a spec effectively runs under (for coalescing).
    fn effective_backend<'a>(&self, w: &'a WorkSpec) -> &'a str {
        w.backend.as_deref().unwrap_or_else(|| self.backends[0].name())
    }

    /// The precision a spec effectively runs at: its own request field,
    /// or the server's configured default.
    fn effective_precision(&self, w: &WorkSpec) -> Precision {
        w.precision.unwrap_or(self.opts.precision)
    }

    fn queue_gauge(&self, depth: usize) {
        obs::volatile_gauge("serve.queue.depth").set(depth as f64);
    }

    /// Counts one failed request against the global total and exactly
    /// one tenant (the invariant that keeps per-tenant counters summing
    /// to [`ServeSummary`]).
    fn count_error(&self, tenant: &Tenant) {
        self.errors.fetch_add(1, Ordering::SeqCst);
        tenant.stats.errors.fetch_add(1, Ordering::SeqCst);
    }

    /// The tenant to charge a failure to when the request's own tenant
    /// may not exist: the named one if registered, else the default.
    fn charge_tenant(&self, name: Option<&str>) -> Arc<Tenant> {
        self.registry
            .resolve(name)
            .unwrap_or_else(|| self.registry.default_tenant())
    }

    /// Stops admission — under the queue lock, so it linearizes against
    /// [`enqueue_and_wait`] — and wakes everyone who might be waiting.
    fn begin_drain(&self) {
        self.queue.lock().expect("queue poisoned").draining = true;
        self.cv.notify_all();
    }

    /// Blocks until the queue is empty and nothing is in flight.
    fn await_quiesce(&self) {
        loop {
            let empty = self.queue.lock().expect("queue poisoned").total == 0;
            if empty && self.in_flight.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// The `clara serve` daemon.
pub struct Server;

/// A running server. Dropping the handle does not stop it; drain it
/// (wire op, [`ServerHandle::drain`], or SIGTERM) and [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    uds_path: Option<String>,
    /// Root span kept open for the server's lifetime so every request's
    /// spans parent under it; closed in [`ServerHandle::join`] right
    /// before the final report capture.
    root_guard: Option<obs::SpanGuard>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor(s), and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ClaraError::Serve`] when the TCP address or UDS path cannot be
    /// bound (CLI exit code 7); [`ClaraError::Manifest`] when
    /// `opts.backends` names a device that is not built in (exit code 8).
    pub fn start(opts: ServeOptions, clara: Arc<Clara>) -> Result<ServerHandle, ClaraError> {
        let backend_names = if opts.backends.is_empty() {
            vec![clara_hal::DEFAULT_BACKEND.to_string()]
        } else {
            opts.backends.clone()
        };
        let backends = difftest::resolve_backends(&backend_names)?;
        let listener = TcpListener::bind(&opts.addr).map_err(|e| ClaraError::Serve {
            detail: format!("cannot bind {}: {e}", opts.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| ClaraError::Serve {
            detail: format!("cannot read bound address: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| ClaraError::Serve {
            detail: format!("cannot set nonblocking accept: {e}"),
        })?;
        #[cfg(unix)]
        let uds_listener = match &opts.uds_path {
            Some(path) => Some(bind_uds(path)?),
            None => None,
        };
        #[cfg(not(unix))]
        if let Some(path) = &opts.uds_path {
            return Err(ClaraError::Serve {
                detail: format!("unix-domain sockets are not available on this platform ({path})"),
            });
        }

        if let Some(d) = opts.deadline {
            let mut eo = engine::configured();
            eo.stage_deadline = Some(d);
            engine::configure(&eo);
        }

        obs::enable();
        let root_guard = obs::span("clara-serve");
        let root = root_guard.handle();

        let corpus = click_model::extended_corpus()
            .into_iter()
            .map(|e| (e.name().to_string(), e.module))
            .collect();

        let workers = opts.workers.max(1);
        let predictor_fp = clara.predictor_fingerprint();
        let shared = Arc::new(Shared {
            clara,
            predictor_fp,
            predict_cache: Mutex::new(HashMap::new()),
            corpus,
            backends,
            registry: Registry::new(workers, opts.queue_cap),
            nic: NicConfig::default(),
            queue: Mutex::new(QueueState {
                queues: BTreeMap::new(),
                ring: VecDeque::new(),
                total: 0,
                draining: false,
            }),
            cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            quota_exceeded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            opts: opts.clone(),
            root,
        });

        let workers = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clara-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s, i))
                    .expect("spawn worker thread")
            })
            .collect();

        let mut acceptors = vec![{
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("clara-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &s))
                .expect("spawn acceptor thread")
        }];
        #[cfg(unix)]
        if let Some(l) = uds_listener {
            let s = Arc::clone(&shared);
            acceptors.push(
                std::thread::Builder::new()
                    .name("clara-serve-accept-uds".to_string())
                    .spawn(move || uds_accept_loop(&l, &s))
                    .expect("spawn UDS acceptor thread"),
            );
        }

        Ok(ServerHandle {
            addr,
            shared,
            acceptors,
            workers,
            uds_path: opts.uds_path.clone(),
            root_guard: Some(root_guard),
        })
    }
}

#[cfg(unix)]
fn bind_uds(path: &str) -> Result<UnixListener, ClaraError> {
    // A previous daemon's socket file would make bind fail; it is dead
    // by definition (we are about to own the path), so clear it.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| ClaraError::Serve {
        detail: format!("cannot bind unix socket {path}: {e}"),
    })?;
    listener.set_nonblocking(true).map_err(|e| ClaraError::Serve {
        detail: format!("cannot set nonblocking UDS accept: {e}"),
    })?;
    Ok(listener)
}

impl ServerHandle {
    /// The actual bound TCP address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The Unix-socket path, when the `uds` transport is enabled.
    pub fn uds_path(&self) -> Option<&str> {
        self.uds_path.as_deref()
    }

    /// Programmatic drain: stop admission and (once quiesced) the
    /// acceptors. Equivalent to the wire `drain` op minus the report
    /// response.
    pub fn drain(&self) {
        self.shared.begin_drain();
        self.shared.await_quiesce();
        self.shared.stopped.store(true, Ordering::SeqCst);
    }

    /// Waits for the acceptors and workers to exit (i.e. for a drain to
    /// complete), closes the root span, writes a final run report when a
    /// `CLARA_REPORT` sink is configured, and returns the lifetime
    /// summary.
    pub fn join(mut self) -> ServeSummary {
        for a in self.acceptors.drain(..) {
            a.join().expect("acceptor thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        drop(self.root_guard.take());
        if let Some(raw) = obs::sink_from_env() {
            let path = obs::resolve_sink(&raw, "clara_serve.json");
            if let Err(e) = obs::RunReport::capture().write(&path) {
                eprintln!("warning: could not write report to {}: {e}", path.display());
            }
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::SeqCst),
            overloaded: self.shared.overloaded.load(Ordering::SeqCst),
            quota_exceeded: self.shared.quota_exceeded.load(Ordering::SeqCst),
            errors: self.shared.errors.load(Ordering::SeqCst),
        }
    }
}

// ---- acceptors ---------------------------------------------------------

fn accept_loop(listener: &TcpListener, s: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let s = Arc::clone(s);
                // Connection threads are deliberately detached: they park
                // on blocking reads for as long as the client keeps the
                // connection open, so joining them would hand shutdown
                // latency to the slowest client.
                std::thread::Builder::new()
                    .name("clara-serve-conn".to_string())
                    .spawn(move || handle_conn(stream, &s))
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        if term::signaled() && !s.stopped.load(Ordering::SeqCst) {
            s.begin_drain();
            s.await_quiesce();
            s.stopped.store(true, Ordering::SeqCst);
        }
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(unix)]
fn uds_accept_loop(listener: &UnixListener, s: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let s = Arc::clone(s);
                std::thread::Builder::new()
                    .name("clara-serve-conn-uds".to_string())
                    .spawn(move || handle_conn_framed(stream, &s))
                    .expect("spawn UDS connection thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

// ---- connection threads ------------------------------------------------

fn handle_conn(stream: TcpStream, s: &Arc<Shared>) {
    // One write per response and no Nagle buffering: a request/response
    // protocol of small frames would otherwise serialize on ~40ms
    // delayed-ACK stalls.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let mut response = handle_line(&line, s);
        response.push('\n');
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(unix)]
fn handle_conn_framed(stream: UnixStream, s: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    // Both buffers live for the whole connection: zero per-request
    // allocation on the framing path (the point of the uds transport).
    let mut read_buf = Vec::with_capacity(4096);
    let mut write_buf = Vec::with_capacity(4096);
    loop {
        let line = match transport::read_frame(&mut reader, &mut read_buf) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(&line, s);
        if transport::write_frame(&mut writer, &mut write_buf, &response).is_err() {
            return;
        }
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_line(line: &str, s: &Arc<Shared>) -> String {
    let started = Instant::now();
    let env = match protocol::parse_request(line) {
        Ok(env) => env,
        Err(detail) => {
            // Parse failures have no attributable tenant; they count
            // against `default` so totals still reconcile.
            s.count_error(&s.registry.default_tenant());
            return protocol::error_response(None, ErrorKind::BadRequest, &detail);
        }
    };
    let op_name = match &env.req {
        Request::Predict(_) => "predict",
        Request::Analyze(_) => "analyze",
        Request::Difftest { .. } => "difftest",
        Request::Place(_) => "place",
        Request::Register(_) => "register",
        Request::Stats => "stats",
        Request::Drain => "drain",
    };
    let response = dispatch(env, s);
    obs::volatile_histogram(&format!("serve.op.{op_name}.latency_us"))
        .observe(started.elapsed().as_micros() as f64);
    response
}

fn dispatch(env: Envelope, s: &Arc<Shared>) -> String {
    let Envelope { id, tenant, req } = env;
    match req {
        Request::Stats => stats_inline(id, s),
        Request::Drain => drain_inline(id, s),
        Request::Register(spec) => register_inline(id, tenant.as_deref(), spec, s),
        req => match s.registry.resolve(tenant.as_deref()) {
            Some(t) => dispatch_work(id, t, req, s),
            None => {
                s.count_error(&s.charge_tenant(None));
                protocol::error_response(
                    id,
                    ErrorKind::UnknownTenant,
                    &format!(
                        "`{}` is not a registered tenant (send op:\"register\" first)",
                        tenant.as_deref().unwrap_or("?")
                    ),
                )
            }
        },
    }
}

/// Checks an NF name against the tenant's registered set (empty set:
/// whole corpus admitted).
fn tenant_admits(t: &Tenant, nf: &str) -> bool {
    t.nfs.is_empty() || t.nfs.iter().any(|n| n == nf)
}

fn dispatch_work(id: Option<u64>, t: Arc<Tenant>, req: Request, s: &Arc<Shared>) -> String {
    // Materialize the tenant's registered defaults into the spec before
    // validation so coalescing and routing see one resolved value.
    let req = match req {
        Request::Predict(mut w) => {
            w.backend = w.backend.or_else(|| t.backend.clone());
            w.precision = w.precision.or(t.precision);
            Request::Predict(w)
        }
        Request::Analyze(mut w) => {
            w.backend = w.backend.or_else(|| t.backend.clone());
            w.precision = w.precision.or(t.precision);
            Request::Analyze(w)
        }
        Request::Place(mut r) => {
            r.backend = r.backend.or_else(|| t.backend.clone());
            r.precision = r.precision.or(t.precision);
            Request::Place(r)
        }
        other => other,
    };
    match req {
        Request::Predict(w) | Request::Analyze(w) if !s.corpus.contains_key(&w.nf) => {
            s.count_error(&t);
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{}` is not in the corpus (see `clara list`)", w.nf),
            )
        }
        Request::Predict(w) | Request::Analyze(w) if !tenant_admits(&t, &w.nf) => {
            s.count_error(&t);
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{}` is not in tenant `{}`'s registered NF set", w.nf, t.name),
            )
        }
        Request::Predict(w) | Request::Analyze(w) if s.backend_of(&w).is_none() => {
            s.count_error(&t);
            let loaded: Vec<&str> = s.backends.iter().map(|b| b.name()).collect();
            protocol::error_response(
                id,
                ErrorKind::UnknownBackend,
                &format!(
                    "`{}` is not a warm backend (loaded: {})",
                    w.backend.as_deref().unwrap_or("?"),
                    loaded.join(", ")
                ),
            )
        }
        Request::Place(r) if r.nfs.iter().any(|nf| !s.corpus.contains_key(nf)) => {
            s.count_error(&t);
            let unknown = r
                .nfs
                .iter()
                .find(|nf| !s.corpus.contains_key(*nf))
                .expect("guard found one");
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{unknown}` is not in the corpus (see `clara list`)"),
            )
        }
        Request::Place(r) if r.nfs.iter().any(|nf| !tenant_admits(&t, nf)) => {
            s.count_error(&t);
            let outside = r
                .nfs
                .iter()
                .find(|nf| !tenant_admits(&t, nf))
                .expect("guard found one");
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{outside}` is not in tenant `{}`'s registered NF set", t.name),
            )
        }
        Request::Place(r)
            if r.backend
                .as_deref()
                .is_some_and(|n| !s.backends.iter().any(|b| b.name() == n)) =>
        {
            s.count_error(&t);
            let loaded: Vec<&str> = s.backends.iter().map(|b| b.name()).collect();
            protocol::error_response(
                id,
                ErrorKind::UnknownBackend,
                &format!(
                    "`{}` is not a warm backend (loaded: {})",
                    r.backend.as_deref().unwrap_or("?"),
                    loaded.join(", ")
                ),
            )
        }
        Request::Predict(w) => enqueue_and_wait(id, t, JobKind::Predict(w), s),
        Request::Analyze(w) => enqueue_and_wait(id, t, JobKind::Analyze(w), s),
        Request::Difftest { seeds, start, pkts } => {
            enqueue_and_wait(id, t, JobKind::Difftest { seeds, start, pkts }, s)
        }
        Request::Place(r) => enqueue_and_wait(id, t, JobKind::Place(r), s),
        Request::Register(_) | Request::Stats | Request::Drain => {
            unreachable!("inline ops handled before dispatch_work")
        }
    }
}

fn enqueue_and_wait(id: Option<u64>, tenant: Arc<Tenant>, kind: JobKind, s: &Arc<Shared>) -> String {
    let (tx, rx) = mpsc::channel();
    {
        let mut qs = s.queue.lock().expect("queue poisoned");
        // Admission is one linearized decision under the lock: the
        // drain flag, the shared capacity, and the tenant quota are all
        // judged against the same queue state. In particular a job
        // admitted here is *guaranteed* a live worker pool — workers
        // only exit after observing `draining && total == 0` under this
        // same lock.
        if qs.draining {
            drop(qs);
            // A lifecycle refusal, not a failure: like `overloaded` and
            // `quota_exceeded` it stays out of `errors`, which tallies
            // client mistakes and internal faults only.
            obs::volatile_counter("serve.draining.rejected").incr();
            return protocol::error_response(
                id,
                ErrorKind::Draining,
                "server is draining and no longer admits work",
            );
        }
        if qs.total >= s.opts.queue_cap {
            drop(qs);
            s.overloaded.fetch_add(1, Ordering::SeqCst);
            tenant.stats.overloaded.fetch_add(1, Ordering::SeqCst);
            obs::volatile_counter("serve.overloaded").incr();
            return protocol::error_response(
                id,
                ErrorKind::Overloaded,
                &format!("queue at capacity ({})", s.opts.queue_cap),
            );
        }
        let tq = qs
            .queues
            .entry(tenant.name.clone())
            .or_insert_with(|| TenantQueue {
                tenant: Arc::clone(&tenant),
                jobs: VecDeque::new(),
                deficit: 0,
            });
        if tq.jobs.len() >= tenant.quota {
            drop(qs);
            s.quota_exceeded.fetch_add(1, Ordering::SeqCst);
            tenant.stats.quota_exceeded.fetch_add(1, Ordering::SeqCst);
            obs::volatile_counter("serve.quota_exceeded").incr();
            return protocol::error_response(
                id,
                ErrorKind::QuotaExceeded,
                &format!("tenant `{}` is at its quota ({})", tenant.name, tenant.quota),
            );
        }
        let was_empty = tq.jobs.is_empty();
        // Refresh the queue's view of the tenant so a re-registration's
        // new quota/defaults apply from the next admission on.
        tq.tenant = Arc::clone(&tenant);
        tq.jobs.push_back(Job {
            id,
            tenant: Arc::clone(&tenant),
            kind,
            enqueued: Instant::now(),
            resp: tx,
        });
        qs.total += 1;
        if was_empty {
            qs.ring.push_back(tenant.name.clone());
        }
        s.queue_gauge(qs.total);
    }
    // notify_all, not notify_one: with sharded workers the one woken
    // thread may serve a different shard and go straight back to sleep.
    s.cv.notify_all();
    // The worker pool always answers every admitted job — including
    // during drain, which finishes the queue before workers exit.
    rx.recv().unwrap_or_else(|_| {
        protocol::error_response(id, ErrorKind::Internal, "worker dropped the request")
    })
}

fn register_inline(
    id: Option<u64>,
    tenant_name: Option<&str>,
    spec: RegisterSpec,
    s: &Arc<Shared>,
) -> String {
    let Some(name) = tenant_name else {
        s.count_error(&s.charge_tenant(None));
        return protocol::error_response(
            id,
            ErrorKind::BadRequest,
            "op \"register\" requires a `tenant` name",
        );
    };
    // No registration during drain: the shard layout must stay frozen
    // while workers finish the queue.
    if s.queue.lock().expect("queue poisoned").draining {
        s.count_error(&s.charge_tenant(Some(name)));
        return protocol::error_response(
            id,
            ErrorKind::Draining,
            "server is draining and no longer accepts registrations",
        );
    }
    if let Some(unknown) = spec.nfs.iter().find(|nf| !s.corpus.contains_key(*nf)) {
        s.count_error(&s.charge_tenant(Some(name)));
        return protocol::error_response(
            id,
            ErrorKind::UnknownNf,
            &format!("`{unknown}` is not in the corpus (see `clara list`)"),
        );
    }
    if let Some(b) = &spec.backend {
        if !s.backends.iter().any(|w| w.name() == b.as_str()) {
            s.count_error(&s.charge_tenant(Some(name)));
            let loaded: Vec<&str> = s.backends.iter().map(|w| w.name()).collect();
            return protocol::error_response(
                id,
                ErrorKind::UnknownBackend,
                &format!("`{b}` is not a warm backend (loaded: {})", loaded.join(", ")),
            );
        }
    }
    let cap = s.opts.queue_cap as u64;
    let quota = spec.quota.unwrap_or(cap).clamp(1, cap) as usize;
    let profile = if spec.nfs.is_empty() {
        None
    } else {
        let modules: Vec<&Module> = spec
            .nfs
            .iter()
            .map(|nf| s.corpus.get(nf).expect("validated above"))
            .collect();
        clara_core::representative_profile(&modules, &s.nic)
    };
    let t = s
        .registry
        .register(name, spec.nfs, spec.backend, spec.precision, quota, profile);
    obs::counter("serve.ops.register").incr();
    publish_coloc_gauges(s);
    protocol::register_response(id, name, t.shard, t.quota, &t.nfs)
}

/// Publishes the pairwise interference predictions as deterministic
/// gauges (`serve.coloc.<a>~<b>.loss_pct` = what `a` loses when
/// colocated with `b`), so the drain report carries the fleet's
/// interference map. Pure model outputs — safe for byte-identical
/// deterministic reports.
fn publish_coloc_gauges(s: &Arc<Shared>) {
    for p in s.registry.coloc_pairs(&s.nic) {
        obs::gauge(&format!("serve.coloc.{}~{}.loss_pct", p.a, p.b))
            .set(p.interference.a_loss_pct);
        obs::gauge(&format!("serve.coloc.{}~{}.loss_pct", p.b, p.a))
            .set(p.interference.b_loss_pct);
    }
}

fn stats_inline(id: Option<u64>, s: &Arc<Shared>) -> String {
    let (depth, draining, queued_by_tenant) = {
        let qs = s.queue.lock().expect("queue poisoned");
        let queued: BTreeMap<String, u64> = qs
            .queues
            .iter()
            .map(|(name, tq)| (name.clone(), tq.jobs.len() as u64))
            .collect();
        (qs.total, qs.draining, queued)
    };
    let es = engine::EngineStats::snapshot();
    let tenants = s
        .registry
        .snapshot()
        .iter()
        .map(|t| {
            let (served, overloaded, quota_exceeded, errors) = t.stats.snapshot();
            Value::Map(vec![
                ("name".to_string(), Value::Str(t.name.clone())),
                ("shard".to_string(), Value::UInt(t.shard as u64)),
                ("quota".to_string(), Value::UInt(t.quota as u64)),
                (
                    "queued".to_string(),
                    Value::UInt(queued_by_tenant.get(&t.name).copied().unwrap_or(0)),
                ),
                ("served".to_string(), Value::UInt(served)),
                ("overloaded".to_string(), Value::UInt(overloaded)),
                ("quota_exceeded".to_string(), Value::UInt(quota_exceeded)),
                ("errors".to_string(), Value::UInt(errors)),
            ])
        })
        .collect();
    let coloc = s
        .registry
        .coloc_pairs(&s.nic)
        .iter()
        .map(|p| {
            Value::Map(vec![
                ("a".to_string(), Value::Str(p.a.clone())),
                ("b".to_string(), Value::Str(p.b.clone())),
                ("a_loss_pct".to_string(), Value::Float(p.interference.a_loss_pct)),
                ("b_loss_pct".to_string(), Value::Float(p.interference.b_loss_pct)),
            ])
        })
        .collect();
    let fields = vec![
        ("queue_depth".to_string(), Value::UInt(depth as u64)),
        (
            "in_flight".to_string(),
            Value::UInt(s.in_flight.load(Ordering::SeqCst) as u64),
        ),
        (
            "served".to_string(),
            Value::UInt(s.served.load(Ordering::SeqCst)),
        ),
        (
            "overloaded".to_string(),
            Value::UInt(s.overloaded.load(Ordering::SeqCst)),
        ),
        (
            "quota_exceeded".to_string(),
            Value::UInt(s.quota_exceeded.load(Ordering::SeqCst)),
        ),
        (
            "errors".to_string(),
            Value::UInt(s.errors.load(Ordering::SeqCst)),
        ),
        ("draining".to_string(), Value::Bool(draining)),
        (
            "workers".to_string(),
            Value::UInt(s.opts.workers.max(1) as u64),
        ),
        (
            "shards".to_string(),
            Value::UInt(s.registry.shard_count() as u64),
        ),
        (
            "queue_cap".to_string(),
            Value::UInt(s.opts.queue_cap as u64),
        ),
        (
            "batch_max".to_string(),
            Value::UInt(s.opts.batch_max as u64),
        ),
        (
            "precision".to_string(),
            Value::Str(s.opts.precision.as_str().to_string()),
        ),
        (
            "backends".to_string(),
            Value::Seq(
                s.backends
                    .iter()
                    .map(|b| Value::Str(b.name().to_string()))
                    .collect(),
            ),
        ),
        ("tenants".to_string(), Value::Seq(tenants)),
        ("coloc".to_string(), Value::Seq(coloc)),
        ("compile_hits".to_string(), Value::UInt(es.compile_hits)),
        ("compile_misses".to_string(), Value::UInt(es.compile_misses)),
        ("profile_hits".to_string(), Value::UInt(es.profile_hits)),
        ("profile_misses".to_string(), Value::UInt(es.profile_misses)),
        ("disk_hits".to_string(), Value::UInt(es.disk_hits)),
        (
            "disk_recomputes".to_string(),
            Value::UInt(es.disk_recomputes),
        ),
    ];
    protocol::stats_response(id, fields)
}

fn drain_inline(id: Option<u64>, s: &Arc<Shared>) -> String {
    s.begin_drain();
    s.await_quiesce();
    let served = s.served.load(Ordering::SeqCst);
    // Open spans snapshot with zero length, so capturing while the root
    // span is still open is well-defined; the deterministic rendering
    // strips timestamps anyway.
    let report_json = obs::RunReport::capture().to_json_deterministic();
    let report = serde_json::parse_value(&report_json)
        .unwrap_or(Value::Str(report_json));
    let response = protocol::drain_response(id, served, report);
    s.stopped.store(true, Ordering::SeqCst);
    response
}

// ---- workers -----------------------------------------------------------

/// One deficit-round-robin visit for the given worker: scan the ring
/// for the first tenant on this worker's shard, grant it a quantum of
/// credit, and take one coalescible batch from its sub-queue. `None`
/// when no ring tenant belongs to this shard.
fn pop_batch(
    qs: &mut MutexGuard<'_, QueueState>,
    worker: usize,
    s: &Arc<Shared>,
) -> Option<Vec<Job>> {
    // Live shard layout: grows as tenants register (capped at the
    // worker count), so a lone tenant is served by every worker while a
    // full fleet gets disjoint worker groups.
    let shard_count = s.registry.shard_count();
    let my_shard = worker % shard_count;
    let quantum = s.opts.batch_max.max(1) as u64;
    let pos = (0..qs.ring.len()).find(|&i| {
        let name = &qs.ring[i];
        qs.queues
            .get(name)
            .is_some_and(|tq| tq.tenant.shard % shard_count == my_shard)
    })?;
    let name = qs.ring.remove(pos).expect("index in bounds");
    let tq = qs.queues.get_mut(&name).expect("ring names a live queue");
    // Unused credit carries to the next visit (bounded to one extra
    // quantum) so a tenant whose batch was cut short by a backend
    // boundary is not perpetually shortchanged.
    tq.deficit = (tq.deficit + quantum).min(2 * quantum);
    let mut batch = vec![tq.jobs.pop_front().expect("ring tenants have jobs")];
    // Only predicts routed to the *same* device at the *same* precision
    // coalesce — one batch, one backend, one inference path, one engine
    // stage. Coalescing never crosses tenant sub-queues.
    if let JobKind::Predict(w0) = &batch[0].kind {
        let backend = s.effective_backend(w0).to_string();
        let precision = s.effective_precision(w0);
        while (batch.len() as u64) < tq.deficit && batch.len() < s.opts.batch_max.max(1) {
            match tq.jobs.front() {
                Some(j)
                    if matches!(
                        &j.kind,
                        JobKind::Predict(w) if s.effective_backend(w) == backend
                            && s.effective_precision(w) == precision
                    ) =>
                {
                    batch.push(tq.jobs.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
    }
    tq.deficit = tq.deficit.saturating_sub(batch.len() as u64);
    if tq.jobs.is_empty() {
        tq.deficit = 0;
    } else {
        qs.ring.push_back(name);
    }
    qs.total -= batch.len();
    Some(batch)
}

fn worker_loop(s: &Arc<Shared>, worker: usize) {
    loop {
        let batch = {
            let mut qs = s.queue.lock().expect("queue poisoned");
            let batch = loop {
                // The drain flag lives under this lock, so a worker can
                // only exit when no admitted job remains anywhere — the
                // admission path holding the same lock makes
                // "admitted but never served" impossible.
                if qs.draining && qs.total == 0 {
                    return;
                }
                if let Some(batch) = pop_batch(&mut qs, worker, s) {
                    break batch;
                }
                qs = s
                    .cv
                    .wait_timeout(qs, Duration::from_millis(50))
                    .expect("queue poisoned")
                    .0;
            };
            s.in_flight.fetch_add(batch.len(), Ordering::SeqCst);
            s.queue_gauge(qs.total);
            batch
        };
        run_batch(batch, s);
        s.cv.notify_all();
    }
}

/// Splits expired jobs out, answers them with `deadline`, and returns
/// the still-live remainder.
fn reap_expired(batch: Vec<Job>, s: &Arc<Shared>) -> Vec<Job> {
    let Some(deadline) = s.opts.deadline else {
        return batch;
    };
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.enqueued.elapsed() > deadline {
            s.count_error(&job.tenant);
            let _ = job.resp.send(protocol::error_response(
                job.id,
                ErrorKind::Deadline,
                &format!("request exceeded its {deadline:?} budget while queued"),
            ));
            s.in_flight.fetch_sub(1, Ordering::SeqCst);
        } else {
            live.push(job);
        }
    }
    live
}

fn run_batch(batch: Vec<Job>, s: &Arc<Shared>) {
    let batch = reap_expired(batch, s);
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    obs::volatile_histogram("serve.batch.size").observe(n as f64);
    if n > 1 || matches!(batch[0].kind, JobKind::Predict(_)) {
        run_predict_batch(batch, s);
    } else {
        let job = batch.into_iter().next().expect("checked non-empty");
        run_single(job, s);
        s.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_predict_batch(batch: Vec<Job>, s: &Arc<Shared>) {
    let n = batch.len();
    obs::counter("serve.ops.predict").add(n as u64);
    let specs: Vec<&WorkSpec> = batch
        .iter()
        .map(|j| match &j.kind {
            JobKind::Predict(w) => w,
            _ => unreachable!("predict batches contain only predict jobs"),
        })
        .collect();
    // Coalescing admits only same-backend, same-precision predicts, so
    // the whole batch routes to the first spec's device and path.
    let backend = s.backend_of(specs[0]).expect("validated at admission");
    let precision = s.effective_precision(specs[0]);
    let keys: Vec<PredictKey> = specs
        .iter()
        .map(|w| {
            (
                w.nf.clone(),
                w.packets,
                w.seed,
                w.small_flows,
                backend.name().to_string(),
                precision,
            )
        })
        .collect();
    let mut results: Vec<Option<Result<Prediction, clara_core::ClaraError>>> =
        (0..n).map(|_| None).collect();
    let mut hits = 0u64;
    {
        let cache = s.predict_cache.lock().expect("predict cache lock");
        for (slot, key) in results.iter_mut().zip(&keys) {
            if let Some(p) = cache.get(key) {
                *slot = Some(Ok(p.clone()));
                hits += 1;
            }
        }
    }
    let misses: Vec<usize> = (0..n).filter(|i| results[*i].is_none()).collect();
    obs::counter("serve.cache.predict_hits").add(hits);
    obs::counter("serve.cache.predict_misses").add(misses.len() as u64);
    if !misses.is_empty() {
        // Trace synthesis is itself per-request work worth skipping on a
        // hit, so it happens only for the cache misses.
        let traces: Vec<_> = misses.iter().map(|&i| specs[i].trace()).collect();
        let items: Vec<(&Module, &trafgen::Trace)> = misses
            .iter()
            .zip(&traces)
            .map(|(&i, t)| {
                (
                    s.corpus.get(&specs[i].nf).expect("validated at admission"),
                    t,
                )
            })
            .collect();
        let engine_results = {
            let span = obs::span_under(s.root, "serve-predict-batch");
            let _ctx = obs::attach(span.handle());
            s.clara
                .predict_batch_on_prec_cached(&items, backend, precision, s.predictor_fp)
        };
        let mut cache = s.predict_cache.lock().expect("predict cache lock");
        for (&i, result) in misses.iter().zip(engine_results) {
            if let Ok(p) = &result {
                if cache.len() < PREDICT_CACHE_CAP {
                    cache.insert(keys[i].clone(), p.clone());
                }
            }
            results[i] = Some(result);
        }
    }
    let results: Vec<_> = results
        .into_iter()
        .map(|r| r.expect("every slot filled by hit or miss path"))
        .collect();
    for ((job, spec), result) in batch.iter().zip(&specs).zip(results) {
        let response = match result {
            Ok(p) => {
                s.served.fetch_add(1, Ordering::SeqCst);
                job.tenant.stats.served.fetch_add(1, Ordering::SeqCst);
                protocol::predict_response(job.id, &spec.nf, backend.name(), precision, &p)
            }
            Err(e) => {
                s.count_error(&job.tenant);
                protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
            }
        };
        let _ = job.resp.send(response);
    }
    s.in_flight.fetch_sub(n, Ordering::SeqCst);
}

fn run_single(job: Job, s: &Arc<Shared>) {
    let response = match &job.kind {
        JobKind::Predict(_) => unreachable!("predict jobs go through the batch path"),
        JobKind::Analyze(w) => {
            obs::counter("serve.ops.analyze").incr();
            let module = s.corpus.get(&w.nf).expect("validated at admission");
            let backend = s.backend_of(w).expect("validated at admission");
            let precision = s.effective_precision(w);
            let trace = w.trace();
            let outcome = {
                let span = obs::span_under(s.root, "serve-analyze");
                let _ctx = obs::attach(span.handle());
                s.clara.analyze_on_prec(module, &trace, backend, precision)
            };
            match outcome {
                Ok(ins) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    job.tenant.stats.served.fetch_add(1, Ordering::SeqCst);
                    protocol::analyze_response(
                        job.id,
                        &w.nf,
                        backend.name(),
                        precision,
                        module,
                        &ins,
                    )
                }
                Err(e) => {
                    s.count_error(&job.tenant);
                    protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
                }
            }
        }
        JobKind::Place(r) => {
            obs::counter("serve.ops.place").incr();
            let backend = match &r.backend {
                None => s.backends[0],
                Some(name) => s
                    .backends
                    .iter()
                    .copied()
                    .find(|b| b.name() == name.as_str())
                    .expect("validated at admission"),
            };
            let precision = r.precision.unwrap_or(s.opts.precision);
            let outcome = {
                let span = obs::span_under(s.root, "serve-place");
                let _ctx = obs::attach(span.handle());
                s.clara.place_on_prec(r, backend, precision)
            };
            match outcome {
                Ok(plan) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    job.tenant.stats.served.fetch_add(1, Ordering::SeqCst);
                    protocol::place_response(job.id, &plan)
                }
                Err(e) => {
                    s.count_error(&job.tenant);
                    let kind = match &e {
                        ClaraError::Placement {
                            kind: PlacementFailure::Infeasible,
                            ..
                        } => ErrorKind::Infeasible,
                        ClaraError::Placement {
                            kind: PlacementFailure::UnknownNf,
                            ..
                        } => ErrorKind::UnknownNf,
                        _ => ErrorKind::Internal,
                    };
                    protocol::error_response(job.id, kind, &e.to_string())
                }
            }
        }
        JobKind::Difftest { seeds, start, pkts } => {
            obs::counter("serve.ops.difftest").incr();
            let cfg = DifftestConfig {
                seeds: *seeds,
                start_seed: *start,
                pkts: *pkts,
                shrink: false,
                artifact_dir: None,
                inject: None,
                ..DifftestConfig::default()
            };
            let outcome = {
                let span = obs::span_under(s.root, "serve-difftest");
                let _ctx = obs::attach(span.handle());
                difftest::run(&cfg)
            };
            match outcome {
                Ok(report) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    job.tenant.stats.served.fetch_add(1, Ordering::SeqCst);
                    protocol::difftest_response(
                        job.id,
                        report.checked as u64,
                        report.divergent.len() as u64,
                        report.engine_failures as u64,
                    )
                }
                Err(e) => {
                    s.count_error(&job.tenant);
                    protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
                }
            }
        }
    };
    let _ = job.resp.send(response);
}

// ---- SIGTERM -----------------------------------------------------------

#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            let _ = signal(SIGTERM, on_term);
        }
    }

    pub fn signaled() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub fn install() {}

    pub fn signaled() -> bool {
        false
    }
}

/// Installs a SIGTERM handler that triggers a graceful drain (the
/// acceptor polls it). No-op on non-unix platforms.
pub fn install_sigterm_drain() {
    term::install();
}
