//! The daemon: TCP acceptor, bounded work queue, worker pool.
//!
//! Life of a request: a connection thread parses the line and — for work
//! ops — tries to enqueue a job onto the bounded queue. If the queue
//! is at capacity the request is rejected *immediately* with a typed
//! `overloaded` response (admission control; the client decides whether
//! to retry). Otherwise the connection thread parks on a channel while a
//! worker picks the job up, coalescing runs of adjacent `predict` jobs
//! bound for the *same device backend* into one
//! [`Clara::predict_batch_on`] call (one engine `par_map` stage for the
//! whole batch). `stats` is answered inline without queueing so it
//! stays responsive under load.
//!
//! The server holds every backend in [`ServeOptions::backends`] warm
//! and routes each request by its `backend` field (default: the first
//! configured device); a name that is not loaded is rejected before
//! queueing with a typed `unknown_backend` error.
//!
//! Drain (the `drain` op, [`ServerHandle::drain`], or SIGTERM via
//! [`install_sigterm_drain`]) flips one flag: admission stops (new work
//! gets a typed `draining` error), workers finish the queue and exit,
//! and the drain response carries the final deterministic
//! [`clara_obs::RunReport`] of everything the server did.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clara_core::{
    difftest, engine, Clara, ClaraError, DifftestConfig, PlacementFailure, PlacementRequest,
    Precision,
};
use clara_hal::{Backend as _, DeviceBackend};
use clara_obs as obs;
use nf_ir::Module;
use serde::Value;

use crate::protocol::{self, Envelope, ErrorKind, Request, WorkSpec};

/// How the daemon is sized. Plain struct: every field has a sensible
/// default, override what you need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Worker threads executing queued jobs.
    pub workers: usize,
    /// Bounded queue capacity; beyond it requests get `overloaded`.
    pub queue_cap: usize,
    /// Most `predict` jobs coalesced into one batched engine stage.
    pub batch_max: usize,
    /// Per-request budget measured from enqueue. Also installed as the
    /// engine's `stage_deadline` so a wedged stage is cut short too.
    pub deadline: Option<Duration>,
    /// Built-in device backends held warm for per-request routing. The
    /// first entry serves requests that name no backend. Empty: the
    /// default device only.
    pub backends: Vec<String>,
    /// Inference precision for requests that do not name one.
    pub precision: Precision,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:4117".to_string(),
            workers: 2,
            queue_cap: 64,
            batch_max: 8,
            deadline: None,
            backends: vec![clara_hal::DEFAULT_BACKEND.to_string()],
            precision: Precision::F64,
        }
    }
}

/// What the server did over its lifetime (returned by
/// [`ServerHandle::join`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Work requests answered successfully.
    pub served: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Requests that failed for any other reason.
    pub errors: u64,
}

enum JobKind {
    Predict(WorkSpec),
    Analyze(WorkSpec),
    Difftest { seeds: u64, start: u64, pkts: usize },
    Place(PlacementRequest),
}

struct Job {
    id: Option<u64>,
    kind: JobKind,
    enqueued: Instant,
    resp: mpsc::Sender<String>,
}

struct Shared {
    clara: Arc<Clara>,
    corpus: BTreeMap<String, Module>,
    /// Warm device backends, default (request names none) first.
    backends: Vec<&'static DeviceBackend>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    draining: AtomicBool,
    stopped: AtomicBool,
    in_flight: AtomicUsize,
    served: AtomicU64,
    overloaded: AtomicU64,
    errors: AtomicU64,
    opts: ServeOptions,
    root: obs::SpanHandle,
}

impl Shared {
    /// Resolves the backend a request routes to: the named warm device,
    /// or the default (first) one when the request names none. `None`
    /// means the name is not loaded.
    fn backend_of(&self, w: &WorkSpec) -> Option<&'static DeviceBackend> {
        match &w.backend {
            None => Some(self.backends[0]),
            Some(name) => self.backends.iter().copied().find(|b| b.name() == name),
        }
    }

    /// The backend name a spec effectively runs under (for coalescing).
    fn effective_backend<'a>(&self, w: &'a WorkSpec) -> &'a str {
        w.backend.as_deref().unwrap_or_else(|| self.backends[0].name())
    }

    /// The precision a spec effectively runs at: its own request field,
    /// or the server's configured default.
    fn effective_precision(&self, w: &WorkSpec) -> Precision {
        w.precision.unwrap_or(self.opts.precision)
    }

    fn queue_gauge(&self, depth: usize) {
        obs::volatile_gauge("serve.queue.depth").set(depth as f64);
    }

    /// Stops admission and wakes everyone who might be waiting on it.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Blocks until the queue is empty and nothing is in flight.
    fn await_quiesce(&self) {
        loop {
            let empty = self.queue.lock().expect("queue poisoned").is_empty();
            if empty && self.in_flight.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// The `clara serve` daemon.
pub struct Server;

/// A running server. Dropping the handle does not stop it; drain it
/// (wire op, [`ServerHandle::drain`], or SIGTERM) and [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    /// Root span kept open for the server's lifetime so every request's
    /// spans parent under it; closed in [`ServerHandle::join`] right
    /// before the final report capture.
    root_guard: Option<obs::SpanGuard>,
}

impl Server {
    /// Binds, spawns the worker pool and acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ClaraError::Serve`] when the address cannot be bound (CLI exit
    /// code 7); [`ClaraError::Manifest`] when `opts.backends` names a
    /// device that is not built in (exit code 8).
    pub fn start(opts: ServeOptions, clara: Arc<Clara>) -> Result<ServerHandle, ClaraError> {
        let backend_names = if opts.backends.is_empty() {
            vec![clara_hal::DEFAULT_BACKEND.to_string()]
        } else {
            opts.backends.clone()
        };
        let backends = difftest::resolve_backends(&backend_names)?;
        let listener = TcpListener::bind(&opts.addr).map_err(|e| ClaraError::Serve {
            detail: format!("cannot bind {}: {e}", opts.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| ClaraError::Serve {
            detail: format!("cannot read bound address: {e}"),
        })?;
        listener.set_nonblocking(true).map_err(|e| ClaraError::Serve {
            detail: format!("cannot set nonblocking accept: {e}"),
        })?;

        if let Some(d) = opts.deadline {
            let mut eo = engine::configured();
            eo.stage_deadline = Some(d);
            engine::configure(&eo);
        }

        obs::enable();
        let root_guard = obs::span("clara-serve");
        let root = root_guard.handle();

        let corpus = click_model::extended_corpus()
            .into_iter()
            .map(|e| (e.name().to_string(), e.module))
            .collect();

        let shared = Arc::new(Shared {
            clara,
            corpus,
            backends,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            opts: opts.clone(),
            root,
        });

        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clara-serve-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("clara-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &s))
                .expect("spawn acceptor thread")
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
            workers,
            root_guard: Some(root_guard),
        })
    }
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic drain: stop admission and (once quiesced) the
    /// acceptor. Equivalent to the wire `drain` op minus the report
    /// response.
    pub fn drain(&self) {
        self.shared.begin_drain();
        self.shared.await_quiesce();
        self.shared.stopped.store(true, Ordering::SeqCst);
    }

    /// Waits for the acceptor and workers to exit (i.e. for a drain to
    /// complete), closes the root span, writes a final run report when a
    /// `CLARA_REPORT` sink is configured, and returns the lifetime
    /// summary.
    pub fn join(mut self) -> ServeSummary {
        self.acceptor.join().expect("acceptor thread panicked");
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        drop(self.root_guard.take());
        if let Some(raw) = obs::sink_from_env() {
            let path = obs::resolve_sink(&raw, "clara_serve.json");
            if let Err(e) = obs::RunReport::capture().write(&path) {
                eprintln!("warning: could not write report to {}: {e}", path.display());
            }
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::SeqCst),
            overloaded: self.shared.overloaded.load(Ordering::SeqCst),
            errors: self.shared.errors.load(Ordering::SeqCst),
        }
    }
}

// ---- acceptor ----------------------------------------------------------

fn accept_loop(listener: &TcpListener, s: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let s = Arc::clone(s);
                // Connection threads are deliberately detached: they park
                // on blocking reads for as long as the client keeps the
                // connection open, so joining them would hand shutdown
                // latency to the slowest client.
                std::thread::Builder::new()
                    .name("clara-serve-conn".to_string())
                    .spawn(move || handle_conn(stream, &s))
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        if term::signaled() && !s.stopped.load(Ordering::SeqCst) {
            s.begin_drain();
            s.await_quiesce();
            s.stopped.store(true, Ordering::SeqCst);
        }
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

// ---- connection threads ------------------------------------------------

fn handle_conn(stream: TcpStream, s: &Arc<Shared>) {
    // One write per response and no Nagle buffering: a request/response
    // protocol of small frames would otherwise serialize on ~40ms
    // delayed-ACK stalls.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let mut response = handle_line(&line, s);
        response.push('\n');
        if writer.write_all(response.as_bytes()).is_err() {
            return;
        }
        let _ = writer.flush();
        if s.stopped.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn handle_line(line: &str, s: &Arc<Shared>) -> String {
    let started = Instant::now();
    let env = match protocol::parse_request(line) {
        Ok(env) => env,
        Err(detail) => {
            s.errors.fetch_add(1, Ordering::SeqCst);
            return protocol::error_response(None, ErrorKind::BadRequest, &detail);
        }
    };
    let op_name = match &env.req {
        Request::Predict(_) => "predict",
        Request::Analyze(_) => "analyze",
        Request::Difftest { .. } => "difftest",
        Request::Place(_) => "place",
        Request::Stats => "stats",
        Request::Drain => "drain",
    };
    let response = dispatch(env, s);
    obs::volatile_histogram(&format!("serve.op.{op_name}.latency_us"))
        .observe(started.elapsed().as_micros() as f64);
    response
}

fn dispatch(env: Envelope, s: &Arc<Shared>) -> String {
    let Envelope { id, req } = env;
    match req {
        Request::Stats => stats_inline(id, s),
        Request::Drain => drain_inline(id, s),
        Request::Predict(w) | Request::Analyze(w)
            if !s.corpus.contains_key(&w.nf) =>
        {
            s.errors.fetch_add(1, Ordering::SeqCst);
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{}` is not in the corpus (see `clara list`)", w.nf),
            )
        }
        Request::Predict(w) | Request::Analyze(w) if s.backend_of(&w).is_none() => {
            s.errors.fetch_add(1, Ordering::SeqCst);
            let loaded: Vec<&str> = s.backends.iter().map(|b| b.name()).collect();
            protocol::error_response(
                id,
                ErrorKind::UnknownBackend,
                &format!(
                    "`{}` is not a warm backend (loaded: {})",
                    w.backend.as_deref().unwrap_or("?"),
                    loaded.join(", ")
                ),
            )
        }
        Request::Place(r) if r.nfs.iter().any(|nf| !s.corpus.contains_key(nf)) => {
            s.errors.fetch_add(1, Ordering::SeqCst);
            let unknown = r
                .nfs
                .iter()
                .find(|nf| !s.corpus.contains_key(*nf))
                .expect("guard found one");
            protocol::error_response(
                id,
                ErrorKind::UnknownNf,
                &format!("`{unknown}` is not in the corpus (see `clara list`)"),
            )
        }
        Request::Place(r)
            if r.backend
                .as_deref()
                .is_some_and(|n| !s.backends.iter().any(|b| b.name() == n)) =>
        {
            s.errors.fetch_add(1, Ordering::SeqCst);
            let loaded: Vec<&str> = s.backends.iter().map(|b| b.name()).collect();
            protocol::error_response(
                id,
                ErrorKind::UnknownBackend,
                &format!(
                    "`{}` is not a warm backend (loaded: {})",
                    r.backend.as_deref().unwrap_or("?"),
                    loaded.join(", ")
                ),
            )
        }
        Request::Predict(w) => enqueue_and_wait(id, JobKind::Predict(w), s),
        Request::Analyze(w) => enqueue_and_wait(id, JobKind::Analyze(w), s),
        Request::Difftest { seeds, start, pkts } => {
            enqueue_and_wait(id, JobKind::Difftest { seeds, start, pkts }, s)
        }
        Request::Place(r) => enqueue_and_wait(id, JobKind::Place(r), s),
    }
}

fn enqueue_and_wait(id: Option<u64>, kind: JobKind, s: &Arc<Shared>) -> String {
    if s.draining.load(Ordering::SeqCst) {
        s.errors.fetch_add(1, Ordering::SeqCst);
        return protocol::error_response(
            id,
            ErrorKind::Draining,
            "server is draining and no longer admits work",
        );
    }
    let (tx, rx) = mpsc::channel();
    {
        let mut q = s.queue.lock().expect("queue poisoned");
        if q.len() >= s.opts.queue_cap {
            drop(q);
            s.overloaded.fetch_add(1, Ordering::SeqCst);
            obs::volatile_counter("serve.overloaded").incr();
            return protocol::error_response(
                id,
                ErrorKind::Overloaded,
                &format!("queue at capacity ({})", s.opts.queue_cap),
            );
        }
        q.push_back(Job {
            id,
            kind,
            enqueued: Instant::now(),
            resp: tx,
        });
        s.queue_gauge(q.len());
    }
    s.cv.notify_one();
    // The worker pool always answers every admitted job — including
    // during drain, which finishes the queue before workers exit.
    rx.recv().unwrap_or_else(|_| {
        protocol::error_response(id, ErrorKind::Internal, "worker dropped the request")
    })
}

fn stats_inline(id: Option<u64>, s: &Arc<Shared>) -> String {
    let depth = s.queue.lock().expect("queue poisoned").len();
    let es = engine::EngineStats::snapshot();
    let fields = vec![
        ("queue_depth".to_string(), Value::UInt(depth as u64)),
        (
            "in_flight".to_string(),
            Value::UInt(s.in_flight.load(Ordering::SeqCst) as u64),
        ),
        (
            "served".to_string(),
            Value::UInt(s.served.load(Ordering::SeqCst)),
        ),
        (
            "overloaded".to_string(),
            Value::UInt(s.overloaded.load(Ordering::SeqCst)),
        ),
        (
            "draining".to_string(),
            Value::Bool(s.draining.load(Ordering::SeqCst)),
        ),
        (
            "workers".to_string(),
            Value::UInt(s.opts.workers.max(1) as u64),
        ),
        (
            "queue_cap".to_string(),
            Value::UInt(s.opts.queue_cap as u64),
        ),
        (
            "batch_max".to_string(),
            Value::UInt(s.opts.batch_max as u64),
        ),
        (
            "precision".to_string(),
            Value::Str(s.opts.precision.as_str().to_string()),
        ),
        (
            "backends".to_string(),
            Value::Seq(
                s.backends
                    .iter()
                    .map(|b| Value::Str(b.name().to_string()))
                    .collect(),
            ),
        ),
        ("compile_hits".to_string(), Value::UInt(es.compile_hits)),
        ("compile_misses".to_string(), Value::UInt(es.compile_misses)),
        ("profile_hits".to_string(), Value::UInt(es.profile_hits)),
        ("profile_misses".to_string(), Value::UInt(es.profile_misses)),
        ("disk_hits".to_string(), Value::UInt(es.disk_hits)),
        (
            "disk_recomputes".to_string(),
            Value::UInt(es.disk_recomputes),
        ),
    ];
    protocol::stats_response(id, fields)
}

fn drain_inline(id: Option<u64>, s: &Arc<Shared>) -> String {
    s.begin_drain();
    s.await_quiesce();
    let served = s.served.load(Ordering::SeqCst);
    // Open spans snapshot with zero length, so capturing while the root
    // span is still open is well-defined; the deterministic rendering
    // strips timestamps anyway.
    let report_json = obs::RunReport::capture().to_json_deterministic();
    let report = serde_json::parse_value(&report_json)
        .unwrap_or(Value::Str(report_json));
    let response = protocol::drain_response(id, served, report);
    s.stopped.store(true, Ordering::SeqCst);
    response
}

// ---- workers -----------------------------------------------------------

fn worker_loop(s: &Arc<Shared>) {
    loop {
        let batch = {
            let mut q = s.queue.lock().expect("queue poisoned");
            loop {
                if !q.is_empty() {
                    break;
                }
                if s.draining.load(Ordering::SeqCst) {
                    return;
                }
                q = s
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue poisoned")
                    .0;
            }
            let first = q.pop_front().expect("checked non-empty");
            let mut batch = vec![first];
            // Only predicts routed to the *same* device at the *same*
            // precision coalesce — one batch, one backend, one
            // inference path, one engine stage.
            if let JobKind::Predict(w0) = &batch[0].kind {
                let backend = s.effective_backend(w0).to_string();
                let precision = s.effective_precision(w0);
                while batch.len() < s.opts.batch_max.max(1) {
                    match q.front() {
                        Some(j)
                            if matches!(
                                &j.kind,
                                JobKind::Predict(w) if s.effective_backend(w) == backend
                                    && s.effective_precision(w) == precision
                            ) =>
                        {
                            batch.push(q.pop_front().expect("front exists"));
                        }
                        _ => break,
                    }
                }
            }
            s.in_flight.fetch_add(batch.len(), Ordering::SeqCst);
            s.queue_gauge(q.len());
            batch
        };
        run_batch(batch, s);
        s.cv.notify_all();
    }
}

/// Splits expired jobs out, answers them with `deadline`, and returns
/// the still-live remainder.
fn reap_expired(batch: Vec<Job>, s: &Arc<Shared>) -> Vec<Job> {
    let Some(deadline) = s.opts.deadline else {
        return batch;
    };
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.enqueued.elapsed() > deadline {
            s.errors.fetch_add(1, Ordering::SeqCst);
            let _ = job.resp.send(protocol::error_response(
                job.id,
                ErrorKind::Deadline,
                &format!("request exceeded its {deadline:?} budget while queued"),
            ));
            s.in_flight.fetch_sub(1, Ordering::SeqCst);
        } else {
            live.push(job);
        }
    }
    live
}

fn run_batch(batch: Vec<Job>, s: &Arc<Shared>) {
    let batch = reap_expired(batch, s);
    if batch.is_empty() {
        return;
    }
    let n = batch.len();
    obs::volatile_histogram("serve.batch.size").observe(n as f64);
    if n > 1 || matches!(batch[0].kind, JobKind::Predict(_)) {
        run_predict_batch(batch, s);
    } else {
        let job = batch.into_iter().next().expect("checked non-empty");
        run_single(job, s);
        s.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_predict_batch(batch: Vec<Job>, s: &Arc<Shared>) {
    let n = batch.len();
    obs::counter("serve.ops.predict").add(n as u64);
    let specs: Vec<&WorkSpec> = batch
        .iter()
        .map(|j| match &j.kind {
            JobKind::Predict(w) => w,
            _ => unreachable!("predict batches contain only predict jobs"),
        })
        .collect();
    let traces: Vec<_> = specs.iter().map(|w| w.trace()).collect();
    let items: Vec<(&Module, &trafgen::Trace)> = specs
        .iter()
        .zip(&traces)
        .map(|(w, t)| {
            (
                s.corpus.get(&w.nf).expect("validated at admission"),
                t,
            )
        })
        .collect();
    // Coalescing admits only same-backend, same-precision predicts, so
    // the whole batch routes to the first spec's device and path.
    let backend = s.backend_of(specs[0]).expect("validated at admission");
    let precision = s.effective_precision(specs[0]);
    let results = {
        let span = obs::span_under(s.root, "serve-predict-batch");
        let _ctx = obs::attach(span.handle());
        s.clara.predict_batch_on_prec(&items, backend, precision)
    };
    for ((job, spec), result) in batch.iter().zip(&specs).zip(results) {
        let response = match result {
            Ok(p) => {
                s.served.fetch_add(1, Ordering::SeqCst);
                protocol::predict_response(job.id, &spec.nf, backend.name(), precision, &p)
            }
            Err(e) => {
                s.errors.fetch_add(1, Ordering::SeqCst);
                protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
            }
        };
        let _ = job.resp.send(response);
    }
    s.in_flight.fetch_sub(n, Ordering::SeqCst);
}

fn run_single(job: Job, s: &Arc<Shared>) {
    let response = match &job.kind {
        JobKind::Predict(_) => unreachable!("predict jobs go through the batch path"),
        JobKind::Analyze(w) => {
            obs::counter("serve.ops.analyze").incr();
            let module = s.corpus.get(&w.nf).expect("validated at admission");
            let backend = s.backend_of(w).expect("validated at admission");
            let precision = s.effective_precision(w);
            let trace = w.trace();
            let outcome = {
                let span = obs::span_under(s.root, "serve-analyze");
                let _ctx = obs::attach(span.handle());
                s.clara.analyze_on_prec(module, &trace, backend, precision)
            };
            match outcome {
                Ok(ins) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    protocol::analyze_response(
                        job.id,
                        &w.nf,
                        backend.name(),
                        precision,
                        module,
                        &ins,
                    )
                }
                Err(e) => {
                    s.errors.fetch_add(1, Ordering::SeqCst);
                    protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
                }
            }
        }
        JobKind::Place(r) => {
            obs::counter("serve.ops.place").incr();
            let backend = match &r.backend {
                None => s.backends[0],
                Some(name) => s
                    .backends
                    .iter()
                    .copied()
                    .find(|b| b.name() == name.as_str())
                    .expect("validated at admission"),
            };
            let precision = r.precision.unwrap_or(s.opts.precision);
            let outcome = {
                let span = obs::span_under(s.root, "serve-place");
                let _ctx = obs::attach(span.handle());
                s.clara.place_on_prec(r, backend, precision)
            };
            match outcome {
                Ok(plan) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    protocol::place_response(job.id, &plan)
                }
                Err(e) => {
                    s.errors.fetch_add(1, Ordering::SeqCst);
                    let kind = match &e {
                        ClaraError::Placement {
                            kind: PlacementFailure::Infeasible,
                            ..
                        } => ErrorKind::Infeasible,
                        ClaraError::Placement {
                            kind: PlacementFailure::UnknownNf,
                            ..
                        } => ErrorKind::UnknownNf,
                        _ => ErrorKind::Internal,
                    };
                    protocol::error_response(job.id, kind, &e.to_string())
                }
            }
        }
        JobKind::Difftest { seeds, start, pkts } => {
            obs::counter("serve.ops.difftest").incr();
            let cfg = DifftestConfig {
                seeds: *seeds,
                start_seed: *start,
                pkts: *pkts,
                shrink: false,
                artifact_dir: None,
                inject: None,
                ..DifftestConfig::default()
            };
            let outcome = {
                let span = obs::span_under(s.root, "serve-difftest");
                let _ctx = obs::attach(span.handle());
                difftest::run(&cfg)
            };
            match outcome {
                Ok(report) => {
                    s.served.fetch_add(1, Ordering::SeqCst);
                    protocol::difftest_response(
                        job.id,
                        report.checked as u64,
                        report.divergent.len() as u64,
                        report.engine_failures as u64,
                    )
                }
                Err(e) => {
                    s.errors.fetch_add(1, Ordering::SeqCst);
                    protocol::error_response(job.id, ErrorKind::Internal, &e.to_string())
                }
            }
        }
    };
    let _ = job.resp.send(response);
}

// ---- SIGTERM -----------------------------------------------------------

#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn install() {
        const SIGTERM: i32 = 15;
        unsafe {
            let _ = signal(SIGTERM, on_term);
        }
    }

    pub fn signaled() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub fn install() {}

    pub fn signaled() -> bool {
        false
    }
}

/// Installs a SIGTERM handler that triggers a graceful drain (the
/// acceptor polls it). No-op on non-unix platforms.
pub fn install_sigterm_drain() {
    term::install();
}
