//! The tenant registry: who may submit work, under which defaults, and
//! how tenants share the machine.
//!
//! λ-NIC packs thousands of isolated lambdas onto one SmartNIC; this
//! module is the daemon-side half of that idea. Every request runs as a
//! tenant — the always-present [`DEFAULT_TENANT`] when it names none —
//! and `op:"register"` declares the rest: the tenant's NF set, its
//! default device backend and inference precision, and its admission
//! quota (the most jobs it may have queued at once).
//!
//! Tenants map onto **worker shards**: tenant *k* (in registration
//! order) is pinned to shard `k % workers`, and worker *i* services
//! shard `i % min(workers, tenants)`. With one tenant every worker
//! serves it (full utilization); as tenants register they spread across
//! workers, so one tenant's heavy jobs cannot occupy the whole pool.
//! The mapping is a pure function of registration order, so it never
//! moves a tenant (and its queued jobs) between shards after the fact.
//!
//! Registration also profiles the tenant's NF set (the heaviest NF
//! stands in, see [`clara_core::representative_profile`]) so the server
//! can answer "tenant A loses X% next to tenant B" from the paper's
//! §4.5 colocation model — surfaced per tenant pair in `stats` and the
//! run report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use clara_core::{coloc, NicConfig, PairInterference, PortConfig, Precision, WorkloadProfile};

/// The tenant every unattributed request runs as.
pub const DEFAULT_TENANT: &str = "default";

/// Per-tenant lifetime counters. Summed over all tenants these
/// reconcile exactly with the server's [`crate::ServeSummary`]: every
/// global tally is attributed to precisely one tenant (unattributable
/// failures — e.g. parse errors — count against [`DEFAULT_TENANT`]).
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Work requests answered successfully.
    pub served: AtomicU64,
    /// Rejections by the shared queue's global capacity.
    pub overloaded: AtomicU64,
    /// Rejections by this tenant's own admission quota.
    pub quota_exceeded: AtomicU64,
    /// Requests that failed for any other reason.
    pub errors: AtomicU64,
}

impl TenantStats {
    /// Relaxed snapshot of (served, overloaded, quota_exceeded, errors).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.served.load(Ordering::SeqCst),
            self.overloaded.load(Ordering::SeqCst),
            self.quota_exceeded.load(Ordering::SeqCst),
            self.errors.load(Ordering::SeqCst),
        )
    }
}

/// One registered tenant. Configuration is immutable per registration
/// (re-registering swaps the whole record); the shard pin and counters
/// survive re-registration.
pub struct Tenant {
    /// Registry key.
    pub name: String,
    /// Registered NF set, sorted; empty admits the whole corpus.
    pub nfs: Vec<String>,
    /// Default device backend for requests that name none.
    pub backend: Option<String>,
    /// Default inference precision for requests that name none.
    pub precision: Option<Precision>,
    /// Most jobs this tenant may have queued at once.
    pub quota: usize,
    /// Worker shard this tenant's queue is serviced by.
    pub shard: usize,
    /// Representative workload profile of the NF set (the heaviest
    /// registered NF); `None` when the set is empty (whole corpus).
    pub profile: Option<WorkloadProfile>,
    /// Lifetime counters (shared across re-registrations).
    pub stats: Arc<TenantStats>,
}

/// Interference prediction for one ordered tenant pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantColoc {
    /// The tenant losing throughput.
    pub a: String,
    /// The neighbour it is colocated with.
    pub b: String,
    /// Predicted pairwise loss.
    pub interference: PairInterference,
}

/// The tenant registry: name → tenant, plus the shard bookkeeping.
pub struct Registry {
    workers: usize,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// Creates a registry with the always-present [`DEFAULT_TENANT`]
    /// (whole corpus, server defaults, quota = the full queue capacity).
    pub fn new(workers: usize, default_quota: usize) -> Registry {
        let workers = workers.max(1);
        let mut map = BTreeMap::new();
        map.insert(
            DEFAULT_TENANT.to_string(),
            Arc::new(Tenant {
                name: DEFAULT_TENANT.to_string(),
                nfs: Vec::new(),
                backend: None,
                precision: None,
                quota: default_quota,
                shard: 0,
                profile: None,
                stats: Arc::new(TenantStats::default()),
            }),
        );
        Registry {
            workers,
            tenants: Mutex::new(map),
        }
    }

    /// Resolves a request's tenant: the named one, or the default when
    /// the request names none. `None` means the name is not registered.
    pub fn resolve(&self, name: Option<&str>) -> Option<Arc<Tenant>> {
        let map = self.tenants.lock().expect("registry poisoned");
        map.get(name.unwrap_or(DEFAULT_TENANT)).cloned()
    }

    /// The always-present default tenant.
    pub fn default_tenant(&self) -> Arc<Tenant> {
        self.resolve(None).expect("default tenant is always present")
    }

    /// Registers (or re-registers) a tenant. The shard pin and lifetime
    /// counters of an existing registration are preserved; everything
    /// else is replaced. Returns the new record.
    pub fn register(
        &self,
        name: &str,
        mut nfs: Vec<String>,
        backend: Option<String>,
        precision: Option<Precision>,
        quota: usize,
        profile: Option<WorkloadProfile>,
    ) -> Arc<Tenant> {
        nfs.sort();
        nfs.dedup();
        let mut map = self.tenants.lock().expect("registry poisoned");
        let (shard, stats) = match map.get(name) {
            Some(old) => (old.shard, Arc::clone(&old.stats)),
            None => (map.len() % self.workers, Arc::new(TenantStats::default())),
        };
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            nfs,
            backend,
            precision,
            quota,
            shard,
            profile,
            stats,
        });
        map.insert(name.to_string(), Arc::clone(&tenant));
        tenant
    }

    /// How many shards are live: one per tenant, capped at the worker
    /// count. Worker *i* services shard `i % shard_count()`.
    pub fn shard_count(&self) -> usize {
        let map = self.tenants.lock().expect("registry poisoned");
        map.len().min(self.workers).max(1)
    }

    /// Name-sorted snapshot of every registered tenant.
    pub fn snapshot(&self) -> Vec<Arc<Tenant>> {
        let map = self.tenants.lock().expect("registry poisoned");
        map.values().cloned().collect()
    }

    /// Colocation interference predictions for every unordered pair of
    /// tenants that registered an NF set, both directions reported
    /// ("a loses X% next to b"), name-sorted and deterministic.
    pub fn coloc_pairs(&self, nic: &NicConfig) -> Vec<TenantColoc> {
        let port = PortConfig::naive();
        let tenants: Vec<Arc<Tenant>> = self
            .snapshot()
            .into_iter()
            .filter(|t| t.profile.is_some())
            .collect();
        let mut out = Vec::new();
        for (i, a) in tenants.iter().enumerate() {
            for b in tenants.iter().skip(i + 1) {
                let pa = a.profile.as_ref().expect("filtered on profile");
                let pb = b.profile.as_ref().expect("filtered on profile");
                let interference = coloc::pair_interference(pa, pb, nic, &port);
                out.push(TenantColoc {
                    a: a.name.clone(),
                    b: b.name.clone(),
                    interference,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tenant_is_always_present_and_sharded_to_zero() {
        let reg = Registry::new(4, 64);
        let t = reg.resolve(None).expect("default present");
        assert_eq!(t.name, DEFAULT_TENANT);
        assert_eq!(t.shard, 0);
        assert_eq!(t.quota, 64);
        assert!(reg.resolve(Some("ghost")).is_none());
        assert_eq!(reg.shard_count(), 1);
    }

    #[test]
    fn registration_order_pins_shards_and_grows_shard_count() {
        let reg = Registry::new(2, 8);
        let a = reg.register("a", vec![], None, None, 4, None);
        let b = reg.register("b", vec![], None, None, 4, None);
        // default is index 0, so a → 1 % 2, b → 2 % 2.
        assert_eq!(a.shard, 1);
        assert_eq!(b.shard, 0);
        // Shards cap at the worker count.
        assert_eq!(reg.shard_count(), 2);
        // Re-registration keeps the shard pin and the counters.
        a.stats.served.fetch_add(3, Ordering::SeqCst);
        let a2 = reg.register("a", vec!["nat".into()], None, Some(Precision::Q16), 9, None);
        assert_eq!(a2.shard, 1);
        assert_eq!(a2.quota, 9);
        assert_eq!(a2.stats.served.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn coloc_pairs_cover_profiled_tenants_both_ways() {
        let reg = Registry::new(2, 8);
        let nic = NicConfig::default();
        let profile_of = |name: &str| {
            let module = click_model::extended_corpus()
                .into_iter()
                .find(|e| e.name() == name)
                .expect("corpus element")
                .module;
            clara_core::representative_profile(&[&module], &nic)
        };
        reg.register("a", vec!["cmsketch".into()], None, None, 4, profile_of("cmsketch"));
        reg.register("b", vec!["iplookup".into()], None, None, 4, profile_of("iplookup"));
        reg.register("noprofile", vec![], None, None, 4, None);
        let pairs = reg.coloc_pairs(&nic);
        assert_eq!(pairs.len(), 1, "one profiled pair");
        let p = &pairs[0];
        assert_eq!((p.a.as_str(), p.b.as_str()), ("a", "b"));
        assert!(p.interference.a_loss_pct >= 0.0 && p.interference.a_loss_pct <= 100.0);
        assert!(p.interference.b_loss_pct >= 0.0 && p.interference.b_loss_pct <= 100.0);
    }
}
