//! The versioned JSON-lines wire protocol.
//!
//! Every request and response is one JSON object per line. Requests
//! carry `{"v":1,"op":...}` plus op-specific fields and an optional
//! client-chosen `id` that is echoed back verbatim on the response:
//!
//! ```json
//! {"v":1,"op":"predict","nf":"cmsketch","packets":400,"seed":7}
//! {"v":1,"op":"analyze","nf":"iplookup","small_flows":true}
//! {"v":1,"op":"predict","nf":"nat","backend":"dpu-offpath"}
//! {"v":1,"op":"place","nfs":["firewall","mazunat"],"objective":"host-cores"}
//! {"v":1,"op":"place","nfs":["mazunat"],"replay":"shift","epochs":6}
//! {"v":1,"op":"difftest","seeds":20,"start":100,"packets":64}
//! {"v":1,"op":"stats"}
//! {"v":1,"op":"drain"}
//! ```
//!
//! `op:"place"` carries a typed [`PlacementRequest`]: `nfs` is the NF
//! chain (array of corpus names), `objective` is `"host-cores"`
//! (default) or `"throughput"`, and the optional `replay` /`epochs` /
//! `drift_threshold` fields turn the one-shot plan into a drift-driven
//! replay over a builtin `trafgen` schedule. The response is the full
//! placement plan — per-NF ILP mapping with objective value, the greedy
//! fallback's plan and delta, the chain split, and (in replay mode) the
//! migration report. Like every other op, rendering is a pure function
//! of the plan, so a served `op:"place"` response is byte-identical to
//! the one-shot `clara place` output for the same request; an
//! infeasible instance is rejected with the typed `infeasible` error
//! kind (the one addition to the otherwise closed error-kind set).
//!
//! `backend` selects which warm device model serves the request; when
//! omitted the server's default (first configured) backend is used, and
//! a name the server does not hold is rejected with `unknown_backend`
//! before the request is queued. `precision` (`"f64"` or `"q16"`)
//! selects the inference path per request; when omitted the server's
//! configured default applies, and an unknown precision string is a
//! `bad_request`. Successful `predict`/`analyze` responses echo the
//! precision that actually served them.
//!
//! # Tenancy
//!
//! Every request may carry a top-level `"tenant"` field naming the
//! tenant it runs as; requests without one run as the always-present
//! `default` tenant. `op:"register"` declares (or updates) a tenant:
//!
//! ```json
//! {"v":1,"op":"register","tenant":"team-a","nfs":["cmsketch","nat"],
//!  "backend":"dpu-offpath","precision":"q16","quota":8}
//! {"v":1,"op":"predict","tenant":"team-a","nf":"cmsketch"}
//! ```
//!
//! Registration pins the tenant's NF set (an empty or omitted `nfs`
//! admits the whole corpus), its default device backend and inference
//! precision (applied to requests that name none), and its admission
//! `quota` — the most jobs the tenant may have queued at once. A work
//! request naming an unregistered tenant is rejected with the typed
//! `unknown_tenant` kind; a registered tenant that fills its quota gets
//! `quota_exceeded` while the shared queue keeps admitting everyone
//! else (the global capacity rejection stays `overloaded`).
//!
//! Successful responses are `{"v":1,"ok":true,"op":...}` plus payload;
//! failures are `{"v":1,"ok":false,"error":<kind>,"detail":...}` where
//! `<kind>` is one of the [`ErrorKind`] strings. `overloaded` is the
//! admission-control rejection (bounded queue at capacity) — it is the
//! *expected* backpressure signal, not a server fault — and `draining`
//! is returned for work submitted after a drain began.
//!
//! Response rendering is a pure function of the result data, so a
//! response served through the daemon's queue and batching machinery is
//! byte-identical to one rendered from the equivalent one-shot facade
//! call (pinned by `tests/serve.rs`).

use clara_core::{Insights, Objective, PlacementPlan, PlacementRequest, Precision, Prediction};
use nf_ir::Module;
use serde::Value;
use trafgen::{Trace, WorkloadSpec};

/// Protocol version accepted and emitted by this build.
pub const PROTOCOL_VERSION: u64 = 1;

/// The workload half of a `predict`/`analyze` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkSpec {
    /// Corpus element name (`clara list`).
    pub nf: String,
    /// Packets to generate for the profiling trace.
    pub packets: usize,
    /// Trace RNG seed.
    pub seed: u64,
    /// Small-flow workload instead of the default large-flow one.
    pub small_flows: bool,
    /// Device backend to serve this request from (None: the server's
    /// default backend).
    pub backend: Option<String>,
    /// Inference precision for this request (None: the server's
    /// configured default).
    pub precision: Option<Precision>,
}

impl WorkSpec {
    /// Generates the deterministic trace this spec describes (the same
    /// mapping the one-shot `clara analyze` CLI uses).
    pub fn trace(&self) -> Trace {
        let spec = if self.small_flows {
            WorkloadSpec::small_flows().with_flows(8192)
        } else {
            WorkloadSpec::large_flows()
        };
        Trace::generate(&spec, self.packets, self.seed)
    }
}

/// What `op:"register"` declares about a tenant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegisterSpec {
    /// The tenant's NF set; empty admits the whole corpus.
    pub nfs: Vec<String>,
    /// Default device backend for the tenant's requests (None: the
    /// server's default backend).
    pub backend: Option<String>,
    /// Default inference precision for the tenant's requests (None: the
    /// server's configured default).
    pub precision: Option<Precision>,
    /// Admission quota: most jobs the tenant may have queued at once
    /// (None: the full queue capacity).
    pub quota: Option<u64>,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Performance-parameter prediction (batchable).
    Predict(WorkSpec),
    /// Full insight bundle.
    Analyze(WorkSpec),
    /// Traffic-aware placement planning for an NF chain.
    Place(PlacementRequest),
    /// Differential-oracle sweep over synthesized seeds.
    Difftest {
        /// Seeds to sweep.
        seeds: u64,
        /// First seed.
        start: u64,
        /// Packets per seed.
        pkts: usize,
    },
    /// Tenant registration (the envelope's `tenant` names it).
    Register(RegisterSpec),
    /// Live server/engine statistics.
    Stats,
    /// Graceful shutdown: stop admission, finish in flight, report.
    Drain,
}

/// A request plus its optional client correlation id and tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed back verbatim on the response.
    pub id: Option<u64>,
    /// The tenant the request runs as (None: the `default` tenant).
    pub tenant: Option<String>,
    /// The operation.
    pub req: Request,
}

/// Typed error kinds a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bounded queue at capacity; retry later (backpressure, not fault).
    Overloaded,
    /// Malformed or unsupported request.
    BadRequest,
    /// `nf` does not name a corpus element.
    UnknownNf,
    /// The request's deadline expired before (or while) it ran.
    Deadline,
    /// The server is draining and no longer admits work.
    Draining,
    /// `backend` does not name a device backend the server holds.
    UnknownBackend,
    /// `tenant` does not name a registered tenant.
    UnknownTenant,
    /// The tenant's admission quota is full; the shared queue keeps
    /// serving everyone else (per-tenant backpressure, not a fault).
    QuotaExceeded,
    /// A placement request's ILP instance has no feasible assignment on
    /// the chosen device (`op:"place"` only).
    Infeasible,
    /// The request ran and failed (facade error, degraded engine task).
    Internal,
}

impl ErrorKind {
    /// The wire string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownNf => "unknown_nf",
            ErrorKind::Deadline => "deadline",
            ErrorKind::Draining => "draining",
            ErrorKind::UnknownBackend => "unknown_backend",
            ErrorKind::UnknownTenant => "unknown_tenant",
            ErrorKind::QuotaExceeded => "quota_exceeded",
            ErrorKind::Infeasible => "infeasible",
            ErrorKind::Internal => "internal",
        }
    }
}

// ---- parsing -----------------------------------------------------------

fn get_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(Value::UInt(u)) => Ok(Some(*u)),
        Some(other) => Err(format!("`{key}` must be a non-negative integer, got {}", other.kind())),
    }
}

fn get_bool(v: &Value, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("`{key}` must be a boolean, got {}", other.kind())),
    }
}

fn get_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) if !s.is_empty() => Ok(Some(s.clone())),
        Some(other) => {
            Err(format!("`{key}` must be a non-empty string, got {}", other.kind()))
        }
    }
}

fn get_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Float(f)) if f.is_finite() && *f >= 0.0 => Ok(Some(*f)),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as f64)),
        Some(Value::UInt(u)) => Ok(Some(*u as f64)),
        Some(other) => Err(format!(
            "`{key}` must be a non-negative number, got {}",
            other.kind()
        )),
    }
}

fn work_spec(v: &Value) -> Result<WorkSpec, String> {
    let nf = match v.get("nf") {
        Some(Value::Str(s)) if !s.is_empty() => s.clone(),
        Some(other) => return Err(format!("`nf` must be a non-empty string, got {}", other.kind())),
        None => return Err("missing `nf`".to_string()),
    };
    Ok(WorkSpec {
        nf,
        packets: get_u64(v, "packets")?.unwrap_or(400) as usize,
        seed: get_u64(v, "seed")?.unwrap_or(42),
        small_flows: get_bool(v, "small_flows")?.unwrap_or(false),
        backend: get_str(v, "backend")?,
        precision: get_str(v, "precision")?
            .map(|s| Precision::parse(&s))
            .transpose()?,
    })
}

fn place_request(v: &Value) -> Result<PlacementRequest, String> {
    let nfs: Vec<String> = match v.get("nfs") {
        Some(Value::Seq(items)) if !items.is_empty() => items
            .iter()
            .map(|item| match item {
                Value::Str(s) if !s.is_empty() => Ok(s.clone()),
                other => Err(format!(
                    "`nfs` entries must be non-empty strings, got {}",
                    other.kind()
                )),
            })
            .collect::<Result<_, _>>()?,
        Some(Value::Seq(_)) => return Err("`nfs` must not be empty".to_string()),
        Some(other) => {
            return Err(format!("`nfs` must be an array of strings, got {}", other.kind()))
        }
        None => return Err("missing `nfs`".to_string()),
    };
    let mut req = PlacementRequest::new(nfs);
    if let Some(p) = get_u64(v, "packets")? {
        req.packets = p as usize;
    }
    if let Some(s) = get_u64(v, "seed")? {
        req.seed = s;
    }
    if let Some(b) = get_bool(v, "small_flows")? {
        req.small_flows = b;
    }
    req.backend = get_str(v, "backend")?;
    req.precision = get_str(v, "precision")?
        .map(|s| Precision::parse(&s))
        .transpose()?;
    if let Some(o) = get_str(v, "objective")? {
        req.objective = Objective::parse(&o)
            .ok_or_else(|| format!("unknown objective `{o}` (throughput, host-cores)"))?;
    }
    req.replay = get_str(v, "replay")?;
    if let Some(e) = get_u64(v, "epochs")? {
        req.epochs = e as usize;
    }
    if let Some(t) = get_f64(v, "drift_threshold")? {
        req.drift_threshold = t;
    }
    Ok(req)
}

fn register_spec(v: &Value) -> Result<RegisterSpec, String> {
    let nfs: Vec<String> = match v.get("nfs") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Seq(items)) => items
            .iter()
            .map(|item| match item {
                Value::Str(s) if !s.is_empty() => Ok(s.clone()),
                other => Err(format!(
                    "`nfs` entries must be non-empty strings, got {}",
                    other.kind()
                )),
            })
            .collect::<Result<_, _>>()?,
        Some(other) => {
            return Err(format!("`nfs` must be an array of strings, got {}", other.kind()))
        }
    };
    Ok(RegisterSpec {
        nfs,
        backend: get_str(v, "backend")?,
        precision: get_str(v, "precision")?
            .map(|s| Precision::parse(&s))
            .transpose()?,
        quota: get_u64(v, "quota")?,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found
/// (callers wrap it in a `bad_request` response).
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let v = serde_json::parse_value(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = get_u64(&v, "v")?.ok_or("missing protocol version `v`")?;
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "unsupported protocol version {version} (this server speaks v{PROTOCOL_VERSION})"
        ));
    }
    let id = get_u64(&v, "id")?;
    let tenant = get_str(&v, "tenant")?;
    let req = match v.get("op") {
        Some(Value::Str(op)) => match op.as_str() {
            "predict" => Request::Predict(work_spec(&v)?),
            "analyze" => Request::Analyze(work_spec(&v)?),
            "place" => Request::Place(place_request(&v)?),
            "difftest" => Request::Difftest {
                seeds: get_u64(&v, "seeds")?.unwrap_or(10),
                start: get_u64(&v, "start")?.unwrap_or(0),
                pkts: get_u64(&v, "packets")?.unwrap_or(64) as usize,
            },
            "register" => Request::Register(register_spec(&v)?),
            "stats" => Request::Stats,
            "drain" => Request::Drain,
            other => return Err(format!("unknown op `{other}`")),
        },
        Some(other) => return Err(format!("`op` must be a string, got {}", other.kind())),
        None => return Err("missing `op`".to_string()),
    };
    Ok(Envelope { id, tenant, req })
}

// ---- rendering ---------------------------------------------------------

fn head(id: Option<u64>, ok: bool) -> Vec<(String, Value)> {
    let mut m = vec![("v".to_string(), Value::UInt(PROTOCOL_VERSION))];
    if let Some(id) = id {
        m.push(("id".to_string(), Value::UInt(id)));
    }
    m.push(("ok".to_string(), Value::Bool(ok)));
    m
}

fn finish(m: Vec<(String, Value)>) -> String {
    serde_json::to_string(&Value::Map(m)).expect("value rendering is infallible")
}

/// Renders a request line (the client side of the protocol) for the
/// `default` tenant.
pub fn render_request(id: Option<u64>, req: &Request) -> String {
    render_request_as(id, None, req)
}

/// Renders a request line running as the named tenant (None: `default`).
pub fn render_request_as(id: Option<u64>, tenant: Option<&str>, req: &Request) -> String {
    let mut m = vec![("v".to_string(), Value::UInt(PROTOCOL_VERSION))];
    if let Some(id) = id {
        m.push(("id".to_string(), Value::UInt(id)));
    }
    if let Some(t) = tenant {
        m.push(("tenant".to_string(), Value::Str(t.to_string())));
    }
    let op = |name: &str| ("op".to_string(), Value::Str(name.to_string()));
    match req {
        Request::Predict(w) | Request::Analyze(w) => {
            m.push(op(if matches!(req, Request::Predict(_)) {
                "predict"
            } else {
                "analyze"
            }));
            m.push(("nf".to_string(), Value::Str(w.nf.clone())));
            m.push(("packets".to_string(), Value::UInt(w.packets as u64)));
            m.push(("seed".to_string(), Value::UInt(w.seed)));
            m.push(("small_flows".to_string(), Value::Bool(w.small_flows)));
            if let Some(b) = &w.backend {
                m.push(("backend".to_string(), Value::Str(b.clone())));
            }
            if let Some(p) = w.precision {
                m.push(("precision".to_string(), Value::Str(p.as_str().to_string())));
            }
        }
        Request::Place(r) => {
            m.push(op("place"));
            m.push((
                "nfs".to_string(),
                Value::Seq(r.nfs.iter().map(|n| Value::Str(n.clone())).collect()),
            ));
            m.push(("packets".to_string(), Value::UInt(r.packets as u64)));
            m.push(("seed".to_string(), Value::UInt(r.seed)));
            m.push(("small_flows".to_string(), Value::Bool(r.small_flows)));
            if let Some(b) = &r.backend {
                m.push(("backend".to_string(), Value::Str(b.clone())));
            }
            if let Some(p) = r.precision {
                m.push(("precision".to_string(), Value::Str(p.as_str().to_string())));
            }
            m.push((
                "objective".to_string(),
                Value::Str(r.objective.as_str().to_string()),
            ));
            if let Some(s) = &r.replay {
                m.push(("replay".to_string(), Value::Str(s.clone())));
            }
            m.push(("epochs".to_string(), Value::UInt(r.epochs as u64)));
            m.push(("drift_threshold".to_string(), Value::Float(r.drift_threshold)));
        }
        Request::Difftest { seeds, start, pkts } => {
            m.push(op("difftest"));
            m.push(("seeds".to_string(), Value::UInt(*seeds)));
            m.push(("start".to_string(), Value::UInt(*start)));
            m.push(("packets".to_string(), Value::UInt(*pkts as u64)));
        }
        Request::Register(r) => {
            m.push(op("register"));
            m.push((
                "nfs".to_string(),
                Value::Seq(r.nfs.iter().map(|n| Value::Str(n.clone())).collect()),
            ));
            if let Some(b) = &r.backend {
                m.push(("backend".to_string(), Value::Str(b.clone())));
            }
            if let Some(p) = r.precision {
                m.push(("precision".to_string(), Value::Str(p.as_str().to_string())));
            }
            if let Some(q) = r.quota {
                m.push(("quota".to_string(), Value::UInt(q)));
            }
        }
        Request::Stats => m.push(op("stats")),
        Request::Drain => m.push(op("drain")),
    }
    finish(m)
}

/// Renders a successful `register` response: the tenant's effective
/// configuration as the server admitted it.
pub fn register_response(
    id: Option<u64>,
    tenant: &str,
    shard: usize,
    quota: usize,
    nfs: &[String],
) -> String {
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("register".to_string())));
    m.push(("tenant".to_string(), Value::Str(tenant.to_string())));
    m.push(("shard".to_string(), Value::UInt(shard as u64)));
    m.push(("quota".to_string(), Value::UInt(quota as u64)));
    m.push((
        "nfs".to_string(),
        Value::Seq(nfs.iter().map(|n| Value::Str(n.clone())).collect()),
    ));
    finish(m)
}

/// Renders a successful `predict` response, tagged with the device
/// backend and inference precision that produced it.
pub fn predict_response(
    id: Option<u64>,
    nf: &str,
    backend: &str,
    precision: Precision,
    p: &Prediction,
) -> String {
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("predict".to_string())));
    m.push(("nf".to_string(), Value::Str(nf.to_string())));
    m.push(("backend".to_string(), Value::Str(backend.to_string())));
    m.push((
        "precision".to_string(),
        Value::Str(precision.as_str().to_string()),
    ));
    m.push((
        "predicted_compute".to_string(),
        Value::Float(p.predicted_compute),
    ));
    m.push(("counted_mem".to_string(), Value::UInt(u64::from(p.counted_mem))));
    m.push((
        "suggested_cores".to_string(),
        Value::UInt(u64::from(p.suggested_cores)),
    ));
    m.push((
        "predicted_throughput_mpps".to_string(),
        Value::Float(p.predicted_throughput_mpps),
    ));
    m.push((
        "predicted_latency_us".to_string(),
        Value::Float(p.predicted_latency_us),
    ));
    finish(m)
}

/// Renders a successful `analyze` response (names resolved against the
/// analyzed module), tagged with the device backend and inference
/// precision that produced it.
pub fn analyze_response(
    id: Option<u64>,
    nf: &str,
    backend: &str,
    precision: Precision,
    module: &Module,
    ins: &Insights,
) -> String {
    let gname = |g: nf_ir::GlobalId| {
        Value::Str(module.global(g).map_or("?", |d| d.name.as_str()).to_string())
    };
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("analyze".to_string())));
    m.push(("nf".to_string(), Value::Str(nf.to_string())));
    m.push(("backend".to_string(), Value::Str(backend.to_string())));
    m.push((
        "precision".to_string(),
        Value::Str(precision.as_str().to_string()),
    ));
    m.push((
        "predicted_compute".to_string(),
        Value::Float(ins.predicted_compute),
    ));
    m.push((
        "counted_mem".to_string(),
        Value::UInt(u64::from(ins.counted_mem)),
    ));
    m.push((
        "mem_count_accuracy".to_string(),
        Value::Float(ins.mem_count_accuracy),
    ));
    m.push((
        "accel".to_string(),
        match &ins.accel {
            None => Value::Null,
            Some((class, region)) => Value::Map(vec![
                ("class".to_string(), Value::Str(class.name().to_string())),
                (
                    "blocks".to_string(),
                    Value::Seq(
                        region
                            .iter()
                            .map(|b| Value::UInt(u64::from(b.0)))
                            .collect(),
                    ),
                ),
            ]),
        },
    ));
    m.push((
        "suggested_cores".to_string(),
        Value::UInt(u64::from(ins.suggested_cores)),
    ));
    m.push((
        "placement".to_string(),
        Value::Seq(
            ins.placement
                .iter()
                .map(|(&g, l)| {
                    Value::Seq(vec![gname(g), Value::Str(l.name().to_string())])
                })
                .collect(),
        ),
    ));
    m.push((
        "coalesce".to_string(),
        Value::Seq(
            ins.coalesce
                .clusters
                .iter()
                .map(|cl| Value::Seq(cl.iter().map(|&(g, _)| gname(g)).collect()))
                .collect(),
        ),
    ));
    finish(m)
}

/// Renders a successful `place` response: the full placement plan as
/// deterministic JSON. A pure function of the plan — the byte-identity
/// contract between `clara place` and serve `op:"place"` rests on both
/// calling this.
pub fn place_response(id: Option<u64>, plan: &PlacementPlan) -> String {
    let placement_seq = |pairs: &[(String, String)]| {
        Value::Seq(
            pairs
                .iter()
                .map(|(g, l)| {
                    Value::Seq(vec![Value::Str(g.clone()), Value::Str(l.clone())])
                })
                .collect(),
        )
    };
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("place".to_string())));
    m.push(("backend".to_string(), Value::Str(plan.backend.clone())));
    m.push((
        "precision".to_string(),
        Value::Str(plan.precision.as_str().to_string()),
    ));
    m.push((
        "objective".to_string(),
        Value::Str(plan.objective.as_str().to_string()),
    ));
    m.push((
        "nfs".to_string(),
        Value::Seq(
            plan.nfs
                .iter()
                .map(|nf| {
                    let mut e = vec![
                        ("nf".to_string(), Value::Str(nf.nf.clone())),
                        ("placement".to_string(), placement_seq(&nf.named_placement)),
                        ("cost".to_string(), Value::Float(nf.solve.cost)),
                        ("objective".to_string(), Value::Float(nf.solve.objective)),
                    ];
                    match (&nf.solve.greedy, &nf.named_greedy_placement) {
                        (Some(g), Some(named)) => {
                            e.push((
                                "greedy".to_string(),
                                Value::Map(vec![
                                    ("placement".to_string(), placement_seq(named)),
                                    ("cost".to_string(), Value::Float(g.cost)),
                                    ("objective".to_string(), Value::Float(g.objective)),
                                ]),
                            ));
                        }
                        _ => e.push(("greedy".to_string(), Value::Null)),
                    }
                    e.push(("delta".to_string(), Value::Float(nf.solve.delta())));
                    e.push((
                        "suggested_cores".to_string(),
                        Value::UInt(u64::from(nf.suggested_cores)),
                    ));
                    e.push((
                        "throughput_mpps".to_string(),
                        Value::Float(nf.throughput_mpps),
                    ));
                    e.push(("latency_us".to_string(), Value::Float(nf.latency_us)));
                    Value::Map(e)
                })
                .collect(),
        ),
    ));
    m.push((
        "split".to_string(),
        Value::Map(vec![
            (
                "nic_stages".to_string(),
                Value::UInt(plan.split.nic_stages as u64),
            ),
            (
                "total_stages".to_string(),
                Value::UInt(plan.split.total_stages as u64),
            ),
            (
                "throughput_mpps".to_string(),
                Value::Float(plan.split.throughput_mpps),
            ),
            ("latency_us".to_string(), Value::Float(plan.split.latency_us)),
            (
                "host_cores_needed".to_string(),
                Value::UInt(u64::from(plan.split.host_cores_needed)),
            ),
        ]),
    ));
    m.push((
        "total_objective".to_string(),
        Value::Float(plan.total_objective),
    ));
    m.push((
        "greedy_total_objective".to_string(),
        Value::Float(plan.greedy_total_objective),
    ));
    m.push((
        "replay".to_string(),
        match &plan.replay {
            None => Value::Null,
            Some(r) => Value::Map(vec![
                ("schedule".to_string(), Value::Str(r.schedule.clone())),
                (
                    "drift_threshold".to_string(),
                    Value::Float(r.drift_threshold),
                ),
                ("resolves".to_string(), Value::UInt(r.resolves)),
                (
                    "migrated_globals".to_string(),
                    Value::UInt(r.migrated_globals),
                ),
                (
                    "migration_bytes".to_string(),
                    Value::UInt(r.migration_bytes),
                ),
                (
                    "predicted_gain".to_string(),
                    Value::Float(r.predicted_gain),
                ),
                (
                    "epochs".to_string(),
                    Value::Seq(
                        r.epochs
                            .iter()
                            .map(|ep| {
                                Value::Map(vec![
                                    ("epoch".to_string(), Value::UInt(ep.epoch as u64)),
                                    (
                                        "workload".to_string(),
                                        Value::Str(ep.workload.clone()),
                                    ),
                                    ("drift".to_string(), Value::Float(ep.drift)),
                                    ("resolved".to_string(), Value::Bool(ep.resolved)),
                                    (
                                        "migrated_globals".to_string(),
                                        Value::UInt(ep.migrated_globals),
                                    ),
                                    (
                                        "migration_bytes".to_string(),
                                        Value::UInt(ep.migration_bytes),
                                    ),
                                    (
                                        "predicted_gain".to_string(),
                                        Value::Float(ep.predicted_gain),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        },
    ));
    finish(m)
}

/// Renders a successful `difftest` response.
pub fn difftest_response(
    id: Option<u64>,
    checked: u64,
    divergent: u64,
    engine_failures: u64,
) -> String {
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("difftest".to_string())));
    m.push(("checked".to_string(), Value::UInt(checked)));
    m.push(("divergent".to_string(), Value::UInt(divergent)));
    m.push(("engine_failures".to_string(), Value::UInt(engine_failures)));
    finish(m)
}

/// Renders a successful `stats` response from pre-assembled fields.
pub fn stats_response(id: Option<u64>, fields: Vec<(String, Value)>) -> String {
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("stats".to_string())));
    m.extend(fields);
    finish(m)
}

/// Renders the final `drain` response: total requests served plus the
/// deterministic run report (as an embedded JSON object).
pub fn drain_response(id: Option<u64>, served: u64, report: Value) -> String {
    let mut m = head(id, true);
    m.push(("op".to_string(), Value::Str("drain".to_string())));
    m.push(("served".to_string(), Value::UInt(served)));
    m.push(("report".to_string(), report));
    finish(m)
}

/// Renders a typed error response.
pub fn error_response(id: Option<u64>, kind: ErrorKind, detail: &str) -> String {
    let mut m = head(id, false);
    m.push(("error".to_string(), Value::Str(kind.as_str().to_string())));
    m.push(("detail".to_string(), Value::Str(detail.to_string())));
    finish(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_render_and_parse() {
        let reqs = [
            Request::Predict(WorkSpec {
                nf: "cmsketch".into(),
                packets: 400,
                seed: 7,
                small_flows: false,
                backend: None,
                precision: None,
            }),
            Request::Analyze(WorkSpec {
                nf: "iplookup".into(),
                packets: 100,
                seed: 1,
                small_flows: true,
                backend: Some("dpu-offpath".into()),
                precision: Some(Precision::Q16),
            }),
            Request::Difftest {
                seeds: 20,
                start: 5,
                pkts: 64,
            },
            Request::Place(PlacementRequest::new(["firewall", "nat"])),
            Request::Place(
                PlacementRequest::builder(["nat"])
                    .packets(200)
                    .seed(9)
                    .small_flows(true)
                    .backend("dpu-offpath")
                    .precision(Precision::Q16)
                    .objective(Objective::Throughput)
                    .replay("shift")
                    .epochs(6)
                    .drift_threshold(0.25)
                    .build(),
            ),
            Request::Stats,
            Request::Drain,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let line = render_request(Some(i as u64), &req);
            let env = parse_request(&line).expect("round trip parses");
            assert_eq!(env.id, Some(i as u64));
            assert_eq!(env.req, req);
        }
    }

    #[test]
    fn parse_defaults_and_rejections() {
        let env = parse_request(r#"{"v":1,"op":"predict","nf":"lb"}"#).expect("minimal predict");
        assert_eq!(
            env.req,
            Request::Predict(WorkSpec {
                nf: "lb".into(),
                packets: 400,
                seed: 42,
                small_flows: false,
                backend: None,
                precision: None,
            })
        );
        assert_eq!(env.id, None);
        assert!(parse_request(r#"{"v":1,"op":"predict","nf":"x","backend":7}"#)
            .unwrap_err()
            .contains("`backend`"));
        let env = parse_request(r#"{"v":1,"op":"predict","nf":"lb","precision":"q16"}"#)
            .expect("explicit precision parses");
        match env.req {
            Request::Predict(w) => assert_eq!(w.precision, Some(Precision::Q16)),
            other => panic!("unexpected request {other:?}"),
        }
        assert!(parse_request(r#"{"v":1,"op":"predict","nf":"lb","precision":"fp8"}"#)
            .unwrap_err()
            .contains("unknown precision"));
        assert!(parse_request("not json").unwrap_err().contains("invalid JSON"));
        assert!(parse_request(r#"{"op":"stats"}"#).unwrap_err().contains("version"));
        assert!(parse_request(r#"{"v":2,"op":"stats"}"#)
            .unwrap_err()
            .contains("unsupported protocol version"));
        assert!(parse_request(r#"{"v":1,"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_request(r#"{"v":1,"op":"predict"}"#)
            .unwrap_err()
            .contains("missing `nf`"));
        assert!(parse_request(r#"{"v":1,"op":"predict","nf":"x","packets":"many"}"#)
            .unwrap_err()
            .contains("`packets`"));
    }

    #[test]
    fn place_requests_parse_with_defaults_and_reject_bad_nfs() {
        let env = parse_request(r#"{"v":1,"op":"place","nfs":["firewall","mazunat"]}"#)
            .expect("minimal place");
        match env.req {
            Request::Place(r) => {
                assert_eq!(r, PlacementRequest::new(["firewall", "mazunat"]));
            }
            other => panic!("unexpected request {other:?}"),
        }
        assert!(parse_request(r#"{"v":1,"op":"place"}"#)
            .unwrap_err()
            .contains("`nfs`"));
        assert!(parse_request(r#"{"v":1,"op":"place","nfs":[]}"#)
            .unwrap_err()
            .contains("`nfs`"));
        assert!(parse_request(r#"{"v":1,"op":"place","nfs":["nat",7]}"#)
            .unwrap_err()
            .contains("`nfs`"));
        assert!(
            parse_request(r#"{"v":1,"op":"place","nfs":["mazunat"],"objective":"speed"}"#)
                .unwrap_err()
                .contains("unknown objective")
        );
        assert!(
            parse_request(r#"{"v":1,"op":"place","nfs":["mazunat"],"drift_threshold":-1}"#)
                .unwrap_err()
                .contains("drift_threshold")
        );
    }

    #[test]
    fn tenant_and_register_round_trip() {
        let reqs = [
            Request::Register(RegisterSpec {
                nfs: vec!["cmsketch".into(), "nat".into()],
                backend: Some("dpu-offpath".into()),
                precision: Some(Precision::Q16),
                quota: Some(8),
            }),
            Request::Register(RegisterSpec::default()),
            Request::Predict(WorkSpec {
                nf: "cmsketch".into(),
                packets: 400,
                seed: 42,
                small_flows: false,
                backend: None,
                precision: None,
            }),
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let line = render_request_as(Some(i as u64), Some("team-a"), &req);
            let env = parse_request(&line).expect("round trip parses");
            assert_eq!(env.tenant.as_deref(), Some("team-a"));
            assert_eq!(env.req, req);
        }
        // Tenantless lines resolve to no tenant (the server's `default`).
        let env = parse_request(r#"{"v":1,"op":"stats"}"#).expect("parses");
        assert_eq!(env.tenant, None);
        assert!(parse_request(r#"{"v":1,"op":"predict","nf":"x","tenant":7}"#)
            .unwrap_err()
            .contains("`tenant`"));
        assert!(parse_request(r#"{"v":1,"op":"register","tenant":"a","nfs":"x"}"#)
            .unwrap_err()
            .contains("`nfs`"));
        assert!(parse_request(r#"{"v":1,"op":"register","tenant":"a","quota":"big"}"#)
            .unwrap_err()
            .contains("`quota`"));
    }

    #[test]
    fn tenancy_error_kinds_have_wire_strings() {
        for (kind, wire) in [
            (ErrorKind::UnknownTenant, "unknown_tenant"),
            (ErrorKind::QuotaExceeded, "quota_exceeded"),
        ] {
            let line = error_response(None, kind, "detail");
            let v = serde_json::parse_value(&line).expect("valid JSON");
            assert_eq!(v.get("error"), Some(&serde::Value::Str(wire.to_string())));
        }
    }

    #[test]
    fn infeasible_is_part_of_the_error_kind_set() {
        let line = error_response(None, ErrorKind::Infeasible, "state exceeds NIC memory");
        let v = serde_json::parse_value(&line).expect("valid JSON");
        assert_eq!(
            v.get("error"),
            Some(&serde::Value::Str("infeasible".to_string()))
        );
    }

    #[test]
    fn error_responses_carry_the_typed_kind() {
        let line = error_response(Some(3), ErrorKind::Overloaded, "queue at capacity (8)");
        let v = serde_json::parse_value(&line).expect("valid JSON");
        assert_eq!(v.get("ok"), Some(&serde::Value::Bool(false)));
        assert_eq!(
            v.get("error"),
            Some(&serde::Value::Str("overloaded".to_string()))
        );
    }
}
