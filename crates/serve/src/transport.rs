//! Transport ablation: TCP JSON-lines vs Unix-domain-socket frames.
//!
//! PnO-TCP's observation is that the kernel network stack, not the NF,
//! often dominates small-request latency. The serve daemon makes that
//! measurable by speaking the same JSON protocol over two transports:
//!
//! - **`tcp`** — newline-delimited JSON over `TcpStream` with
//!   `TCP_NODELAY`, one `write` per response. The default; reachable
//!   over the network.
//! - **`uds`** — a `UnixStream` listener speaking **length-prefixed
//!   frames**: a 4-byte little-endian payload length followed by the
//!   JSON payload, no delimiter scan, reusable per-connection buffers,
//!   one `write` per frame. Local-only; skips the TCP/IP stack
//!   entirely.
//!
//! The payload bytes are identical on both — `bench-serve --matrix`
//! exists to quantify the difference, not to fork the protocol.

use std::io::{self, Read, Write};

/// Which listener(s) the daemon binds / the bench client dials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Newline-delimited JSON over TCP (the default).
    Tcp,
    /// Length-prefixed JSON frames over a Unix-domain socket.
    Uds,
}

impl Transport {
    /// Parses a `--transport` flag value.
    pub fn parse(s: &str) -> Option<Transport> {
        match s {
            "tcp" => Some(Transport::Tcp),
            "uds" => Some(Transport::Uds),
            _ => None,
        }
    }

    /// The flag/report string for this transport.
    pub fn as_str(self) -> &'static str {
        match self {
            Transport::Tcp => "tcp",
            Transport::Uds => "uds",
        }
    }
}

/// Frames larger than this are rejected as corrupt rather than
/// allocated: no legitimate request or response comes close.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Reads one length-prefixed frame into `buf` (reused across calls) and
/// returns the payload as UTF-8. `Ok(None)` is clean EOF (peer closed
/// between frames).
///
/// # Errors
///
/// I/O errors from the stream; `InvalidData` for oversized frames,
/// truncated payloads, or non-UTF-8 bytes.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_LEN}"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    match std::str::from_utf8(buf) {
        Ok(s) => Ok(Some(s.to_string())),
        Err(_) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload is not UTF-8",
        )),
    }
}

/// Writes one length-prefixed frame. The prefix and payload are
/// assembled in `buf` (reused across calls) so the frame goes out in a
/// single `write_all` — no partial-frame interleaving, one syscall.
///
/// # Errors
///
/// I/O errors from the stream; `InvalidData` for oversized payloads.
pub fn write_frame(w: &mut impl Write, buf: &mut Vec<u8>, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {} exceeds {MAX_FRAME_LEN}", bytes.len()),
        ));
    }
    buf.clear();
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
    w.write_all(buf)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_with_reused_buffers() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for payload in ["{\"v\":1,\"op\":\"stats\"}", "", "π frames are UTF-8"] {
            write_frame(&mut wire, &mut scratch, payload).expect("write");
        }
        let mut r = wire.as_slice();
        let mut buf = Vec::new();
        assert_eq!(
            read_frame(&mut r, &mut buf).expect("read").as_deref(),
            Some("{\"v\":1,\"op\":\"stats\"}")
        );
        assert_eq!(read_frame(&mut r, &mut buf).expect("read").as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r, &mut buf).expect("read").as_deref(),
            Some("π frames are UTF-8")
        );
        assert_eq!(read_frame(&mut r, &mut buf).expect("clean EOF"), None);
    }

    #[test]
    fn corrupt_frames_are_invalid_data_not_allocation() {
        // Oversized length prefix.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut buf = Vec::new();
        let err = read_frame(&mut wire.as_slice(), &mut buf).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated payload: prefix says 8, only 3 bytes follow.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let err = read_frame(&mut wire.as_slice(), &mut buf).expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Non-UTF-8 payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut wire.as_slice(), &mut buf).expect_err("bad UTF-8");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn transport_parses_flag_values() {
        assert_eq!(Transport::parse("tcp"), Some(Transport::Tcp));
        assert_eq!(Transport::parse("uds"), Some(Transport::Uds));
        assert_eq!(Transport::parse("quic"), None);
        assert_eq!(Transport::Tcp.as_str(), "tcp");
        assert_eq!(Transport::Uds.as_str(), "uds");
    }
}
