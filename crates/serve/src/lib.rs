//! `clara-serve`: a batched, backpressured NF-analysis service.
//!
//! Every one-shot `clara` invocation pays full process startup: load (or
//! train) the models, compile, profile, exit. This crate keeps that state
//! **resident** behind a request interface, the way λ-NIC keeps NF
//! workloads resident and Cora re-queries its performance model across an
//! iterative offloading search:
//!
//! - **warm model state** — the server loads a versioned persisted
//!   [`clara_core::Clara`] pipeline once and shares it across workers via
//!   `Arc`;
//! - **accumulating caches** — one long-lived [`clara_core::Engine`]
//!   handle serves every request, so the in-memory and on-disk
//!   compile/profile artifact caches warm up monotonically across
//!   requests, and a serve-level prediction cache keyed by
//!   `(spec, backend, precision)` answers repeats without re-entering
//!   the engine (the second identical request recomputes — and
//!   re-hashes — nothing);
//! - **bounded queue + admission control** — requests run on a
//!   fixed-size worker pool behind a bounded queue; when the queue is
//!   full the server answers with a typed `overloaded` error immediately
//!   instead of hanging the client;
//! - **micro-batching** — adjacent queued `predict` requests coalesce
//!   into one [`clara_core::Clara::predict_batch`] call, i.e. one engine
//!   `par_map` stage instead of N;
//! - **deadlines** — a per-request budget (reusing
//!   [`clara_core::EngineOptions::stage_deadline`] for the engine side)
//!   turns queue-stuck requests into typed `deadline` errors;
//! - **graceful drain** — a `drain` request (or SIGTERM on the CLI)
//!   stops admission, finishes everything in flight, and answers with a
//!   final deterministic [`clara_obs::RunReport`].
//!
//! - **multi-tenant fleet serving** — every request runs as a tenant
//!   ([`tenant`]); `op:"register"` pins per-tenant NF sets, default
//!   backend/precision, and admission quotas. Tenants get their own
//!   sub-queues under the shared capacity budget with deficit
//!   round-robin dispatch and sharded workers, so one tenant's burst
//!   collects typed `quota_exceeded` while everyone else keeps their
//!   latency; `stats` surfaces per-tenant counters and pairwise
//!   colocation-interference predictions.
//!
//! The wire protocol is versioned JSON over TCP lines or UDS frames
//! (see [`protocol`] and [`transport`]). [`server`] hosts the daemon
//! (in-process startable for tests), and [`client`] is the load
//! generator behind `clara bench-serve`.

pub mod client;
pub mod protocol;
pub mod server;
pub mod tenant;
pub mod transport;

pub use client::{run_bench, BenchOptions, BenchSummary, FairnessReport, MatrixCell};
pub use protocol::{RegisterSpec, Request, WorkSpec, PROTOCOL_VERSION};
pub use server::{Server, ServerHandle, ServeOptions, ServeSummary};
pub use tenant::{Registry, Tenant, TenantStats, DEFAULT_TENANT};
pub use transport::Transport;
