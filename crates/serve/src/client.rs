//! The load generator behind `clara bench-serve`.
//!
//! Drives a running daemon over N persistent connections, measures
//! request throughput and latency percentiles client-side, optionally
//! fires an over-capacity burst (to exercise admission control) and a
//! sequential one-shot-CLI baseline (to quantify what warm state buys),
//! and lands everything in the standard `BENCH_*.json` report shape.
//!
//! Latency accounting is **per-op**: interleaved `op:"place"` round
//! trips (`--place-every`) land in their own percentile pool, so
//! predict p50/p95/p99 and the `--require-speedup` floor never mix
//! ILP-solver calls with cached predicts.
//!
//! Three extra modes ride on the same machinery:
//!
//! - `--tenants N` registers `tenant-0..N-1` and spreads the
//!   steady-state connections across them, exercising the server's
//!   per-tenant queues and worker shards;
//! - `--fairness` runs the two-tenant isolation experiment: a victim's
//!   steady state is measured solo, then again while a burster floods
//!   past its quota — the victim must keep its latency (and see zero
//!   rejections) while the burster absorbs typed `quota_exceeded`;
//! - `--matrix` sweeps tenants × transport (TCP JSON-lines vs UDS
//!   frames) × backend over the same workload and writes the grid to
//!   `BENCH_serve_tenants.json`, optionally enforcing that the UDS
//!   transport out-serves TCP (`--require-uds-win`).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use clara_core::{ClaraError, Precision};
use clara_obs as obs;
use serde::Value;

use crate::protocol::{self, RegisterSpec, Request, WorkSpec};
use crate::transport::{self, Transport};

/// What to throw at the server.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchOptions {
    /// Daemon TCP address.
    pub addr: String,
    /// Daemon Unix-socket path (required for the `uds` transport and
    /// for `--matrix`).
    pub uds_path: Option<String>,
    /// Transport the bench connections dial (`--matrix` uses both).
    pub transport: Transport,
    /// Total steady-state requests (split across `conns`).
    pub requests: usize,
    /// Concurrent persistent connections.
    pub conns: usize,
    /// Corpus element every steady-state request predicts.
    pub nf: String,
    /// Packets per steady-state request trace.
    pub packets: usize,
    /// Trace seed (fixed, so the warm cache can do its job).
    pub seed: u64,
    /// Over-capacity burst size (0 skips the burst phase). Each burst
    /// request uses a distinct seed and `burst_packets`, so none of them
    /// can be served from cache.
    pub burst: usize,
    /// Packets per burst request (heavy on purpose).
    pub burst_packets: usize,
    /// One-shot CLI invocations to time as the baseline (0 skips).
    pub baseline: usize,
    /// Model file for the baseline subprocesses (required when
    /// `baseline > 0`, so the baseline measures process startup + load,
    /// not training).
    pub model: Option<String>,
    /// Fail (exit 7) unless predict `rps / baseline_rps` reaches this.
    pub require_speedup: Option<f64>,
    /// Send a `drain` op after measuring and verify it succeeds.
    pub drain: bool,
    /// Report sink; defaults to `BENCH_serve.json` (`BENCH_serve_tenants.json`
    /// in matrix mode; a `CLARA_REPORT` env sink is honoured when unset).
    pub report: Option<String>,
    /// Device backend every request names (None: the server's default).
    pub backend: Option<String>,
    /// Inference precision every request names (None: the server's
    /// default). Also forwarded to the baseline subprocesses.
    pub precision: Option<Precision>,
    /// Interleave an `op:"place"` request for `nf` every N steady-state
    /// requests per connection (0 disables), so the bench also exercises
    /// the placement path against warm backend state.
    pub place_every: usize,
    /// Register this many tenants (`tenant-0..N-1`, NF set = `nf`) and
    /// spread the steady-state connections across them (0: anonymous).
    pub tenants: usize,
    /// Admission quota passed to each registered tenant (None: the
    /// server's full queue capacity).
    pub quota: Option<u64>,
    /// Run the two-tenant fairness experiment instead of the plain
    /// steady state.
    pub fairness: bool,
    /// Sweep tenants × transport × backend and write the grid report.
    pub matrix: bool,
    /// Backends the matrix sweeps (empty: the server default only).
    pub backends: Vec<String>,
    /// Fail (exit 7) unless the matrix measures UDS rps above TCP rps.
    pub require_uds_win: bool,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            addr: "127.0.0.1:4117".to_string(),
            uds_path: None,
            transport: Transport::Tcp,
            requests: 200,
            conns: 4,
            nf: "cmsketch".to_string(),
            packets: 400,
            seed: 42,
            burst: 0,
            burst_packets: 3000,
            baseline: 0,
            model: None,
            require_speedup: None,
            drain: false,
            report: None,
            backend: None,
            precision: None,
            place_every: 0,
            tenants: 0,
            quota: None,
            fairness: false,
            matrix: false,
            backends: Vec::new(),
            require_uds_win: false,
        }
    }
}

/// The two-tenant isolation experiment's result.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Victim predict p95 with the server to itself, microseconds.
    pub solo_p95_us: f64,
    /// Victim predict p95 while the burster floods, microseconds.
    pub contended_p95_us: f64,
    /// Victim requests rejected or failed under contention (must be 0).
    pub victim_rejections: u64,
    /// Burster requests answered with typed `quota_exceeded`/`overloaded`
    /// (must be > 0 — the quota has to actually bite).
    pub burster_rejections: u64,
}

/// One cell of the tenants × transport × backend matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Tenant the cell ran as (`default` when anonymous).
    pub tenant: String,
    /// Transport the cell dialed.
    pub transport: Transport,
    /// Backend the cell named (`default` when none).
    pub backend: String,
    /// Successful predicts per second.
    pub rps: f64,
    /// Predict latency percentiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
}

/// What the run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Requests sent (steady state + burst).
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed `overloaded` rejections (expected under burst; not failures).
    pub overloaded: u64,
    /// Typed per-tenant `quota_exceeded` rejections (also not failures).
    pub quota_exceeded: u64,
    /// Anything else that went wrong.
    pub failed: u64,
    /// Steady-state successful *predicts* per second.
    pub rps: f64,
    /// Steady-state predict latency percentiles, microseconds
    /// (nearest rank; interleaved `place` round trips excluded).
    pub p50_us: f64,
    /// 95th percentile predict latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile predict latency, microseconds.
    pub p99_us: f64,
    /// Successful interleaved `place` round trips.
    pub place_ok: u64,
    /// Interleaved `place` latency percentiles, microseconds.
    pub place_p50_us: f64,
    /// 95th percentile place latency, microseconds.
    pub place_p95_us: f64,
    /// 99th percentile place latency, microseconds.
    pub place_p99_us: f64,
    /// One-shot CLI requests per second (when a baseline ran).
    pub baseline_rps: Option<f64>,
    /// Predict `rps / baseline_rps` (when a baseline ran).
    pub speedup: Option<f64>,
    /// The fairness experiment's result (when `--fairness` ran).
    pub fairness: Option<FairnessReport>,
    /// Matrix aggregate: successful predicts per second over TCP.
    pub tcp_rps: Option<f64>,
    /// Matrix aggregate: successful predicts per second over UDS.
    pub uds_rps: Option<f64>,
    /// Whether the post-run drain completed successfully.
    pub drained: bool,
}

impl BenchSummary {
    fn empty() -> BenchSummary {
        BenchSummary {
            sent: 0,
            ok: 0,
            overloaded: 0,
            quota_exceeded: 0,
            failed: 0,
            rps: 0.0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
            place_ok: 0,
            place_p50_us: 0.0,
            place_p95_us: 0.0,
            place_p99_us: 0.0,
            baseline_rps: None,
            speedup: None,
            fairness: None,
            tcp_rps: None,
            uds_rps: None,
            drained: false,
        }
    }
}

fn serve_err(detail: String) -> ClaraError {
    ClaraError::Serve { detail }
}

// ---- connections -------------------------------------------------------

/// One bench connection: TCP JSON-lines or UDS length-prefixed frames,
/// same protocol bytes either way.
enum BenchConn {
    Tcp {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    },
    #[cfg(unix)]
    Uds {
        stream: UnixStream,
        read_buf: Vec<u8>,
        write_buf: Vec<u8>,
    },
}

impl BenchConn {
    /// Connects with retries (the daemon may still be starting up).
    fn connect(transport: Transport, addr: &str, uds_path: Option<&str>) -> Result<BenchConn, ClaraError> {
        let deadline = Instant::now() + Duration::from_secs(10);
        match transport {
            Transport::Tcp => loop {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        s.set_read_timeout(Some(Duration::from_secs(120)))
                            .map_err(|e| serve_err(format!("cannot set read timeout: {e}")))?;
                        // Small request frames; Nagle would stall them
                        // behind delayed ACKs.
                        let _ = s.set_nodelay(true);
                        let reader = BufReader::new(
                            s.try_clone()
                                .map_err(|e| serve_err(format!("cannot clone stream: {e}")))?,
                        );
                        return Ok(BenchConn::Tcp { stream: s, reader });
                    }
                    Err(e) if Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Err(e) => return Err(serve_err(format!("cannot connect to {addr}: {e}"))),
                }
            },
            #[cfg(unix)]
            Transport::Uds => {
                let path = uds_path.ok_or_else(|| {
                    serve_err("the uds transport needs --uds <path>".to_string())
                })?;
                loop {
                    match UnixStream::connect(path) {
                        Ok(s) => {
                            s.set_read_timeout(Some(Duration::from_secs(120)))
                                .map_err(|e| serve_err(format!("cannot set read timeout: {e}")))?;
                            return Ok(BenchConn::Uds {
                                stream: s,
                                read_buf: Vec::with_capacity(4096),
                                write_buf: Vec::with_capacity(4096),
                            });
                        }
                        Err(e) if Instant::now() < deadline => {
                            let _ = e;
                            std::thread::sleep(Duration::from_millis(100));
                        }
                        Err(e) => {
                            return Err(serve_err(format!("cannot connect to {path}: {e}")))
                        }
                    }
                }
            }
            #[cfg(not(unix))]
            Transport::Uds => {
                let _ = uds_path;
                Err(serve_err(
                    "unix-domain sockets are not available on this platform".to_string(),
                ))
            }
        }
    }

    /// One request/response round trip.
    fn round_trip(&mut self, line: &str) -> Result<String, String> {
        match self {
            BenchConn::Tcp { stream, reader } => {
                let mut framed = String::with_capacity(line.len() + 1);
                framed.push_str(line);
                framed.push('\n');
                stream
                    .write_all(framed.as_bytes())
                    .and_then(|()| stream.flush())
                    .map_err(|e| format!("write failed: {e}"))?;
                let mut resp = String::new();
                match reader.read_line(&mut resp) {
                    Ok(0) => Err("server closed the connection".to_string()),
                    Ok(_) => Ok(resp.trim_end().to_string()),
                    Err(e) => Err(format!("read failed: {e}")),
                }
            }
            #[cfg(unix)]
            BenchConn::Uds {
                stream,
                read_buf,
                write_buf,
            } => {
                transport::write_frame(stream, write_buf, line)
                    .map_err(|e| format!("write failed: {e}"))?;
                match transport::read_frame(stream, read_buf) {
                    Ok(Some(resp)) => Ok(resp),
                    Ok(None) => Err("server closed the connection".to_string()),
                    Err(e) => Err(format!("read failed: {e}")),
                }
            }
        }
    }
}

/// How one response counts toward the tallies.
enum Outcome {
    Ok,
    Overloaded,
    QuotaExceeded,
    Failed(String),
}

fn classify(resp: &str) -> Outcome {
    match serde_json::parse_value(resp) {
        Ok(v) => {
            if v.get("ok") == Some(&Value::Bool(true)) {
                Outcome::Ok
            } else if v.get("error") == Some(&Value::Str("overloaded".to_string())) {
                Outcome::Overloaded
            } else if v.get("error") == Some(&Value::Str("quota_exceeded".to_string())) {
                Outcome::QuotaExceeded
            } else {
                Outcome::Failed(resp.to_string())
            }
        }
        Err(e) => Outcome::Failed(format!("unparseable response ({e}): {resp}")),
    }
}

/// Which latency pool a round trip lands in (the percentile fix: place
/// round trips never pollute predict percentiles).
#[derive(Clone, Copy, PartialEq, Eq)]
enum BenchOp {
    Predict,
    Place,
}

#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    quota_exceeded: u64,
    failed: u64,
    first_failure: Option<String>,
    predict_ok: u64,
    place_ok: u64,
    predict_lat_us: Vec<f64>,
    place_lat_us: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.quota_exceeded += other.quota_exceeded;
        self.failed += other.failed;
        if self.first_failure.is_none() {
            self.first_failure = other.first_failure;
        }
        self.predict_ok += other.predict_ok;
        self.place_ok += other.place_ok;
        self.predict_lat_us.extend(other.predict_lat_us);
        self.place_lat_us.extend(other.place_lat_us);
    }

    fn record(&mut self, op: BenchOp, outcome: Outcome, latency: Duration) {
        self.sent += 1;
        let lat = latency.as_micros() as f64;
        match op {
            BenchOp::Predict => self.predict_lat_us.push(lat),
            BenchOp::Place => self.place_lat_us.push(lat),
        }
        match outcome {
            Outcome::Ok => {
                self.ok += 1;
                match op {
                    BenchOp::Predict => self.predict_ok += 1,
                    BenchOp::Place => self.place_ok += 1,
                }
            }
            Outcome::Overloaded => self.overloaded += 1,
            Outcome::QuotaExceeded => self.quota_exceeded += 1,
            Outcome::Failed(detail) => {
                self.failed += 1;
                if self.first_failure.is_none() {
                    self.first_failure = Some(detail);
                }
            }
        }
    }

    /// Rejections of any typed kind plus outright failures.
    fn rejections(&self) -> u64 {
        self.overloaded + self.quota_exceeded + self.failed
    }

    fn sorted_predict_lat(&self) -> Vec<f64> {
        let mut lat = self.predict_lat_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        lat
    }

    fn sorted_place_lat(&self) -> Vec<f64> {
        let mut lat = self.place_lat_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        lat
    }
}

/// Nearest-rank percentile over a sorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

// ---- steady state ------------------------------------------------------

/// One steady-state slice: who sends, over what, against which backend.
struct Slice<'a> {
    /// Tenants cycled across connections (empty: anonymous).
    tenants: Vec<&'a str>,
    transport: Transport,
    backend: Option<String>,
    requests: usize,
    place_every: usize,
}

fn steady_state(o: &BenchOptions, slice: &Slice<'_>) -> Result<(Tally, f64), ClaraError> {
    let conns = o.conns.max(1);
    let per_conn = slice.requests / conns;
    let extra = slice.requests % conns;
    let started = Instant::now();
    let mut total = Tally::default();
    let tallies: Vec<Result<Tally, ClaraError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let count = per_conn + usize::from(c < extra);
                let tenant = if slice.tenants.is_empty() {
                    None
                } else {
                    Some(slice.tenants[c % slice.tenants.len()])
                };
                scope.spawn(move || -> Result<Tally, ClaraError> {
                    let mut tally = Tally::default();
                    if count == 0 {
                        return Ok(tally);
                    }
                    let mut conn =
                        BenchConn::connect(slice.transport, &o.addr, o.uds_path.as_deref())?;
                    for i in 0..count {
                        let id = (c * slice.requests + i) as u64;
                        let (op, req) = if slice.place_every > 0
                            && i % slice.place_every == slice.place_every - 1
                        {
                            let mut b = clara_core::PlacementRequest::builder([o.nf.as_str()])
                                .packets(o.packets)
                                .seed(o.seed);
                            if let Some(backend) = &slice.backend {
                                b = b.backend(backend.as_str());
                            }
                            if let Some(p) = o.precision {
                                b = b.precision(p);
                            }
                            (BenchOp::Place, Request::Place(b.build()))
                        } else {
                            (
                                BenchOp::Predict,
                                Request::Predict(WorkSpec {
                                    nf: o.nf.clone(),
                                    packets: o.packets,
                                    seed: o.seed,
                                    small_flows: false,
                                    backend: slice.backend.clone(),
                                    precision: o.precision,
                                }),
                            )
                        };
                        let line = protocol::render_request_as(Some(id), tenant, &req);
                        let t0 = Instant::now();
                        match conn.round_trip(&line) {
                            Ok(resp) => tally.record(op, classify(&resp), t0.elapsed()),
                            Err(e) => tally.record(op, Outcome::Failed(e), t0.elapsed()),
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection thread panicked"))
            .collect()
    });
    for t in tallies {
        total.absorb(t?);
    }
    Ok((total, started.elapsed().as_secs_f64()))
}

/// Fires `burst` one-shot connections at once, each with a heavy,
/// distinctly-seeded predict, to push the queue past capacity.
fn burst_phase(o: &BenchOptions, tenant: Option<&str>) -> Tally {
    let mut total = Tally::default();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.burst)
            .map(|i| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let t0 = Instant::now();
                    let outcome = (|| -> Result<Outcome, String> {
                        let mut conn =
                            BenchConn::connect(o.transport, &o.addr, o.uds_path.as_deref())
                                .map_err(|e| format!("burst connect: {e}"))?;
                        let line = protocol::render_request_as(
                            Some(1_000_000 + i as u64),
                            tenant,
                            &Request::Predict(WorkSpec {
                                nf: o.nf.clone(),
                                packets: o.burst_packets,
                                seed: 1_000_000 + i as u64,
                                small_flows: false,
                                backend: o.backend.clone(),
                                precision: o.precision,
                            }),
                        );
                        conn.round_trip(&line).map(|r| classify(&r))
                    })();
                    match outcome {
                        Ok(oc) => tally.record(BenchOp::Predict, oc, t0.elapsed()),
                        Err(e) => tally.record(BenchOp::Predict, Outcome::Failed(e), t0.elapsed()),
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst thread panicked"))
            .collect()
    });
    for t in tallies {
        total.absorb(t);
    }
    total
}

/// Times `baseline` sequential one-shot `clara predict` subprocesses.
fn baseline_phase(o: &BenchOptions) -> Result<f64, ClaraError> {
    let model = o.model.as_ref().ok_or_else(|| {
        serve_err("--baseline needs --model so one-shot runs load instead of train".to_string())
    })?;
    let exe = std::env::current_exe()
        .map_err(|e| serve_err(format!("cannot locate own executable: {e}")))?;
    let started = Instant::now();
    for _ in 0..o.baseline {
        let mut cmd = Command::new(&exe);
        cmd.arg("predict")
            .arg(&o.nf)
            .arg("--model")
            .arg(model)
            .arg("--packets")
            .arg(o.packets.to_string())
            .arg("--seed")
            .arg(o.seed.to_string());
        if let Some(p) = o.precision {
            cmd.arg("--precision").arg(p.as_str());
        }
        let status = cmd
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map_err(|e| serve_err(format!("cannot spawn baseline subprocess: {e}")))?;
        if !status.success() {
            return Err(serve_err(format!(
                "baseline `clara predict` run failed with {status}"
            )));
        }
    }
    let secs = started.elapsed().as_secs_f64();
    Ok(o.baseline as f64 / secs.max(1e-9))
}

fn drain_phase(o: &BenchOptions) -> Result<(), ClaraError> {
    let mut conn = BenchConn::connect(o.transport, &o.addr, o.uds_path.as_deref())?;
    let line = protocol::render_request(None, &Request::Drain);
    let resp = conn.round_trip(&line).map_err(serve_err)?;
    match classify(&resp) {
        Outcome::Ok => Ok(()),
        _ => Err(serve_err(format!("drain did not succeed: {resp}"))),
    }
}

/// Registers a tenant (NF set = the bench NF) and checks the ack.
fn register_tenant(
    o: &BenchOptions,
    name: &str,
    quota: Option<u64>,
) -> Result<(), ClaraError> {
    let mut conn = BenchConn::connect(o.transport, &o.addr, o.uds_path.as_deref())?;
    let line = protocol::render_request_as(
        None,
        Some(name),
        &Request::Register(RegisterSpec {
            nfs: vec![o.nf.clone()],
            backend: None,
            precision: None,
            quota,
        }),
    );
    let resp = conn.round_trip(&line).map_err(serve_err)?;
    match classify(&resp) {
        Outcome::Ok => Ok(()),
        _ => Err(serve_err(format!("register `{name}` failed: {resp}"))),
    }
}

// ---- reporting ---------------------------------------------------------

fn write_report(o: &BenchOptions, s: &BenchSummary, default_name: &str) {
    obs::enable();
    obs::volatile_gauge("serve.bench.rps").set(s.rps);
    obs::volatile_gauge("serve.bench.p50_us").set(s.p50_us);
    obs::volatile_gauge("serve.bench.p95_us").set(s.p95_us);
    obs::volatile_gauge("serve.bench.p99_us").set(s.p99_us);
    obs::volatile_gauge("serve.bench.sent").set(s.sent as f64);
    obs::volatile_gauge("serve.bench.ok").set(s.ok as f64);
    obs::volatile_gauge("serve.bench.overloaded").set(s.overloaded as f64);
    obs::volatile_gauge("serve.bench.quota_exceeded").set(s.quota_exceeded as f64);
    if s.place_ok > 0 {
        obs::volatile_gauge("serve.bench.place.ok").set(s.place_ok as f64);
        obs::volatile_gauge("serve.bench.place.p50_us").set(s.place_p50_us);
        obs::volatile_gauge("serve.bench.place.p95_us").set(s.place_p95_us);
        obs::volatile_gauge("serve.bench.place.p99_us").set(s.place_p99_us);
    }
    if let Some(b) = s.baseline_rps {
        obs::volatile_gauge("serve.bench.baseline_rps").set(b);
    }
    if let Some(x) = s.speedup {
        obs::volatile_gauge("serve.bench.speedup").set(x);
    }
    if let Some(f) = &s.fairness {
        obs::volatile_gauge("serve.bench.fairness.solo_p95_us").set(f.solo_p95_us);
        obs::volatile_gauge("serve.bench.fairness.contended_p95_us").set(f.contended_p95_us);
        obs::volatile_gauge("serve.bench.fairness.victim_rejections")
            .set(f.victim_rejections as f64);
        obs::volatile_gauge("serve.bench.fairness.burster_rejections")
            .set(f.burster_rejections as f64);
    }
    if let Some(r) = s.tcp_rps {
        obs::volatile_gauge("serve.bench.matrix.tcp.rps").set(r);
    }
    if let Some(r) = s.uds_rps {
        obs::volatile_gauge("serve.bench.matrix.uds.rps").set(r);
    }
    let raw = o
        .report
        .clone()
        .or_else(obs::sink_from_env)
        .unwrap_or_else(|| default_name.to_string());
    let path = obs::resolve_sink(&raw, default_name);
    if let Err(e) = obs::RunReport::capture().write(&path) {
        eprintln!("warning: could not write report to {}: {e}", path.display());
    } else {
        eprintln!("wrote report to {}", path.display());
    }
}

fn summarize(tally: &Tally, steady_secs: f64) -> BenchSummary {
    let predict_lat = tally.sorted_predict_lat();
    let place_lat = tally.sorted_place_lat();
    BenchSummary {
        sent: tally.sent,
        ok: tally.ok,
        overloaded: tally.overloaded,
        quota_exceeded: tally.quota_exceeded,
        failed: tally.failed,
        rps: tally.predict_ok as f64 / steady_secs.max(1e-9),
        p50_us: percentile(&predict_lat, 0.50),
        p95_us: percentile(&predict_lat, 0.95),
        p99_us: percentile(&predict_lat, 0.99),
        place_ok: tally.place_ok,
        place_p50_us: percentile(&place_lat, 0.50),
        place_p95_us: percentile(&place_lat, 0.95),
        place_p99_us: percentile(&place_lat, 0.99),
        ..BenchSummary::empty()
    }
}

// ---- modes -------------------------------------------------------------

/// The plain benchmark: steady state (optionally spread over registered
/// tenants), optional burst, optional baseline, report, optional drain.
fn run_plain(o: &BenchOptions) -> Result<BenchSummary, ClaraError> {
    let tenant_names: Vec<String> = (0..o.tenants).map(|i| format!("tenant-{i}")).collect();
    for name in &tenant_names {
        register_tenant(o, name, o.quota)?;
    }
    let slice = Slice {
        tenants: tenant_names.iter().map(String::as_str).collect(),
        transport: o.transport,
        backend: o.backend.clone(),
        requests: o.requests,
        place_every: o.place_every,
    };
    let (mut tally, steady_secs) = steady_state(o, &slice)?;
    let steady = summarize(&tally, steady_secs);
    if o.burst > 0 {
        tally.absorb(burst_phase(o, tenant_names.first().map(String::as_str)));
    }
    let baseline_rps = if o.baseline > 0 {
        Some(baseline_phase(o)?)
    } else {
        None
    };
    // The speedup floor compares predicts only: place round trips have
    // their own pool and never dilute (or inflate) the warm-path claim.
    let speedup = baseline_rps.map(|b| steady.rps / b.max(1e-9));
    let mut summary = BenchSummary {
        sent: tally.sent,
        ok: tally.ok,
        overloaded: tally.overloaded,
        quota_exceeded: tally.quota_exceeded,
        failed: tally.failed,
        baseline_rps,
        speedup,
        ..steady
    };
    if o.drain {
        drain_phase(o)?;
        summary.drained = true;
    }
    write_report(o, &summary, "BENCH_serve.json");
    if summary.failed > 0 {
        return Err(serve_err(format!(
            "{} of {} requests failed (first: {})",
            summary.failed,
            summary.sent,
            tally.first_failure.as_deref().unwrap_or("unknown"),
        )));
    }
    if let Some(min) = o.require_speedup {
        match summary.speedup {
            Some(x) if x >= min => {}
            Some(x) => {
                return Err(serve_err(format!(
                    "speedup {x:.2}x is below the required {min:.2}x"
                )))
            }
            None => {
                return Err(serve_err(
                    "--require-speedup needs --baseline to measure against".to_string(),
                ))
            }
        }
    }
    Ok(summary)
}

/// The two-tenant isolation experiment: measure the victim solo, then
/// with a quota-limited burster flooding. Isolation holds when the
/// victim keeps its p95 (within 2x, with a 10ms floor for sub-ms
/// baselines) and sees zero rejections while the burster's flood
/// collects typed rejections.
fn run_fairness(o: &BenchOptions) -> Result<BenchSummary, ClaraError> {
    // Order matters: the victim registers first so its worker shard is
    // disjoint from the burster's (which lands with the default tenant).
    register_tenant(o, "victim", None)?;
    register_tenant(o, "burster", Some(o.quota.unwrap_or(4)))?;
    let victim_slice = Slice {
        tenants: vec!["victim"],
        transport: o.transport,
        backend: o.backend.clone(),
        requests: o.requests,
        place_every: 0,
    };
    let (solo, solo_secs) = steady_state(o, &victim_slice)?;
    if solo.rejections() > 0 {
        return Err(serve_err(format!(
            "victim saw {} rejections/failures in its solo phase (first: {})",
            solo.rejections(),
            solo.first_failure.as_deref().unwrap_or("typed rejection"),
        )));
    }
    let solo_p95 = percentile(&solo.sorted_predict_lat(), 0.95);

    // Contended phase: the burster floods with heavy, uncacheable
    // predicts while the victim repeats its exact solo workload.
    let flood = o.burst.max(16);
    let (victim, burster) = std::thread::scope(|scope| {
        let victim_handle = scope.spawn(|| steady_state(o, &victim_slice));
        let burster_handle = scope.spawn(|| {
            let mut bo = o.clone();
            bo.burst = flood;
            burst_phase(&bo, Some("burster"))
        });
        (
            victim_handle.join().expect("victim thread panicked"),
            burster_handle.join().expect("burster thread panicked"),
        )
    });
    let (victim, victim_secs) = victim?;
    let contended_p95 = percentile(&victim.sorted_predict_lat(), 0.95);

    let fairness = FairnessReport {
        solo_p95_us: solo_p95,
        contended_p95_us: contended_p95,
        victim_rejections: victim.rejections(),
        burster_rejections: burster.overloaded + burster.quota_exceeded,
    };
    let mut tally = Tally::default();
    let victim_ok = victim.predict_ok;
    tally.absorb(solo);
    tally.absorb(victim);
    tally.absorb(burster);
    let mut summary = summarize(&tally, solo_secs + victim_secs);
    summary.rps = victim_ok as f64 / victim_secs.max(1e-9);
    summary.fairness = Some(fairness.clone());
    if o.drain {
        drain_phase(o)?;
        summary.drained = true;
    }
    write_report(o, &summary, "BENCH_serve.json");

    if fairness.victim_rejections > 0 {
        return Err(serve_err(format!(
            "fairness violated: victim saw {} rejections/failures under contention",
            fairness.victim_rejections
        )));
    }
    if fairness.burster_rejections == 0 {
        return Err(serve_err(
            "fairness experiment inconclusive: the burster's flood was never rejected \
             (raise --burst or lower --quota)"
                .to_string(),
        ));
    }
    let bound = (2.0 * fairness.solo_p95_us).max(10_000.0);
    if fairness.contended_p95_us > bound {
        return Err(serve_err(format!(
            "fairness violated: victim p95 {:.0}us under contention exceeds {:.0}us \
             (2x solo p95 {:.0}us)",
            fairness.contended_p95_us, bound, fairness.solo_p95_us
        )));
    }
    Ok(summary)
}

/// The tenants × transport × backend sweep. One warmup slice primes the
/// engine caches so cells measure transport + dispatch overhead, not
/// first-touch compilation.
fn run_matrix(o: &BenchOptions) -> Result<BenchSummary, ClaraError> {
    if o.uds_path.is_none() {
        return Err(serve_err(
            "--matrix compares transports; start the server with a uds listener and pass --uds"
                .to_string(),
        ));
    }
    let tenant_names: Vec<String> = (0..o.tenants.max(1))
        .map(|i| format!("tenant-{i}"))
        .collect();
    for name in &tenant_names {
        register_tenant(o, name, o.quota)?;
    }
    let backends: Vec<Option<String>> = if o.backends.is_empty() {
        vec![o.backend.clone()]
    } else {
        o.backends.iter().cloned().map(Some).collect()
    };
    let warmup = Slice {
        tenants: tenant_names.iter().map(String::as_str).collect(),
        transport: Transport::Tcp,
        backend: backends[0].clone(),
        requests: (o.conns.max(1) * 4).min(o.requests.max(1)),
        place_every: 0,
    };
    let _ = steady_state(o, &warmup)?;

    let mut cells = Vec::new();
    let mut tally = Tally::default();
    let mut per_transport_ok = [0u64; 2];
    let mut per_transport_secs = [0f64; 2];
    for tenant in &tenant_names {
        for (ti, transport) in [Transport::Tcp, Transport::Uds].into_iter().enumerate() {
            for backend in &backends {
                let slice = Slice {
                    tenants: vec![tenant.as_str()],
                    transport,
                    backend: backend.clone(),
                    requests: o.requests,
                    place_every: 0,
                };
                let (cell_tally, secs) = steady_state(o, &slice)?;
                let lat = cell_tally.sorted_predict_lat();
                let cell = MatrixCell {
                    tenant: tenant.clone(),
                    transport,
                    backend: backend.clone().unwrap_or_else(|| "default".to_string()),
                    rps: cell_tally.predict_ok as f64 / secs.max(1e-9),
                    p50_us: percentile(&lat, 0.50),
                    p95_us: percentile(&lat, 0.95),
                };
                obs::enable();
                let key = format!(
                    "serve.bench.matrix.{}.{}.{}",
                    cell.tenant,
                    cell.transport.as_str(),
                    cell.backend
                );
                obs::volatile_gauge(&format!("{key}.rps")).set(cell.rps);
                obs::volatile_gauge(&format!("{key}.p50_us")).set(cell.p50_us);
                obs::volatile_gauge(&format!("{key}.p95_us")).set(cell.p95_us);
                eprintln!(
                    "matrix {} {} {}: {:.0} rps, p50 {:.0}us, p95 {:.0}us",
                    cell.tenant,
                    cell.transport.as_str(),
                    cell.backend,
                    cell.rps,
                    cell.p50_us,
                    cell.p95_us
                );
                per_transport_ok[ti] += cell_tally.predict_ok;
                per_transport_secs[ti] += secs;
                tally.absorb(cell_tally);
                cells.push(cell);
            }
        }
    }
    let tcp_rps = per_transport_ok[0] as f64 / per_transport_secs[0].max(1e-9);
    let uds_rps = per_transport_ok[1] as f64 / per_transport_secs[1].max(1e-9);
    let total_secs = per_transport_secs[0] + per_transport_secs[1];
    let mut summary = summarize(&tally, total_secs);
    summary.tcp_rps = Some(tcp_rps);
    summary.uds_rps = Some(uds_rps);
    if o.drain {
        drain_phase(o)?;
        summary.drained = true;
    }
    write_report(o, &summary, "BENCH_serve_tenants.json");
    if summary.failed > 0 {
        return Err(serve_err(format!(
            "{} of {} matrix requests failed (first: {})",
            summary.failed,
            summary.sent,
            tally.first_failure.as_deref().unwrap_or("unknown"),
        )));
    }
    if o.require_uds_win && uds_rps <= tcp_rps {
        return Err(serve_err(format!(
            "uds transport did not out-serve tcp ({uds_rps:.0} rps vs {tcp_rps:.0} rps)"
        )));
    }
    Ok(summary)
}

/// Runs the benchmark in the selected mode.
///
/// # Errors
///
/// [`ClaraError::Serve`] (CLI exit code 7) when any request fails for a
/// reason other than a typed rejection, when the measured speedup misses
/// `require_speedup`, when the fairness experiment finds the victim
/// degraded (or the burster unthrottled), when `--require-uds-win` is
/// not met, or when the post-run drain fails.
pub fn run_bench(o: &BenchOptions) -> Result<BenchSummary, ClaraError> {
    if o.fairness {
        run_fairness(o)
    } else if o.matrix {
        run_matrix(o)
    } else {
        run_plain(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn tallies_keep_predict_and_place_pools_separate() {
        let mut t = Tally::default();
        t.record(BenchOp::Predict, Outcome::Ok, Duration::from_micros(100));
        t.record(BenchOp::Predict, Outcome::Ok, Duration::from_micros(200));
        t.record(BenchOp::Place, Outcome::Ok, Duration::from_micros(90_000));
        t.record(
            BenchOp::Predict,
            Outcome::QuotaExceeded,
            Duration::from_micros(50),
        );
        assert_eq!(t.sent, 4);
        assert_eq!(t.ok, 3);
        assert_eq!(t.predict_ok, 2);
        assert_eq!(t.place_ok, 1);
        assert_eq!(t.quota_exceeded, 1);
        assert_eq!(t.rejections(), 1);
        // The place outlier never reaches the predict pool: predict p99
        // stays at predict scale.
        assert_eq!(percentile(&t.sorted_predict_lat(), 0.99), 200.0);
        assert_eq!(percentile(&t.sorted_place_lat(), 0.99), 90_000.0);
        let mut total = Tally::default();
        total.absorb(t);
        assert_eq!(total.predict_lat_us.len(), 3);
        assert_eq!(total.place_lat_us.len(), 1);
    }
}
