//! The load generator behind `clara bench-serve`.
//!
//! Drives a running daemon over N persistent connections, measures
//! request throughput and latency percentiles client-side, optionally
//! fires an over-capacity burst (to exercise admission control) and a
//! sequential one-shot-CLI baseline (to quantify what warm state buys),
//! and lands everything in the standard `BENCH_*.json` report shape.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use clara_core::{ClaraError, Precision};
use clara_obs as obs;
use serde::Value;

use crate::protocol::{self, Request, WorkSpec};

/// What to throw at the server.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchOptions {
    /// Daemon address.
    pub addr: String,
    /// Total steady-state requests (split across `conns`).
    pub requests: usize,
    /// Concurrent persistent connections.
    pub conns: usize,
    /// Corpus element every steady-state request predicts.
    pub nf: String,
    /// Packets per steady-state request trace.
    pub packets: usize,
    /// Trace seed (fixed, so the warm cache can do its job).
    pub seed: u64,
    /// Over-capacity burst size (0 skips the burst phase). Each burst
    /// request uses a distinct seed and `burst_packets`, so none of them
    /// can be served from cache.
    pub burst: usize,
    /// Packets per burst request (heavy on purpose).
    pub burst_packets: usize,
    /// One-shot CLI invocations to time as the baseline (0 skips).
    pub baseline: usize,
    /// Model file for the baseline subprocesses (required when
    /// `baseline > 0`, so the baseline measures process startup + load,
    /// not training).
    pub model: Option<String>,
    /// Fail (exit 7) unless `rps / baseline_rps` reaches this.
    pub require_speedup: Option<f64>,
    /// Send a `drain` op after measuring and verify it succeeds.
    pub drain: bool,
    /// Report sink; defaults to `BENCH_serve.json` (a `CLARA_REPORT`
    /// env sink is honoured when this is unset).
    pub report: Option<String>,
    /// Device backend every request names (None: the server's default).
    pub backend: Option<String>,
    /// Inference precision every request names (None: the server's
    /// default). Also forwarded to the baseline subprocesses.
    pub precision: Option<Precision>,
    /// Interleave an `op:"place"` request for `nf` every N steady-state
    /// requests per connection (0 disables), so the bench also exercises
    /// the placement path against warm backend state.
    pub place_every: usize,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            addr: "127.0.0.1:4117".to_string(),
            requests: 200,
            conns: 4,
            nf: "cmsketch".to_string(),
            packets: 400,
            seed: 42,
            burst: 0,
            burst_packets: 3000,
            baseline: 0,
            model: None,
            require_speedup: None,
            drain: false,
            report: None,
            backend: None,
            precision: None,
            place_every: 0,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSummary {
    /// Requests sent (steady state + burst).
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed `overloaded` rejections (expected under burst; not failures).
    pub overloaded: u64,
    /// Anything else that went wrong.
    pub failed: u64,
    /// Steady-state successful requests per second.
    pub rps: f64,
    /// Steady-state latency percentiles, microseconds (nearest rank).
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// One-shot CLI requests per second (when a baseline ran).
    pub baseline_rps: Option<f64>,
    /// `rps / baseline_rps` (when a baseline ran).
    pub speedup: Option<f64>,
    /// Whether the post-run drain completed successfully.
    pub drained: bool,
}

fn serve_err(detail: String) -> ClaraError {
    ClaraError::Serve { detail }
}

/// Connects with retries (the daemon may still be starting up).
fn connect(addr: &str) -> Result<TcpStream, ClaraError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_read_timeout(Some(Duration::from_secs(120)))
                    .map_err(|e| serve_err(format!("cannot set read timeout: {e}")))?;
                // Small request frames; Nagle would stall them behind
                // delayed ACKs.
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(serve_err(format!("cannot connect to {addr}: {e}"))),
        }
    }
}

/// One request/response round trip on an established connection.
fn round_trip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Result<String, String> {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    stream
        .write_all(framed.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write failed: {e}"))?;
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(0) => Err("server closed the connection".to_string()),
        Ok(_) => Ok(resp.trim_end().to_string()),
        Err(e) => Err(format!("read failed: {e}")),
    }
}

/// How one response counts toward the tallies.
enum Outcome {
    Ok,
    Overloaded,
    Failed(String),
}

fn classify(resp: &str) -> Outcome {
    match serde_json::parse_value(resp) {
        Ok(v) => {
            if v.get("ok") == Some(&Value::Bool(true)) {
                Outcome::Ok
            } else if v.get("error") == Some(&Value::Str("overloaded".to_string())) {
                Outcome::Overloaded
            } else {
                Outcome::Failed(resp.to_string())
            }
        }
        Err(e) => Outcome::Failed(format!("unparseable response ({e}): {resp}")),
    }
}

#[derive(Default)]
struct Tally {
    sent: u64,
    ok: u64,
    overloaded: u64,
    failed: u64,
    first_failure: Option<String>,
    latencies_us: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.overloaded += other.overloaded;
        self.failed += other.failed;
        if self.first_failure.is_none() {
            self.first_failure = other.first_failure;
        }
        self.latencies_us.extend(other.latencies_us);
    }

    fn record(&mut self, outcome: Outcome, latency: Duration) {
        self.sent += 1;
        self.latencies_us.push(latency.as_micros() as f64);
        match outcome {
            Outcome::Ok => self.ok += 1,
            Outcome::Overloaded => self.overloaded += 1,
            Outcome::Failed(detail) => {
                self.failed += 1;
                if self.first_failure.is_none() {
                    self.first_failure = Some(detail);
                }
            }
        }
    }
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn steady_state(o: &BenchOptions) -> Result<(Tally, f64), ClaraError> {
    let conns = o.conns.max(1);
    let per_conn = o.requests / conns;
    let extra = o.requests % conns;
    let started = Instant::now();
    let mut total = Tally::default();
    let tallies: Vec<Result<Tally, ClaraError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let count = per_conn + usize::from(c < extra);
                scope.spawn(move || -> Result<Tally, ClaraError> {
                    let mut tally = Tally::default();
                    if count == 0 {
                        return Ok(tally);
                    }
                    let mut stream = connect(&o.addr)?;
                    let mut reader = BufReader::new(
                        stream
                            .try_clone()
                            .map_err(|e| serve_err(format!("cannot clone stream: {e}")))?,
                    );
                    for i in 0..count {
                        let id = (c * o.requests + i) as u64;
                        let req = if o.place_every > 0 && i % o.place_every == o.place_every - 1 {
                            let mut b = clara_core::PlacementRequest::builder([o.nf.as_str()])
                                .packets(o.packets)
                                .seed(o.seed);
                            if let Some(backend) = &o.backend {
                                b = b.backend(backend.as_str());
                            }
                            if let Some(p) = o.precision {
                                b = b.precision(p);
                            }
                            Request::Place(b.build())
                        } else {
                            Request::Predict(WorkSpec {
                                nf: o.nf.clone(),
                                packets: o.packets,
                                seed: o.seed,
                                small_flows: false,
                                backend: o.backend.clone(),
                                precision: o.precision,
                            })
                        };
                        let line = protocol::render_request(Some(id), &req);
                        let t0 = Instant::now();
                        match round_trip(&mut stream, &mut reader, &line) {
                            Ok(resp) => tally.record(classify(&resp), t0.elapsed()),
                            Err(e) => tally.record(Outcome::Failed(e), t0.elapsed()),
                        }
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench connection thread panicked"))
            .collect()
    });
    for t in tallies {
        total.absorb(t?);
    }
    Ok((total, started.elapsed().as_secs_f64()))
}

/// Fires `burst` one-shot connections at once, each with a heavy,
/// distinctly-seeded predict, to push the queue past capacity.
fn burst_phase(o: &BenchOptions) -> Tally {
    let mut total = Tally::default();
    let tallies: Vec<Tally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.burst)
            .map(|i| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let t0 = Instant::now();
                    let outcome = (|| -> Result<Outcome, String> {
                        let mut stream =
                            connect(&o.addr).map_err(|e| format!("burst connect: {e}"))?;
                        let mut reader = BufReader::new(
                            stream.try_clone().map_err(|e| format!("clone: {e}"))?,
                        );
                        let line = protocol::render_request(
                            Some(1_000_000 + i as u64),
                            &Request::Predict(WorkSpec {
                                nf: o.nf.clone(),
                                packets: o.burst_packets,
                                seed: 1_000_000 + i as u64,
                                small_flows: false,
                                backend: o.backend.clone(),
                                precision: o.precision,
                            }),
                        );
                        round_trip(&mut stream, &mut reader, &line).map(|r| classify(&r))
                    })();
                    match outcome {
                        Ok(oc) => tally.record(oc, t0.elapsed()),
                        Err(e) => tally.record(Outcome::Failed(e), t0.elapsed()),
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst thread panicked"))
            .collect()
    });
    for t in tallies {
        total.absorb(t);
    }
    total
}

/// Times `baseline` sequential one-shot `clara predict` subprocesses.
fn baseline_phase(o: &BenchOptions) -> Result<f64, ClaraError> {
    let model = o.model.as_ref().ok_or_else(|| {
        serve_err("--baseline needs --model so one-shot runs load instead of train".to_string())
    })?;
    let exe = std::env::current_exe()
        .map_err(|e| serve_err(format!("cannot locate own executable: {e}")))?;
    let started = Instant::now();
    for _ in 0..o.baseline {
        let mut cmd = Command::new(&exe);
        cmd.arg("predict")
            .arg(&o.nf)
            .arg("--model")
            .arg(model)
            .arg("--packets")
            .arg(o.packets.to_string())
            .arg("--seed")
            .arg(o.seed.to_string());
        if let Some(p) = o.precision {
            cmd.arg("--precision").arg(p.as_str());
        }
        let status = cmd
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map_err(|e| serve_err(format!("cannot spawn baseline subprocess: {e}")))?;
        if !status.success() {
            return Err(serve_err(format!(
                "baseline `clara predict` run failed with {status}"
            )));
        }
    }
    let secs = started.elapsed().as_secs_f64();
    Ok(o.baseline as f64 / secs.max(1e-9))
}

fn drain_phase(o: &BenchOptions) -> Result<(), ClaraError> {
    let mut stream = connect(&o.addr)?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| serve_err(format!("cannot clone stream: {e}")))?,
    );
    let line = protocol::render_request(None, &Request::Drain);
    let resp = round_trip(&mut stream, &mut reader, &line).map_err(serve_err)?;
    match classify(&resp) {
        Outcome::Ok => Ok(()),
        _ => Err(serve_err(format!("drain did not succeed: {resp}"))),
    }
}

fn write_report(o: &BenchOptions, s: &BenchSummary) {
    obs::enable();
    obs::volatile_gauge("serve.bench.rps").set(s.rps);
    obs::volatile_gauge("serve.bench.p50_us").set(s.p50_us);
    obs::volatile_gauge("serve.bench.p95_us").set(s.p95_us);
    obs::volatile_gauge("serve.bench.p99_us").set(s.p99_us);
    obs::volatile_gauge("serve.bench.sent").set(s.sent as f64);
    obs::volatile_gauge("serve.bench.ok").set(s.ok as f64);
    obs::volatile_gauge("serve.bench.overloaded").set(s.overloaded as f64);
    if let Some(b) = s.baseline_rps {
        obs::volatile_gauge("serve.bench.baseline_rps").set(b);
    }
    if let Some(x) = s.speedup {
        obs::volatile_gauge("serve.bench.speedup").set(x);
    }
    let raw = o
        .report
        .clone()
        .or_else(obs::sink_from_env)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let path = obs::resolve_sink(&raw, "BENCH_serve.json");
    if let Err(e) = obs::RunReport::capture().write(&path) {
        eprintln!("warning: could not write report to {}: {e}", path.display());
    } else {
        eprintln!("wrote report to {}", path.display());
    }
}

/// Runs the full benchmark: steady state, optional burst, optional
/// baseline, report, optional drain.
///
/// # Errors
///
/// [`ClaraError::Serve`] (CLI exit code 7) when any request fails for a
/// reason other than a typed `overloaded` rejection, when the measured
/// speedup misses `require_speedup`, or when the post-run drain fails.
pub fn run_bench(o: &BenchOptions) -> Result<BenchSummary, ClaraError> {
    let (mut tally, steady_secs) = steady_state(o)?;
    let steady_ok = tally.ok;
    let mut steady_lat = tally.latencies_us.clone();
    steady_lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    if o.burst > 0 {
        tally.absorb(burst_phase(o));
    }
    let rps = steady_ok as f64 / steady_secs.max(1e-9);
    let baseline_rps = if o.baseline > 0 {
        Some(baseline_phase(o)?)
    } else {
        None
    };
    let speedup = baseline_rps.map(|b| rps / b.max(1e-9));
    let mut summary = BenchSummary {
        sent: tally.sent,
        ok: tally.ok,
        overloaded: tally.overloaded,
        failed: tally.failed,
        rps,
        p50_us: percentile(&steady_lat, 0.50),
        p95_us: percentile(&steady_lat, 0.95),
        p99_us: percentile(&steady_lat, 0.99),
        baseline_rps,
        speedup,
        drained: false,
    };
    if o.drain {
        drain_phase(o)?;
        summary.drained = true;
    }
    write_report(o, &summary);
    if summary.failed > 0 {
        return Err(serve_err(format!(
            "{} of {} requests failed (first: {})",
            summary.failed,
            summary.sent,
            tally.first_failure.as_deref().unwrap_or("unknown"),
        )));
    }
    if let Some(min) = o.require_speedup {
        match summary.speedup {
            Some(x) if x >= min => {}
            Some(x) => {
                return Err(serve_err(format!(
                    "speedup {x:.2}x is below the required {min:.2}x"
                )))
            }
            None => {
                return Err(serve_err(
                    "--require-speedup needs --baseline to measure against".to_string(),
                ))
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn nearest_rank_percentiles() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
