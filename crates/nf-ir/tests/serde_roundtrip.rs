//! Modules serialize to JSON and back without loss (model persistence).

use nf_ir::{
    ApiCall, BinOp, FunctionBuilder, MemRef, Module, Operand, PktField, Pred, StateKind, Ty,
};

fn sample() -> Module {
    let mut m = Module::new("serde");
    let g = m.add_global("tbl", StateKind::HashMap, 16, 128);
    let mut fb = FunctionBuilder::new("process");
    let e = fb.entry_block();
    let hit = fb.block();
    let miss = fb.block();
    fb.switch_to(e);
    let src = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
    let f = fb.call(ApiCall::HashMapFind(g), vec![src]).unwrap();
    let ok = fb.icmp(Pred::Ne, Ty::I32, f, Operand::imm(0));
    fb.cond_br(ok, hit, miss);
    fb.switch_to(hit);
    let s = fb.bin(BinOp::Sub, Ty::I32, f, Operand::imm(1));
    let v = fb.load(Ty::I32, MemRef::global_at(g, s, 8));
    fb.ret(Some(v));
    fb.switch_to(miss);
    fb.ret(None);
    m.funcs.push(fb.finish());
    m
}

#[test]
fn json_round_trip_preserves_module() {
    let m = sample();
    let json = serde_json::to_string(&m).expect("serializes");
    let back: Module = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(m, back);
    nf_ir::verify::verify_module(&back).expect("still verifies");
}

#[test]
fn textual_and_json_forms_agree() {
    let m = sample();
    let json = serde_json::to_string(&m).unwrap();
    let back: Module = serde_json::from_str(&json).unwrap();
    assert_eq!(nf_ir::print::module(&m), nf_ir::print::module(&back));
}
