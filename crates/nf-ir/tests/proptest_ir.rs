//! Property tests: random well-formed functions verify and round-trip
//! through the printer/parser.

use proptest::prelude::*;

use nf_ir::{
    print, verify, ApiCall, BinOp, CastOp, FunctionBuilder, MemRef, Module, Operand, PktField,
    Pred, StateKind, Ty,
};

/// A recipe for one random instruction inside a straight-line region.
#[derive(Debug, Clone)]
enum InstRecipe {
    Bin(BinOp, Ty, i64),
    Icmp(Pred, Ty, i64),
    Cast(CastOp, Ty, Ty),
    LoadPkt(PktField, Ty),
    LoadGlobal(u8, Ty),
    StoreGlobal(u8, Ty),
    LoadStack(u8, Ty),
    StoreStack(u8, Ty),
    Call(u8),
    Select(Ty),
}

fn arb_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::I8), Just(Ty::I16), Just(Ty::I32), Just(Ty::I64),]
}

fn arb_field() -> impl Strategy<Value = PktField> {
    prop_oneof![
        proptest::sample::select(PktField::HEADER_FIELDS.to_vec()),
        (0u16..64).prop_map(PktField::Payload),
    ]
}

fn arb_recipe() -> impl Strategy<Value = InstRecipe> {
    prop_oneof![
        (
            proptest::sample::select(BinOp::ALL.to_vec()),
            arb_ty(),
            -100_000i64..1_000_000
        )
            .prop_map(|(op, ty, c)| InstRecipe::Bin(op, ty, c)),
        (
            proptest::sample::select(Pred::ALL.to_vec()),
            arb_ty(),
            0i64..70_000
        )
            .prop_map(|(p, ty, c)| InstRecipe::Icmp(p, ty, c)),
        (arb_ty(), arb_ty()).prop_map(|(a, b)| InstRecipe::Cast(
            if a.bits() < b.bits() {
                CastOp::Zext
            } else {
                CastOp::Trunc
            },
            a,
            b
        )),
        (arb_field(), arb_ty()).prop_map(|(f, ty)| InstRecipe::LoadPkt(f, ty)),
        (0u8..3, arb_ty()).prop_map(|(g, ty)| InstRecipe::LoadGlobal(g, ty)),
        (0u8..3, arb_ty()).prop_map(|(g, ty)| InstRecipe::StoreGlobal(g, ty)),
        (0u8..4, arb_ty()).prop_map(|(s, ty)| InstRecipe::LoadStack(s, ty)),
        (0u8..4, arb_ty()).prop_map(|(s, ty)| InstRecipe::StoreStack(s, ty)),
        (0u8..5).prop_map(InstRecipe::Call),
        arb_ty().prop_map(InstRecipe::Select),
    ]
}

/// Builds a random module: a diamond CFG whose blocks hold random
/// instructions, with a couple of globals and stack slots.
fn build_module(name: &str, recipes: &[Vec<InstRecipe>]) -> Module {
    let mut m = Module::new(name.to_string());
    let g0 = m.add_global("tbl", StateKind::HashMap, 16, 256);
    let g1 = m.add_global("ctr", StateKind::Scalar, 4, 1);
    let g2 = m.add_global("vec", StateKind::Vector, 8, 64);
    let globals = [g0, g1, g2];

    let mut fb = FunctionBuilder::new("process");
    let p = fb.param(Ty::I32);
    let slots: Vec<u32> = (0..4).map(|_| fb.slot()).collect();

    let nblocks = recipes.len().max(1);
    let blocks: Vec<_> = (0..nblocks).map(|_| fb.block()).collect();

    let mut last_val = p;
    for (i, bb) in blocks.iter().enumerate() {
        fb.switch_to(*bb);
        let mut last_bool: Option<Operand> = None;
        for r in recipes.get(i).map(|v| v.as_slice()).unwrap_or(&[]) {
            match r {
                InstRecipe::Bin(op, ty, c) => {
                    last_val = fb.bin(*op, *ty, last_val, Operand::imm(*c));
                }
                InstRecipe::Icmp(pr, ty, c) => {
                    last_bool = Some(fb.icmp(*pr, *ty, last_val, Operand::imm(*c)));
                }
                InstRecipe::Cast(op, a, b) => {
                    last_val = fb.cast(*op, *a, *b, last_val);
                }
                InstRecipe::LoadPkt(f, ty) => {
                    last_val = fb.load(*ty, MemRef::pkt(*f));
                }
                InstRecipe::LoadGlobal(g, ty) => {
                    let g = globals[*g as usize % globals.len()];
                    last_val = fb.load(*ty, MemRef::global_at(g, last_val, 0));
                }
                InstRecipe::StoreGlobal(g, ty) => {
                    let g = globals[*g as usize % globals.len()];
                    fb.store(*ty, last_val, MemRef::global(g));
                }
                InstRecipe::LoadStack(s, ty) => {
                    let s = slots[*s as usize % slots.len()];
                    last_val = fb.load(*ty, MemRef::stack(s));
                }
                InstRecipe::StoreStack(s, ty) => {
                    let s = slots[*s as usize % slots.len()];
                    fb.store(*ty, last_val, MemRef::stack(s));
                }
                InstRecipe::Call(which) => {
                    let api = match which % 5 {
                        0 => ApiCall::IpHeader,
                        1 => ApiCall::HashMapFind(g0),
                        2 => ApiCall::ChecksumUpdate,
                        3 => ApiCall::Timestamp,
                        _ => ApiCall::VectorGet(g2),
                    };
                    if let Some(v) = fb.call(api, vec![last_val]) {
                        last_val = v;
                    }
                }
                InstRecipe::Select(ty) => {
                    if let Some(b) = last_bool {
                        last_val = fb.select(*ty, b, last_val, Operand::imm(0));
                    }
                }
            }
        }
        // Chain blocks linearly; last returns.
        if i + 1 < nblocks {
            match last_bool {
                Some(c) if i + 2 < nblocks => {
                    fb.cond_br(c, blocks[i + 1], blocks[i + 2]);
                }
                _ => fb.br(blocks[i + 1]),
            }
        } else {
            fb.ret(Some(last_val));
        }
    }
    // Conditional skips may leave middle blocks unreached but they are
    // still structurally valid; every block got a terminator or finish()
    // adds ret.
    m.funcs.push(fb.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_functions_verify(recipes in proptest::collection::vec(
        proptest::collection::vec(arb_recipe(), 0..12), 1..6)) {
        let m = build_module("prop", &recipes);
        verify::verify_module(&m).expect("random module should verify");
    }

    #[test]
    fn print_parse_round_trip(recipes in proptest::collection::vec(
        proptest::collection::vec(arb_recipe(), 0..12), 1..6)) {
        let m = build_module("prop", &recipes);
        let text = print::module(&m);
        let parsed = nf_ir::parse::parse_module(&text).expect("printed module should parse");
        prop_assert_eq!(&parsed, &m);
        // Printing again is a fixed point.
        prop_assert_eq!(print::module(&parsed), text);
    }

    #[test]
    fn abstraction_is_name_independent(recipes in proptest::collection::vec(
        proptest::collection::vec(arb_recipe(), 1..12), 1..4)) {
        // Two modules with identical shapes but different names abstract
        // to identical token sequences.
        let a = build_module("alpha", &recipes);
        let b = build_module("beta", &recipes);
        let sa = nf_ir::ModuleStats::of_module(&a);
        let sb = nf_ir::ModuleStats::of_module(&b);
        prop_assert_eq!(sa.token_histogram, sb.token_histogram);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics on arbitrary input — it returns errors.
    #[test]
    fn parser_is_total_on_garbage(input in ".{0,400}") {
        let _ = nf_ir::parse::parse_module(&input);
    }

    /// Mutating single lines of valid IR text never panics the parser.
    #[test]
    fn parser_is_total_on_mutations(
        recipes in proptest::collection::vec(
            proptest::collection::vec(arb_recipe(), 0..8), 1..4),
        line in 0usize..64,
        junk in "[ -~]{0,30}",
    ) {
        let m = build_module("mut", &recipes);
        let text = print::module(&m);
        let mut lines: Vec<&str> = text.lines().collect();
        let junk_line = junk.as_str();
        if line < lines.len() {
            lines[line] = junk_line;
        }
        let mutated = lines.join("\n");
        let _ = nf_ir::parse::parse_module(&mutated);
    }
}
