//! A convenience builder for constructing well-formed NIR functions.

use crate::inst::{ApiCall, BinOp, CastOp, Inst, MemRef, Operand, Pred, Term, ValueId};
use crate::module::{Block, BlockId, Function, Ty};

/// Incrementally builds a [`Function`].
///
/// Blocks are created up front (allowing forward branch targets), filled by
/// switching the *current* block, and terminated explicitly. [`finish`]
/// gives every unterminated block a `ret` so the result always verifies.
///
/// [`finish`]: FunctionBuilder::finish
///
/// # Examples
///
/// ```
/// use nf_ir::{FunctionBuilder, Ty, Operand, BinOp};
///
/// let mut fb = FunctionBuilder::new("double");
/// let p = fb.param(Ty::I32);
/// let bb = fb.entry_block();
/// fb.switch_to(bb);
/// let r = fb.bin(BinOp::Shl, Ty::I32, p, Operand::imm(1));
/// fb.ret(Some(r));
/// let f = fb.finish();
/// assert_eq!(f.blocks.len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: Vec<(ValueId, Ty)>,
    blocks: Vec<(BlockId, Vec<Inst>, Option<Term>)>,
    current: Option<usize>,
    next_value: u32,
    next_slot: u32,
}

impl FunctionBuilder {
    /// Creates a builder for a function with the given name.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            params: Vec::new(),
            blocks: Vec::new(),
            current: None,
            next_value: 0,
            next_slot: 0,
        }
    }

    /// Declares a parameter and returns it as an operand.
    pub fn param(&mut self, ty: Ty) -> Operand {
        let v = self.fresh();
        self.params.push((v, ty));
        Operand::Value(v)
    }

    /// Allocates a fresh stack slot (a stateless local variable).
    pub fn slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Creates the entry block (block 0). Must be called exactly once, first.
    pub fn entry_block(&mut self) -> BlockId {
        assert!(self.blocks.is_empty(), "entry block must be created first");
        self.block()
    }

    /// Creates a new (empty, unterminated) block and returns its id.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((id, Vec::new(), None));
        id
    }

    /// Makes `bb` the current insertion point.
    ///
    /// # Panics
    ///
    /// Panics if `bb` was not created by this builder.
    pub fn switch_to(&mut self, bb: BlockId) {
        assert!((bb.index()) < self.blocks.len(), "unknown block {:?}", bb);
        self.current = Some(bb.index());
    }

    /// The current block, if one is selected.
    pub fn current_block(&self) -> Option<BlockId> {
        self.current.map(|i| BlockId(i as u32))
    }

    fn fresh(&mut self) -> ValueId {
        let v = ValueId(self.next_value);
        self.next_value += 1;
        v
    }

    fn push(&mut self, inst: Inst) {
        let idx = self.current.expect("no current block; call switch_to");
        let (_, insts, term) = &mut self.blocks[idx];
        assert!(term.is_none(), "current block already terminated");
        insts.push(inst);
    }

    fn terminate(&mut self, term: Term) {
        let idx = self.current.expect("no current block; call switch_to");
        let slot = &mut self.blocks[idx].2;
        assert!(slot.is_none(), "block already terminated");
        *slot = Some(term);
    }

    /// Emits a binary operation and returns its result.
    pub fn bin(
        &mut self,
        op: BinOp,
        ty: Ty,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Bin {
            dst,
            op,
            ty,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        Operand::Value(dst)
    }

    /// Emits a comparison and returns its boolean result.
    pub fn icmp(
        &mut self,
        pred: Pred,
        ty: Ty,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Icmp {
            dst,
            pred,
            ty,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        Operand::Value(dst)
    }

    /// Emits a width cast and returns its result.
    pub fn cast(&mut self, op: CastOp, from: Ty, to: Ty, src: impl Into<Operand>) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Cast {
            dst,
            op,
            from,
            to,
            src: src.into(),
        });
        Operand::Value(dst)
    }

    /// Emits a select and returns its result.
    pub fn select(
        &mut self,
        ty: Ty,
        cond: impl Into<Operand>,
        on_true: impl Into<Operand>,
        on_false: impl Into<Operand>,
    ) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Select {
            dst,
            ty,
            cond: cond.into(),
            on_true: on_true.into(),
            on_false: on_false.into(),
        });
        Operand::Value(dst)
    }

    /// Emits a load and returns the loaded value.
    pub fn load(&mut self, ty: Ty, mem: MemRef) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Load { dst, ty, mem });
        Operand::Value(dst)
    }

    /// Emits a store.
    pub fn store(&mut self, ty: Ty, val: impl Into<Operand>, mem: MemRef) {
        self.push(Inst::Store {
            ty,
            val: val.into(),
            mem,
        });
    }

    /// Emits a framework API call, returning its result if the API has one.
    pub fn call(&mut self, api: ApiCall, args: Vec<Operand>) -> Option<Operand> {
        let dst = if api.has_result() {
            Some(self.fresh())
        } else {
            None
        };
        self.push(Inst::Call { dst, api, args });
        dst.map(Operand::Value)
    }

    /// Emits a phi node and returns its result.
    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, Operand)>) -> Operand {
        let dst = self.fresh();
        self.push(Inst::Phi { dst, ty, incomings });
        Operand::Value(dst)
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Term::Br { target });
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Term::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Term::Ret { val });
    }

    /// Finishes construction; unterminated blocks receive `ret`.
    ///
    /// # Panics
    ///
    /// Panics if no block was ever created.
    pub fn finish(self) -> Function {
        assert!(!self.blocks.is_empty(), "function has no blocks");
        let blocks = self
            .blocks
            .into_iter()
            .map(|(id, insts, term)| Block {
                id,
                insts,
                term: term.unwrap_or(Term::Ret { val: None }),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            blocks,
            next_value: self.next_value,
            next_slot: self.next_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::GlobalId;
    use crate::verify::verify_function;

    #[test]
    fn builds_branching_function_that_verifies() {
        let mut fb = FunctionBuilder::new("branchy");
        let p = fb.param(Ty::I32);
        let entry = fb.entry_block();
        let then_bb = fb.block();
        let else_bb = fb.block();
        let join = fb.block();

        fb.switch_to(entry);
        let c = fb.icmp(Pred::ULt, Ty::I32, p, Operand::imm(10));
        fb.cond_br(c, then_bb, else_bb);

        fb.switch_to(then_bb);
        let a = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
        fb.br(join);

        fb.switch_to(else_bb);
        let b = fb.bin(BinOp::Sub, Ty::I32, p, Operand::imm(1));
        fb.br(join);

        fb.switch_to(join);
        let r = fb.phi(Ty::I32, vec![(then_bb, a), (else_bb, b)]);
        fb.ret(Some(r));

        let f = fb.finish();
        assert_eq!(f.blocks.len(), 4);
        verify_function(&f).expect("function should verify");
    }

    #[test]
    fn finish_terminates_dangling_blocks() {
        let mut fb = FunctionBuilder::new("dangling");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let f = fb.finish();
        assert!(matches!(f.blocks[0].term, Term::Ret { val: None }));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn pushing_after_terminator_panics() {
        let mut fb = FunctionBuilder::new("bad");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        fb.ret(None);
        fb.store(Ty::I32, Operand::imm(0), MemRef::global(GlobalId(0)));
    }

    #[test]
    fn slots_are_sequential() {
        let mut fb = FunctionBuilder::new("slots");
        assert_eq!(fb.slot(), 0);
        assert_eq!(fb.slot(), 1);
        let _ = fb.entry_block();
        let f = fb.finish();
        assert_eq!(f.next_slot, 2);
    }
}
