//! Control-flow graph construction and simple structural analyses.

use std::collections::VecDeque;

use crate::module::{BlockId, Function};

/// A control-flow graph over a function's basic blocks.
///
/// Nodes are basic blocks; edges are branch/fallthrough relations as in the
/// paper's program-preparation step (Section 3.1).
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` = successor blocks of block `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = predecessor blocks of block `b`.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn build(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for block in &func.blocks {
            for succ in block.term.successors() {
                succs[block.id.index()].push(succ);
                preds[succ.index()].push(block.id);
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks reachable from the entry, in BFS order.
    pub fn reachable(&self) -> Vec<BlockId> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut seen = vec![false; self.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([BlockId(0)]);
        seen[0] = true;
        while let Some(b) = queue.pop_front() {
            order.push(b);
            for &s in &self.succs[b.index()] {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        order
    }

    /// Back edges `(from, to)` where `to` is an ancestor of `from` in a DFS
    /// spanning tree — each indicates a loop.
    pub fn back_edges(&self) -> Vec<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let mut color = vec![Color::White; n];
        let mut out = Vec::new();
        // Iterative DFS with an explicit stack of (node, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = Color::Grey;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.succs[node].len() {
                let succ = self.succs[node][*next].index();
                *next += 1;
                match color[succ] {
                    Color::White => {
                        color[succ] = Color::Grey;
                        stack.push((succ, 0));
                    }
                    Color::Grey => out.push((BlockId(node as u32), BlockId(succ as u32))),
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        out
    }

    /// Number of loops (back edges) in the function.
    pub fn loop_count(&self) -> usize {
        self.back_edges().len()
    }

    /// Blocks that belong to some loop body (conservatively: blocks on a
    /// path from a back-edge target to its source).
    pub fn loop_blocks(&self) -> Vec<BlockId> {
        let mut in_loop = vec![false; self.len()];
        for (from, to) in self.back_edges() {
            // Natural-loop body: `to` (header), `from` (latch), and every
            // block that reaches `from` without passing through `to`.
            let mut body = vec![false; self.len()];
            body[to.index()] = true;
            body[from.index()] = true;
            let mut queue = VecDeque::from([from]);
            while let Some(b) = queue.pop_front() {
                for &p in &self.preds[b.index()] {
                    if !body[p.index()] {
                        body[p.index()] = true;
                        queue.push_back(p);
                    }
                }
            }
            for (i, &b) in body.iter().enumerate() {
                if b {
                    in_loop[i] = true;
                }
            }
        }
        in_loop
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(BlockId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Operand, Pred};
    use crate::module::Ty;

    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("diamond");
        let p = fb.param(Ty::I32);
        let e = fb.entry_block();
        let t = fb.block();
        let f = fb.block();
        let j = fb.block();
        fb.switch_to(e);
        let c = fb.icmp(Pred::Eq, Ty::I32, p, Operand::imm(0));
        fb.cond_br(c, t, f);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(f);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.finish()
    }

    fn looped() -> Function {
        let mut fb = FunctionBuilder::new("loop");
        let p = fb.param(Ty::I32);
        let e = fb.entry_block();
        let head = fb.block();
        let body = fb.block();
        let exit = fb.block();
        fb.switch_to(e);
        fb.br(head);
        fb.switch_to(head);
        let c = fb.icmp(Pred::ULt, Ty::I32, p, Operand::imm(8));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let _ = fb.bin(BinOp::Add, Ty::I32, p, Operand::imm(1));
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn diamond_cfg_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        assert_eq!(cfg.reachable().len(), 4);
        assert_eq!(cfg.loop_count(), 0);
    }

    #[test]
    fn loop_detection() {
        let f = looped();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.loop_count(), 1);
        let loop_blocks = cfg.loop_blocks();
        // Header (bb1) and latch (bb2) are in the loop; entry and exit not.
        assert!(loop_blocks.contains(&BlockId(1)));
        assert!(loop_blocks.contains(&BlockId(2)));
        assert!(!loop_blocks.contains(&BlockId(0)));
        assert!(!loop_blocks.contains(&BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_excluded() {
        let mut fb = FunctionBuilder::new("unreach");
        let e = fb.entry_block();
        let dead = fb.block();
        fb.switch_to(e);
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reachable().len(), 1);
    }
}
