//! Parser for the textual NIR format emitted by [`crate::print`].

use std::fmt;

use crate::inst::{ApiCall, BinOp, CastOp, Inst, MemRef, Operand, PktField, Pred, Term, ValueId};
use crate::module::{Block, BlockId, Function, GlobalId, Module, StateKind, Ty};

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: msg.into(),
    })
}

/// Parses a module from its textual form.
///
/// The accepted grammar is exactly what [`crate::print::module`] emits;
/// `print(parse(print(m))) == print(m)` holds for every valid module (see
/// the crate's property tests).
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::default();
    let mut lines = text.lines().enumerate().peekable();

    // Header.
    let (ln, first) = match lines.next() {
        Some(pair) => pair,
        None => return err(1, "empty input"),
    };
    let first = first.trim();
    let name = first
        .strip_prefix("module @")
        .and_then(|rest| rest.strip_suffix(" {"))
        .ok_or_else(|| ParseError {
            line: ln + 1,
            message: "expected `module @name {`".into(),
        })?;
    module.name = name.to_string();

    while let Some(&(ln, raw)) = lines.peek() {
        let line = raw.trim();
        if line.is_empty() {
            lines.next();
            continue;
        }
        if line == "}" {
            lines.next();
            return Ok(module);
        }
        if line.starts_with("global ") {
            lines.next();
            let g = parse_global(ln + 1, line)?;
            if g.id.index() != module.globals.len() {
                return err(ln + 1, "globals must appear in id order");
            }
            module.globals.push(g);
        } else if line.starts_with("func @") {
            lines.next();
            let func = parse_function(ln + 1, line, &mut lines)?;
            module.funcs.push(func);
        } else {
            return err(ln + 1, format!("unexpected line: {line}"));
        }
    }
    err(text.lines().count(), "unterminated module (missing `}`)")
}

fn parse_global(ln: usize, line: &str) -> Result<crate::module::GlobalDef, ParseError> {
    // global @0 name : kind entry=16 n=1024
    let rest = line.strip_prefix("global @").unwrap_or(line);
    let mut parts = rest.split_whitespace();
    let id: u32 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError {
            line: ln,
            message: "bad global id".into(),
        })?;
    let name = parts.next().unwrap_or_default().to_string();
    if parts.next() != Some(":") {
        return err(ln, "expected `:` in global");
    }
    let kind = parts
        .next()
        .and_then(StateKind::from_name)
        .ok_or_else(|| ParseError {
            line: ln,
            message: "bad state kind".into(),
        })?;
    let entry_bytes = parse_kv(ln, parts.next(), "entry")?;
    let entries = parse_kv(ln, parts.next(), "n")?;
    let flow = if kind == StateKind::FlowTable {
        // ... idle=32 hard=256 evict=lru
        let idle_timeout = parse_kv(ln, parts.next(), "idle")?;
        let hard_timeout = parse_kv(ln, parts.next(), "hard")?;
        let evict = parts
            .next()
            .and_then(|s| s.strip_prefix("evict="))
            .and_then(crate::module::EvictPolicy::from_name)
            .ok_or_else(|| ParseError {
                line: ln,
                message: "expected `evict=lru|random`".into(),
            })?;
        Some(crate::module::FlowSpec {
            idle_timeout,
            hard_timeout,
            evict,
        })
    } else {
        None
    };
    Ok(crate::module::GlobalDef {
        id: GlobalId(id),
        name,
        kind,
        entry_bytes,
        entries,
        flow,
    })
}

fn parse_kv(ln: usize, item: Option<&str>, key: &str) -> Result<u32, ParseError> {
    item.and_then(|s| s.strip_prefix(key))
        .and_then(|s| s.strip_prefix('='))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected `{key}=<u32>`"),
        })
}

fn parse_function<'a>(
    header_ln: usize,
    header: &str,
    lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'a str)>>,
) -> Result<Function, ParseError> {
    // func @name(%0: i32, %1: i16) slots=2 values=9 {
    let rest = header.strip_prefix("func @").unwrap_or(header);
    let paren = rest.find('(').ok_or_else(|| ParseError {
        line: header_ln,
        message: "missing `(`".into(),
    })?;
    let name = rest[..paren].to_string();
    let close = rest.find(')').ok_or_else(|| ParseError {
        line: header_ln,
        message: "missing `)`".into(),
    })?;
    let mut params = Vec::new();
    let param_str = &rest[paren + 1..close];
    if !param_str.trim().is_empty() {
        for p in param_str.split(',') {
            let p = p.trim();
            let (v, ty) = p.split_once(": ").ok_or_else(|| ParseError {
                line: header_ln,
                message: "bad parameter".into(),
            })?;
            let vid = parse_value(header_ln, v)?;
            let ty = Ty::from_name(ty).ok_or_else(|| ParseError {
                line: header_ln,
                message: "bad param type".into(),
            })?;
            params.push((vid, ty));
        }
    }
    let tail = &rest[close + 1..];
    let mut slots = 0;
    let mut values = 0;
    for tok in tail.split_whitespace() {
        if let Some(v) = tok.strip_prefix("slots=") {
            slots = v.parse().map_err(|_| ParseError {
                line: header_ln,
                message: "bad slots".into(),
            })?;
        } else if let Some(v) = tok.strip_prefix("values=") {
            values = v.parse().map_err(|_| ParseError {
                line: header_ln,
                message: "bad values".into(),
            })?;
        }
    }

    let mut blocks: Vec<Block> = Vec::new();
    let mut cur: Option<(BlockId, Vec<Inst>, Option<Term>)> = None;
    loop {
        let (ln, raw) = match lines.next() {
            Some(pair) => pair,
            None => return err(header_ln, "unterminated function"),
        };
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            if let Some((id, insts, term)) = cur.take() {
                blocks.push(finish_block(ln + 1, id, insts, term)?);
            }
            break;
        }
        if let Some(bb) = line.strip_prefix("bb").and_then(|s| s.strip_suffix(':')) {
            let id: u32 = bb.parse().map_err(|_| ParseError {
                line: ln + 1,
                message: "bad block label".into(),
            })?;
            if let Some((pid, insts, term)) = cur.take() {
                blocks.push(finish_block(ln + 1, pid, insts, term)?);
            }
            cur = Some((BlockId(id), Vec::new(), None));
            continue;
        }
        let slot = match &mut cur {
            Some(s) => s,
            None => return err(ln + 1, "instruction outside block"),
        };
        if let Some(t) = try_parse_term(ln + 1, line)? {
            if slot.2.is_some() {
                return err(ln + 1, "block has two terminators");
            }
            slot.2 = Some(t);
        } else {
            if slot.2.is_some() {
                return err(ln + 1, "instruction after terminator");
            }
            slot.1.push(parse_inst(ln + 1, line)?);
        }
    }
    Ok(Function {
        name,
        params,
        blocks,
        next_value: values,
        next_slot: slots,
    })
}

fn finish_block(
    ln: usize,
    id: BlockId,
    insts: Vec<Inst>,
    term: Option<Term>,
) -> Result<Block, ParseError> {
    match term {
        Some(term) => Ok(Block { id, insts, term }),
        None => err(ln, format!("bb{} lacks a terminator", id.0)),
    }
}

fn parse_value(ln: usize, s: &str) -> Result<ValueId, ParseError> {
    s.strip_prefix('%')
        .and_then(|n| n.parse().ok())
        .map(ValueId)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected %value, got `{s}`"),
        })
}

fn parse_operand(ln: usize, s: &str) -> Result<Operand, ParseError> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('%') {
        return n
            .parse()
            .map(|v| Operand::Value(ValueId(v)))
            .map_err(|_| ParseError {
                line: ln,
                message: format!("bad value `{s}`"),
            });
    }
    s.parse().map(Operand::Const).map_err(|_| ParseError {
        line: ln,
        message: format!("bad operand `{s}`"),
    })
}

fn parse_mem(ln: usize, s: &str) -> Result<MemRef, ParseError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("slot[") {
        let n = rest.strip_suffix(']').ok_or_else(|| ParseError {
            line: ln,
            message: "bad slot ref".into(),
        })?;
        return Ok(MemRef::Stack {
            slot: n.parse().map_err(|_| ParseError {
                line: ln,
                message: "bad slot number".into(),
            })?,
        });
    }
    if let Some(rest) = s.strip_prefix("pkt.") {
        let field = PktField::from_name(rest).ok_or_else(|| ParseError {
            line: ln,
            message: format!("unknown packet field `{rest}`"),
        })?;
        return Ok(MemRef::Pkt { field });
    }
    if let Some(rest) = s.strip_prefix('@') {
        // Forms: @2 | @2[+8] | @2[%5] | @2[%5+8]
        if let Some(br) = rest.find('[') {
            let gid: u32 = rest[..br].parse().map_err(|_| ParseError {
                line: ln,
                message: "bad global id".into(),
            })?;
            let inner = rest[br + 1..].strip_suffix(']').ok_or_else(|| ParseError {
                line: ln,
                message: "missing `]`".into(),
            })?;
            if let Some(off) = inner.strip_prefix('+') {
                return Ok(MemRef::Global {
                    global: GlobalId(gid),
                    index: None,
                    offset: off.parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad offset".into(),
                    })?,
                });
            }
            let (idx_s, off) = match inner.rfind('+') {
                Some(plus) => (
                    &inner[..plus],
                    inner[plus + 1..].parse().map_err(|_| ParseError {
                        line: ln,
                        message: "bad offset".into(),
                    })?,
                ),
                None => (inner, 0u32),
            };
            return Ok(MemRef::Global {
                global: GlobalId(gid),
                index: Some(parse_operand(ln, idx_s)?),
                offset: off,
            });
        }
        let gid: u32 = rest.parse().map_err(|_| ParseError {
            line: ln,
            message: "bad global id".into(),
        })?;
        return Ok(MemRef::Global {
            global: GlobalId(gid),
            index: None,
            offset: 0,
        });
    }
    err(ln, format!("bad memory reference `{s}`"))
}

fn try_parse_term(ln: usize, line: &str) -> Result<Option<Term>, ParseError> {
    if let Some(rest) = line.strip_prefix("br bb") {
        let id: u32 = rest.parse().map_err(|_| ParseError {
            line: ln,
            message: "bad branch target".into(),
        })?;
        return Ok(Some(Term::Br {
            target: BlockId(id),
        }));
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let parts: Vec<&str> = rest.split(", ").collect();
        if parts.len() != 3 {
            return err(ln, "condbr needs cond and two targets");
        }
        let cond = parse_operand(ln, parts[0])?;
        let t = parse_bb(ln, parts[1])?;
        let e = parse_bb(ln, parts[2])?;
        return Ok(Some(Term::CondBr {
            cond,
            then_bb: t,
            else_bb: e,
        }));
    }
    if line == "ret" {
        return Ok(Some(Term::Ret { val: None }));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        return Ok(Some(Term::Ret {
            val: Some(parse_operand(ln, rest)?),
        }));
    }
    Ok(None)
}

fn parse_bb(ln: usize, s: &str) -> Result<BlockId, ParseError> {
    s.trim()
        .strip_prefix("bb")
        .and_then(|n| n.parse().ok())
        .map(BlockId)
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("bad block ref `{s}`"),
        })
}

fn parse_api(ln: usize, s: &str) -> Result<ApiCall, ParseError> {
    let (name, gid) = match s.split_once('@') {
        Some((n, g)) => (
            n,
            Some(GlobalId(g.parse().map_err(|_| ParseError {
                line: ln,
                message: "bad api global".into(),
            })?)),
        ),
        None => (s, None),
    };
    let need = |api: fn(GlobalId) -> ApiCall| -> Result<ApiCall, ParseError> {
        match gid {
            Some(g) => Ok(api(g)),
            None => err(ln, format!("api `{name}` needs a @global")),
        }
    };
    match name {
        "ip_header" => Ok(ApiCall::IpHeader),
        "tcp_header" => Ok(ApiCall::TcpHeader),
        "udp_header" => Ok(ApiCall::UdpHeader),
        "eth_header" => Ok(ApiCall::EthHeader),
        "pkt_len" => Ok(ApiCall::PktLen),
        "hashmap_find" => need(ApiCall::HashMapFind),
        "hashmap_insert" => need(ApiCall::HashMapInsert),
        "hashmap_erase" => need(ApiCall::HashMapErase),
        "vector_get" => need(ApiCall::VectorGet),
        "vector_push" => need(ApiCall::VectorPush),
        "vector_delete" => need(ApiCall::VectorDelete),
        "flow_lookup" => need(ApiCall::FlowLookup),
        "flow_upsert" => need(ApiCall::FlowUpsert),
        "flow_remove" => need(ApiCall::FlowRemove),
        "flow_churn" => need(ApiCall::FlowChurn),
        "pkt_send" => Ok(ApiCall::PktSend),
        "pkt_drop" => Ok(ApiCall::PktDrop),
        "checksum_update" => Ok(ApiCall::ChecksumUpdate),
        "checksum_full" => Ok(ApiCall::ChecksumFull),
        "timestamp" => Ok(ApiCall::Timestamp),
        "random" => Ok(ApiCall::Random),
        _ => err(ln, format!("unknown api `{name}`")),
    }
}

fn parse_inst(ln: usize, line: &str) -> Result<Inst, ParseError> {
    // Instructions with no destination.
    if let Some(rest) = line.strip_prefix("store ") {
        // store <ty> <val>, <mem>
        let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
            line: ln,
            message: "bad store".into(),
        })?;
        let ty = parse_ty(ln, ty_s)?;
        let (val_s, mem_s) = rest.split_once(", ").ok_or_else(|| ParseError {
            line: ln,
            message: "store needs value and address".into(),
        })?;
        return Ok(Inst::Store {
            ty,
            val: parse_operand(ln, val_s)?,
            mem: parse_mem(ln, mem_s)?,
        });
    }
    if let Some(rest) = line.strip_prefix("call ") {
        let (api, args) = parse_call_body(ln, rest)?;
        return Ok(Inst::Call {
            dst: None,
            api,
            args,
        });
    }

    // `%N = ...` forms.
    let (dst_s, rest) = line.split_once(" = ").ok_or_else(|| ParseError {
        line: ln,
        message: format!("unrecognized instruction `{line}`"),
    })?;
    let dst = parse_value(ln, dst_s)?;
    let (op_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
        line: ln,
        message: "truncated instruction".into(),
    })?;

    if let Some(op) = BinOp::from_name(op_s) {
        let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
            line: ln,
            message: "bad binop".into(),
        })?;
        let ty = parse_ty(ln, ty_s)?;
        let (l, r) = rest.split_once(", ").ok_or_else(|| ParseError {
            line: ln,
            message: "binop needs two operands".into(),
        })?;
        return Ok(Inst::Bin {
            dst,
            op,
            ty,
            lhs: parse_operand(ln, l)?,
            rhs: parse_operand(ln, r)?,
        });
    }
    match op_s {
        "icmp" => {
            let mut it = rest.splitn(3, ' ');
            let pred = it
                .next()
                .and_then(Pred::from_name)
                .ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad predicate".into(),
                })?;
            let ty = parse_ty(ln, it.next().unwrap_or_default())?;
            let ops = it.next().unwrap_or_default();
            let (l, r) = ops.split_once(", ").ok_or_else(|| ParseError {
                line: ln,
                message: "icmp needs two operands".into(),
            })?;
            Ok(Inst::Icmp {
                dst,
                pred,
                ty,
                lhs: parse_operand(ln, l)?,
                rhs: parse_operand(ln, r)?,
            })
        }
        "zext" | "sext" | "trunc" => {
            let op = CastOp::from_name(op_s).expect("matched above");
            // <from> <src> to <to>
            let mut it = rest.split(' ');
            let from = parse_ty(ln, it.next().unwrap_or_default())?;
            let src = parse_operand(ln, it.next().unwrap_or_default())?;
            if it.next() != Some("to") {
                return err(ln, "cast missing `to`");
            }
            let to = parse_ty(ln, it.next().unwrap_or_default())?;
            Ok(Inst::Cast {
                dst,
                op,
                from,
                to,
                src,
            })
        }
        "select" => {
            let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
                line: ln,
                message: "bad select".into(),
            })?;
            let ty = parse_ty(ln, ty_s)?;
            let parts: Vec<&str> = rest.split(", ").collect();
            if parts.len() != 3 {
                return err(ln, "select needs three operands");
            }
            Ok(Inst::Select {
                dst,
                ty,
                cond: parse_operand(ln, parts[0])?,
                on_true: parse_operand(ln, parts[1])?,
                on_false: parse_operand(ln, parts[2])?,
            })
        }
        "load" => {
            // <ty>, <mem>
            let (ty_s, mem_s) = rest.split_once(", ").ok_or_else(|| ParseError {
                line: ln,
                message: "bad load".into(),
            })?;
            Ok(Inst::Load {
                dst,
                ty: parse_ty(ln, ty_s)?,
                mem: parse_mem(ln, mem_s)?,
            })
        }
        "call" => {
            let (api, args) = parse_call_body(ln, rest)?;
            Ok(Inst::Call {
                dst: Some(dst),
                api,
                args,
            })
        }
        "phi" => {
            let (ty_s, rest) = rest.split_once(' ').ok_or_else(|| ParseError {
                line: ln,
                message: "bad phi".into(),
            })?;
            let ty = parse_ty(ln, ty_s)?;
            let mut incomings = Vec::new();
            for part in rest.split("], ") {
                let part = part.trim_start_matches('[').trim_end_matches(']');
                let (bb_s, v_s) = part.split_once(": ").ok_or_else(|| ParseError {
                    line: ln,
                    message: "bad phi incoming".into(),
                })?;
                incomings.push((parse_bb(ln, bb_s)?, parse_operand(ln, v_s)?));
            }
            Ok(Inst::Phi { dst, ty, incomings })
        }
        other => err(ln, format!("unknown opcode `{other}`")),
    }
}

fn parse_call_body(ln: usize, s: &str) -> Result<(ApiCall, Vec<Operand>), ParseError> {
    let open = s.find('(').ok_or_else(|| ParseError {
        line: ln,
        message: "call missing `(`".into(),
    })?;
    let api = parse_api(ln, &s[..open])?;
    let inner = s[open + 1..].strip_suffix(')').ok_or_else(|| ParseError {
        line: ln,
        message: "call missing `)`".into(),
    })?;
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for a in inner.split(", ") {
            args.push(parse_operand(ln, a)?);
        }
    }
    Ok((api, args))
}

fn parse_ty(ln: usize, s: &str) -> Result<Ty, ParseError> {
    Ty::from_name(s.trim()).ok_or_else(|| ParseError {
        line: ln,
        message: format!("bad type `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print;

    #[test]
    fn round_trips_a_small_module() {
        let mut m = Module::new("nat");
        let g = m.add_global("flow_table", StateKind::HashMap, 16, 1024);
        let mut fb = FunctionBuilder::new("process");
        let p = fb.param(Ty::I32);
        let e = fb.entry_block();
        let hit = fb.block();
        let miss = fb.block();
        fb.switch_to(e);
        let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
        let key = fb.bin(BinOp::Xor, Ty::I32, p, len);
        let f = fb.call(ApiCall::HashMapFind(g), vec![key]).unwrap();
        let ok = fb.icmp(Pred::Ne, Ty::I32, f, Operand::imm(0));
        fb.cond_br(ok, hit, miss);
        fb.switch_to(hit);
        fb.store(Ty::I32, f, MemRef::pkt(PktField::IpDst));
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(1)]);
        fb.ret(None);
        fb.switch_to(miss);
        let _ = fb.call(ApiCall::PktDrop, vec![]);
        fb.ret(None);
        m.funcs.push(fb.finish());

        let text = print::module(&m);
        let parsed = parse_module(&text).expect("should parse");
        assert_eq!(parsed, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_module("nonsense").is_err());
        assert!(parse_module("module @x {\n  bogus line\n}\n").is_err());
    }

    #[test]
    fn rejects_missing_terminator() {
        let text =
            "module @x {\n  func @f() slots=0 values=1 {\n  bb0:\n    %0 = add i32 1, 2\n  }\n}\n";
        let e = parse_module(text).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn parses_memrefs() {
        assert_eq!(parse_mem(1, "slot[3]").unwrap(), MemRef::stack(3));
        assert_eq!(
            parse_mem(1, "@2[%5+8]").unwrap(),
            MemRef::global_at(GlobalId(2), ValueId(5), 8)
        );
        assert_eq!(
            parse_mem(1, "@2[+8]").unwrap(),
            MemRef::Global {
                global: GlobalId(2),
                index: None,
                offset: 8
            }
        );
        assert_eq!(parse_mem(1, "@7").unwrap(), MemRef::global(GlobalId(7)));
        assert_eq!(
            parse_mem(1, "pkt.tcp_seq").unwrap(),
            MemRef::pkt(PktField::TcpSeq)
        );
        assert!(parse_mem(1, "heap[0]").is_err());
    }
}
