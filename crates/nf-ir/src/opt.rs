//! Lightweight IR optimization passes.
//!
//! Clara analyzes NFs with "most LLVM optimizations disabled" so the IR
//! stays close to the source (Section 3.1) — but a production IR library
//! still wants the basics for its other users (the synthesizer's output,
//! user-written frontends). Provided passes:
//!
//! - [`const_fold`]: evaluates instructions with all-constant operands;
//! - [`simplify_branches`]: turns constant conditional branches into
//!   unconditional ones;
//! - [`dce`]: removes side-effect-free instructions whose results are
//!   never used (global/packet loads count as observable and stay);
//! - [`remove_unreachable`]: drops blocks unreachable from the entry;
//! - [`optimize`]: runs all of the above to a (bounded) fixed point.
//!
//! Every pass preserves the interpreter-observable semantics; the crate's
//! property tests check optimized modules against the originals
//! instruction by instruction via `click-model`'s interpreter.

use std::collections::{HashMap, HashSet};

use crate::inst::{BinOp, CastOp, Inst, Operand, Pred, Term, ValueId};
use crate::module::{BlockId, Function, Module, Ty};

fn mask(v: u64, ty: Ty) -> u64 {
    match ty {
        Ty::I1 => v & 1,
        Ty::I8 => v & 0xff,
        Ty::I16 => v & 0xffff,
        Ty::I32 => v & 0xffff_ffff,
        Ty::I64 => v,
    }
}

fn to_signed(v: u64, ty: Ty) -> i64 {
    let bits = ty.bits();
    if bits >= 64 {
        return v as i64;
    }
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Shift amounts follow the *type-width rule*: the amount is taken
/// modulo the operand width, exactly like the barrel shifters `nfcc`
/// targets. `shl i8 x, 9` therefore shifts by 1, never by 9.
fn shift_amount(b: u64, ty: Ty) -> u32 {
    (b % u64::from(ty.bits())) as u32
}

/// Evaluates a binary op. This is the single definition of NIR's ALU
/// semantics: the interpreter, the reference executor, and constant
/// folding all call it, so the three difftest layers cannot drift.
pub fn eval_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> u64 {
    let a = mask(a, ty);
    let b = mask(b, ty);
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => a.checked_div(b).unwrap_or(0),
        BinOp::URem => a.checked_rem(b).unwrap_or(0),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(shift_amount(b, ty)),
        BinOp::LShr => a.wrapping_shr(shift_amount(b, ty)),
        BinOp::AShr => (to_signed(a, ty) >> shift_amount(b, ty)) as u64,
    };
    mask(r, ty)
}

/// Evaluates a cast; the shared definition used by the interpreter, the
/// reference executor, and constant folding.
pub fn eval_cast(op: CastOp, from: Ty, to: Ty, v: u64) -> u64 {
    let v = mask(v, from);
    let r = match op {
        CastOp::Zext => v,
        CastOp::Trunc => mask(v, to),
        CastOp::Sext => mask(to_signed(v, from) as u64, to),
    };
    mask(r, to)
}

/// Evaluates a comparison; the shared definition used by the
/// interpreter, the reference executor, and constant folding.
pub fn eval_icmp(pred: Pred, ty: Ty, a: u64, b: u64) -> bool {
    let a = mask(a, ty);
    let b = mask(b, ty);
    match pred {
        Pred::Eq => a == b,
        Pred::Ne => a != b,
        Pred::ULt => a < b,
        Pred::ULe => a <= b,
        Pred::UGt => a > b,
        Pred::UGe => a >= b,
        Pred::SLt => to_signed(a, ty) < to_signed(b, ty),
        Pred::SGt => to_signed(a, ty) > to_signed(b, ty),
    }
}

fn subst(op: &mut Operand, consts: &HashMap<ValueId, i64>) {
    if let Operand::Value(v) = op {
        if let Some(&c) = consts.get(v) {
            *op = Operand::Const(c);
        }
    }
}

fn subst_inst(inst: &mut Inst, consts: &HashMap<ValueId, i64>) {
    match inst {
        Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
            subst(lhs, consts);
            subst(rhs, consts);
        }
        Inst::Cast { src, .. } => subst(src, consts),
        Inst::Select {
            cond,
            on_true,
            on_false,
            ..
        } => {
            subst(cond, consts);
            subst(on_true, consts);
            subst(on_false, consts);
        }
        Inst::Load { mem, .. } => {
            if let crate::inst::MemRef::Global {
                index: Some(idx), ..
            } = mem
            {
                subst(idx, consts);
            }
        }
        Inst::Store { val, mem, .. } => {
            subst(val, consts);
            if let crate::inst::MemRef::Global {
                index: Some(idx), ..
            } = mem
            {
                subst(idx, consts);
            }
        }
        Inst::Call { args, .. } => {
            for a in args {
                subst(a, consts);
            }
        }
        Inst::Phi { incomings, .. } => {
            for (_, v) in incomings {
                subst(v, consts);
            }
        }
    }
}

/// Constant folding: replaces all-constant compute instructions with the
/// constant they evaluate to. Returns the number of folded instructions.
pub fn const_fold(func: &mut Function) -> usize {
    let mut consts: HashMap<ValueId, i64> = HashMap::new();
    let mut folded = 0;
    // One forward sweep per call; `optimize` iterates to a fixed point.
    for b in &mut func.blocks {
        for inst in &mut b.insts {
            subst_inst(inst, &consts);
            let value = match inst {
                Inst::Bin {
                    dst,
                    op,
                    ty,
                    lhs: Operand::Const(a),
                    rhs: Operand::Const(c),
                } => Some((*dst, eval_bin(*op, *ty, *a as u64, *c as u64) as i64)),
                Inst::Icmp {
                    dst,
                    pred,
                    ty,
                    lhs: Operand::Const(a),
                    rhs: Operand::Const(c),
                } => Some((*dst, i64::from(eval_icmp(*pred, *ty, *a as u64, *c as u64)))),
                Inst::Cast {
                    dst,
                    op,
                    from,
                    to,
                    src: Operand::Const(a),
                } => Some((*dst, eval_cast(*op, *from, *to, *a as u64) as i64)),
                Inst::Select {
                    dst,
                    cond: Operand::Const(c),
                    on_true,
                    on_false,
                    ..
                } => match if *c & 1 != 0 { on_true } else { on_false } {
                    Operand::Const(v) => Some((*dst, *v)),
                    Operand::Value(_) => None,
                },
                _ => None,
            };
            if let Some((dst, v)) = value {
                consts.insert(dst, v);
                folded += 1;
            }
        }
        match &mut b.term {
            Term::CondBr { cond, .. } => subst(cond, &consts),
            Term::Ret { val: Some(v) } => subst(v, &consts),
            _ => {}
        }
    }
    // Remove the folded instructions (their uses are now constants).
    if folded > 0 {
        for b in &mut func.blocks {
            b.insts
                .retain(|i| i.dst().is_none_or(|d| !consts.contains_key(&d)));
        }
    }
    folded
}

/// Turns `condbr` on a constant into `br`. Returns rewrites performed.
pub fn simplify_branches(func: &mut Function) -> usize {
    let mut n = 0;
    for b in &mut func.blocks {
        if let Term::CondBr {
            cond: Operand::Const(c),
            then_bb,
            else_bb,
        } = b.term
        {
            let target = if c & 1 != 0 { then_bb } else { else_bb };
            b.term = Term::Br { target };
            n += 1;
        }
    }
    n
}

/// Dead-code elimination: removes side-effect-free instructions whose
/// results are never used. Returns the number removed.
///
/// Loads from globals and from packet data are **never** removed, even
/// when their result is dead: Clara's whole signal is the state/packet
/// access-frequency profile (Sections 4.3–4.4), so an optimized module
/// must produce the same `State`/`Pkt` trace events as the original.
/// Only pure compute and stack-slot loads are candidates.
pub fn dce(func: &mut Function) -> usize {
    let mut used: HashSet<ValueId> = HashSet::new();
    for b in &func.blocks {
        for inst in &b.insts {
            for op in inst.operands() {
                if let Operand::Value(v) = op {
                    used.insert(v);
                }
            }
        }
        match &b.term {
            Term::CondBr {
                cond: Operand::Value(v),
                ..
            } => {
                used.insert(*v);
            }
            Term::Ret {
                val: Some(Operand::Value(v)),
            } => {
                used.insert(*v);
            }
            _ => {}
        }
    }
    let mut removed = 0;
    for b in &mut func.blocks {
        let before = b.insts.len();
        b.insts.retain(|inst| {
            let observable = matches!(
                inst,
                Inst::Store { .. }
                    | Inst::Call { .. }
                    | Inst::Load {
                        mem: crate::inst::MemRef::Global { .. } | crate::inst::MemRef::Pkt { .. },
                        ..
                    }
            );
            observable || inst.dst().is_none_or(|d| used.contains(&d))
        });
        removed += before - b.insts.len();
    }
    removed
}

/// Removes blocks unreachable from the entry, renumbering the survivors.
/// Returns the number of blocks removed.
pub fn remove_unreachable(func: &mut Function) -> usize {
    let cfg = crate::cfg::Cfg::build(func);
    let reachable: HashSet<BlockId> = cfg.reachable().into_iter().collect();
    if reachable.len() == func.blocks.len() {
        return 0;
    }
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let mut kept = Vec::new();
    for b in func.blocks.drain(..) {
        if reachable.contains(&b.id) {
            remap.insert(b.id, BlockId(kept.len() as u32));
            kept.push(b);
        }
    }
    let removed = remap.len().abs_diff(reachable.len()) + (cfg.len() - kept.len());
    for b in &mut kept {
        b.id = remap[&b.id];
        for inst in &mut b.insts {
            if let Inst::Phi { incomings, .. } = inst {
                incomings.retain(|(bb, _)| remap.contains_key(bb));
                for (bb, _) in incomings {
                    *bb = remap[bb];
                }
            }
        }
        match &mut b.term {
            Term::Br { target } => *target = remap[target],
            Term::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = remap[then_bb];
                *else_bb = remap[else_bb];
            }
            Term::Ret { .. } => {}
        }
    }
    func.blocks = kept;
    removed
}

/// Statistics from one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions constant-folded away.
    pub folded: usize,
    /// Constant branches rewritten.
    pub branches: usize,
    /// Dead instructions removed.
    pub dead: usize,
    /// Unreachable blocks removed.
    pub blocks: usize,
}

/// Runs all passes to a bounded fixed point over every function.
pub fn optimize(module: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for f in &mut module.funcs {
        for _ in 0..8 {
            let folded = const_fold(f);
            let branches = simplify_branches(f);
            let blocks = remove_unreachable(f);
            let dead = dce(f);
            total.folded += folded;
            total.branches += branches;
            total.blocks += blocks;
            total.dead += dead;
            if folded + branches + blocks + dead == 0 {
                break;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{ApiCall, MemRef, PktField};
    use crate::verify::verify_module;

    #[test]
    fn folds_constant_arithmetic_chains() {
        let mut m = Module::new("fold");
        let mut fb = FunctionBuilder::new("f");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let a = fb.bin(BinOp::Add, Ty::I32, Operand::imm(40), Operand::imm(2));
        let b = fb.bin(BinOp::Mul, Ty::I32, a, Operand::imm(3));
        fb.ret(Some(b));
        m.funcs.push(fb.finish());

        let stats = optimize(&mut m);
        assert_eq!(stats.folded, 2);
        assert!(m.funcs[0].blocks[0].insts.is_empty());
        assert_eq!(
            m.funcs[0].blocks[0].term,
            Term::Ret {
                val: Some(Operand::Const(126))
            }
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn folding_matches_interpreter_masking() {
        // 8-bit wraparound: 200 + 100 = 44 (mod 256).
        assert_eq!(eval_bin(BinOp::Add, Ty::I8, 200, 100), 44);
        // Arithmetic shift respects the sign of the narrow type.
        assert_eq!(eval_bin(BinOp::AShr, Ty::I8, 0x80, 1), 0xc0);
        // Division by zero is defined as zero.
        assert_eq!(eval_bin(BinOp::UDiv, Ty::I32, 7, 0), 0);
        assert!(eval_icmp(Pred::SLt, Ty::I8, 0xff, 0x01)); // -1 < 1
        assert!(!eval_icmp(Pred::ULt, Ty::I8, 0xff, 0x01));
    }

    #[test]
    fn shift_amounts_follow_the_type_width_rule() {
        // Amounts are reduced modulo the operand width, not modulo 64.
        assert_eq!(eval_bin(BinOp::Shl, Ty::I8, 1, 8), 1); // 8 % 8 == 0
        assert_eq!(eval_bin(BinOp::Shl, Ty::I8, 1, 9), 2); // 9 % 8 == 1
        assert_eq!(eval_bin(BinOp::LShr, Ty::I16, 0x8000, 17), 0x4000);
        assert_eq!(eval_bin(BinOp::AShr, Ty::I8, 0x80, 9), 0xc0);
        assert_eq!(eval_bin(BinOp::Shl, Ty::I32, 3, 32), 3);
        assert_eq!(eval_bin(BinOp::Shl, Ty::I64, 1, 63), 1 << 63);
        // I1 has width 1, so every amount reduces to zero.
        assert_eq!(eval_bin(BinOp::Shl, Ty::I1, 1, 5), 1);
    }

    #[test]
    fn constant_branch_prunes_dead_block() {
        let mut m = Module::new("prune");
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry_block();
        let t = fb.block();
        let f_bb = fb.block();
        fb.switch_to(e);
        let c = fb.icmp(Pred::ULt, Ty::I32, Operand::imm(1), Operand::imm(2));
        fb.cond_br(c, t, f_bb);
        fb.switch_to(t);
        fb.ret(Some(Operand::imm(1)));
        fb.switch_to(f_bb);
        let _ = fb.call(ApiCall::PktDrop, vec![]);
        fb.ret(Some(Operand::imm(0)));
        m.funcs.push(fb.finish());

        let stats = optimize(&mut m);
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.blocks, 1);
        assert_eq!(m.funcs[0].blocks.len(), 2);
        verify_module(&m).unwrap();
    }

    #[test]
    fn dce_keeps_side_effects_and_observable_loads() {
        let mut m = Module::new("dce");
        let g = m.add_global("ctr", crate::module::StateKind::Scalar, 4, 1);
        let mut fb = FunctionBuilder::new("f");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let slot = fb.slot();
        let dead_stack = fb.load(Ty::I32, MemRef::stack(slot)); // Unused, pure.
        let _ = dead_stack;
        let dead_pkt = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen)); // Unused but observable.
        let _ = dead_pkt;
        let dead_global = fb.load(Ty::I32, MemRef::global(g)); // Unused but observable.
        let _ = dead_global;
        fb.store(Ty::I32, Operand::imm(1), MemRef::global(g)); // Side effect.
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]); // Side effect.
        fb.ret(None);
        m.funcs.push(fb.finish());

        let stats = optimize(&mut m);
        // Only the stack load goes: the packet and global loads are trace
        // events the access-frequency profile counts on.
        assert_eq!(stats.dead, 1);
        assert_eq!(m.funcs[0].blocks[0].insts.len(), 4);
        verify_module(&m).unwrap();
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut m = Module::new("idem");
        let mut fb = FunctionBuilder::new("f");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let x = fb.bin(BinOp::Xor, Ty::I32, Operand::imm(0xff), Operand::imm(0x0f));
        let y = fb.load(Ty::I32, MemRef::pkt(PktField::IpSrc));
        let z = fb.bin(BinOp::Add, Ty::I32, x, y);
        fb.ret(Some(z));
        m.funcs.push(fb.finish());
        let _ = optimize(&mut m);
        let snapshot = m.clone();
        let again = optimize(&mut m);
        assert_eq!(again, OptStats::default());
        assert_eq!(m, snapshot);
    }
}
