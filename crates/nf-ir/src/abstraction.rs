//! Vocabulary compaction: abstracting instructions into a closed vocabulary.
//!
//! Per Section 3.2 of the paper, concrete operands would make the
//! instruction "language" unbounded, so Clara substitutes each operand with
//! its *kind* (`VAR`, or an immediate bucketed by magnitude — the magnitude
//! matters because the NIC compiler materializes large immediates with
//! extra instructions). Well-known packet header field names are preserved.
//! The result is a vocabulary of a few hundred distinct words, small enough
//! for one-hot encoding.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::inst::{Inst, MemRef, Operand, Term};
use crate::module::{Block, Function};

/// One word of the abstract instruction vocabulary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AbstractToken(pub String);

impl AbstractToken {
    fn new(s: impl Into<String>) -> AbstractToken {
        AbstractToken(s.into())
    }

    /// The token text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for AbstractToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn operand_kind(op: Operand) -> &'static str {
    match op {
        Operand::Value(_) => "var",
        Operand::Const(c) => {
            let mag = c.unsigned_abs();
            if c >= 0 && mag < 256 {
                "imm8"
            } else if mag < 65536 {
                "imm16"
            } else {
                "imm32"
            }
        }
    }
}

fn mem_kind(mem: &MemRef) -> String {
    match mem {
        MemRef::Stack { .. } => "stack".to_string(),
        MemRef::Global { index, offset, .. } => match (index, offset) {
            (None, _) => "global".to_string(),
            (Some(idx), _) => format!("global.idx_{}", operand_kind(*idx)),
        },
        MemRef::Pkt { field } => format!("pkt.{}", field.name()),
    }
}

/// Abstracts one instruction into its vocabulary token.
pub fn abstract_inst(inst: &Inst) -> AbstractToken {
    match inst {
        Inst::Bin {
            op, ty, lhs, rhs, ..
        } => AbstractToken::new(format!(
            "{}.{}.{}.{}",
            op.name(),
            ty.name(),
            operand_kind(*lhs),
            operand_kind(*rhs)
        )),
        Inst::Icmp {
            pred, ty, lhs, rhs, ..
        } => AbstractToken::new(format!(
            "icmp.{}.{}.{}.{}",
            pred.name(),
            ty.name(),
            operand_kind(*lhs),
            operand_kind(*rhs)
        )),
        Inst::Cast { op, from, to, .. } => {
            AbstractToken::new(format!("{}.{}.{}", op.name(), from.name(), to.name()))
        }
        Inst::Select { ty, .. } => AbstractToken::new(format!("select.{}", ty.name())),
        Inst::Load { ty, mem, .. } => {
            AbstractToken::new(format!("load.{}.{}", ty.name(), mem_kind(mem)))
        }
        Inst::Store { ty, val, mem } => AbstractToken::new(format!(
            "store.{}.{}.{}",
            ty.name(),
            operand_kind(*val),
            mem_kind(mem)
        )),
        Inst::Call { api, .. } => AbstractToken::new(format!("call.{}", api.name())),
        Inst::Phi { ty, incomings, .. } => {
            AbstractToken::new(format!("phi.{}.{}", ty.name(), incomings.len().min(4)))
        }
    }
}

/// Abstracts a terminator into its vocabulary token.
pub fn abstract_term(term: &Term) -> AbstractToken {
    match term {
        Term::Br { .. } => AbstractToken::new("br"),
        Term::CondBr { .. } => AbstractToken::new("condbr"),
        Term::Ret { .. } => AbstractToken::new("ret"),
    }
}

/// Abstracts a whole block into its token sequence (terminator included).
pub fn abstract_block(block: &Block) -> Vec<AbstractToken> {
    let mut seq: Vec<AbstractToken> = block.insts.iter().map(abstract_inst).collect();
    seq.push(abstract_term(&block.term));
    seq
}

/// Abstracts every block of a function.
pub fn abstract_function(func: &Function) -> Vec<Vec<AbstractToken>> {
    func.blocks.iter().map(abstract_block).collect()
}

/// A closed token vocabulary mapping tokens to dense indices.
///
/// Index 0 is reserved for the out-of-vocabulary token, so unseen tokens at
/// inference time still encode.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<AbstractToken, usize>,
    tokens: Vec<AbstractToken>,
}

impl Vocabulary {
    /// Builds a vocabulary from token sequences (index 0 = `<unk>`).
    pub fn build<'a>(seqs: impl IntoIterator<Item = &'a [AbstractToken]>) -> Vocabulary {
        let mut v = Vocabulary::default();
        v.tokens.push(AbstractToken::new("<unk>"));
        for seq in seqs {
            for tok in seq {
                v.intern(tok);
            }
        }
        v
    }

    fn intern(&mut self, tok: &AbstractToken) -> usize {
        if let Some(&i) = self.index.get(tok) {
            return i;
        }
        let i = self.tokens.len();
        self.tokens.push(tok.clone());
        self.index.insert(tok.clone(), i);
        i
    }

    /// Number of distinct tokens (including `<unk>`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 1
    }

    /// Encodes a token (0 when out-of-vocabulary).
    pub fn encode_token(&self, tok: &AbstractToken) -> usize {
        self.index.get(tok).copied().unwrap_or(0)
    }

    /// Encodes a token sequence.
    pub fn encode(&self, seq: &[AbstractToken]) -> Vec<usize> {
        seq.iter().map(|t| self.encode_token(t)).collect()
    }

    /// The token at a given index, if any.
    pub fn token(&self, idx: usize) -> Option<&AbstractToken> {
        self.tokens.get(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, PktField, ValueId};
    use crate::module::Ty;

    #[test]
    fn operands_are_abstracted_but_header_fields_kept() {
        let a = Inst::Bin {
            dst: ValueId(1),
            op: BinOp::Add,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Const(4),
        };
        let b = Inst::Bin {
            dst: ValueId(9),
            op: BinOp::Add,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(7)),
            rhs: Operand::Const(200),
        };
        // Same shape (var + small imm) => same token despite different names.
        assert_eq!(abstract_inst(&a), abstract_inst(&b));

        let big = Inst::Bin {
            dst: ValueId(2),
            op: BinOp::Add,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Const(1 << 20),
        };
        // Large immediates get a different token (they cost extra on NIC).
        assert_ne!(abstract_inst(&a), abstract_inst(&big));

        let ld = Inst::Load {
            dst: ValueId(3),
            ty: Ty::I16,
            mem: MemRef::pkt(PktField::IpLen),
        };
        assert_eq!(abstract_inst(&ld).as_str(), "load.i16.pkt.ip_len");
    }

    #[test]
    fn negative_immediates_are_not_imm8() {
        let neg = Inst::Bin {
            dst: ValueId(1),
            op: BinOp::Add,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Const(-2),
        };
        assert_eq!(abstract_inst(&neg).as_str(), "add.i32.var.imm16");
    }

    #[test]
    fn vocabulary_encodes_and_handles_oov() {
        let toks = vec![
            AbstractToken::new("add.i32.var.imm8"),
            AbstractToken::new("xor.i32.var.var"),
            AbstractToken::new("add.i32.var.imm8"),
        ];
        let v = Vocabulary::build([toks.as_slice()]);
        assert_eq!(v.len(), 3); // <unk> + 2 distinct
        let ids = v.encode(&toks);
        assert_eq!(ids, vec![1, 2, 1]);
        assert_eq!(v.encode_token(&AbstractToken::new("unseen")), 0);
        assert_eq!(v.token(1).unwrap().as_str(), "add.i32.var.imm8");
    }
}
