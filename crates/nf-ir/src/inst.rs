//! Instructions, operands, memory references, and framework API calls.

use serde::{Deserialize, Serialize};

use crate::module::{BlockId, GlobalId, Ty};

/// Identifier for an SSA value within a function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Index usable for dense per-value tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instruction operand: an SSA value or an integer constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A previously defined SSA value.
    Value(ValueId),
    /// An integer constant.
    Const(i64),
}

impl Operand {
    /// Shorthand for a constant operand.
    pub fn imm(v: i64) -> Operand {
        Operand::Const(v)
    }

    /// Returns the value id if this operand is an SSA value.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// Returns the constant if this operand is an immediate.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::Value(_) => None,
            Operand::Const(c) => Some(c),
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

/// Binary integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (expensive on NIC cores: no divide unit).
    UDiv,
    /// Unsigned remainder.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
}

impl BinOp {
    /// Textual mnemonic, matching the printer.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::name`].
    pub fn from_name(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "urem" => BinOp::URem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            _ => return None,
        })
    }

    /// Is this a shift operation (fusable into the NIC ALU's shifter)?
    pub fn is_shift(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::LShr | BinOp::AShr)
    }

    /// Is this a bitwise operation (`and`/`or`/`xor`)?
    pub fn is_bitwise(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// All binary operations.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::UDiv,
        BinOp::URem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::LShr,
        BinOp::AShr,
    ];
}

/// Comparison predicates for [`Inst::Icmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
    /// Signed less-than.
    SLt,
    /// Signed greater-than.
    SGt,
}

impl Pred {
    /// Textual mnemonic, matching the printer.
    pub fn name(self) -> &'static str {
        match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::ULt => "ult",
            Pred::ULe => "ule",
            Pred::UGt => "ugt",
            Pred::UGe => "uge",
            Pred::SLt => "slt",
            Pred::SGt => "sgt",
        }
    }

    /// Parses a mnemonic produced by [`Pred::name`].
    pub fn from_name(s: &str) -> Option<Pred> {
        Some(match s {
            "eq" => Pred::Eq,
            "ne" => Pred::Ne,
            "ult" => Pred::ULt,
            "ule" => Pred::ULe,
            "ugt" => Pred::UGt,
            "uge" => Pred::UGe,
            "slt" => Pred::SLt,
            "sgt" => Pred::SGt,
            _ => return None,
        })
    }

    /// All predicates.
    pub const ALL: [Pred; 8] = [
        Pred::Eq,
        Pred::Ne,
        Pred::ULt,
        Pred::ULe,
        Pred::UGt,
        Pred::UGe,
        Pred::SLt,
        Pred::SGt,
    ];
}

/// Integer width conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CastOp {
    /// Zero extension.
    Zext,
    /// Sign extension.
    Sext,
    /// Truncation.
    Trunc,
}

impl CastOp {
    /// Textual mnemonic, matching the printer.
    pub fn name(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
        }
    }

    /// Parses a mnemonic produced by [`CastOp::name`].
    pub fn from_name(s: &str) -> Option<CastOp> {
        Some(match s {
            "zext" => CastOp::Zext,
            "sext" => CastOp::Sext,
            "trunc" => CastOp::Trunc,
            _ => return None,
        })
    }
}

/// Well-known packet header fields.
///
/// Per the paper's vocabulary compaction, header field *names* are preserved
/// in the abstract vocabulary (they carry performance signal — e.g., which
/// bytes of the packet are touched), while ordinary variable names are
/// abstracted away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PktField {
    /// Ethernet destination MAC (first 4 bytes as an integer view).
    EthDst,
    /// Ethernet source MAC (first 4 bytes as an integer view).
    EthSrc,
    /// Ethernet EtherType.
    EthType,
    /// IPv4 version + header length byte.
    IpVhl,
    /// IPv4 type-of-service byte.
    IpTos,
    /// IPv4 total length.
    IpLen,
    /// IPv4 identification field.
    IpId,
    /// IPv4 time-to-live byte.
    IpTtl,
    /// IPv4 protocol byte.
    IpProto,
    /// IPv4 header checksum.
    IpCsum,
    /// IPv4 source address.
    IpSrc,
    /// IPv4 destination address.
    IpDst,
    /// TCP source port.
    TcpSport,
    /// TCP destination port.
    TcpDport,
    /// TCP sequence number.
    TcpSeq,
    /// TCP acknowledgement number.
    TcpAck,
    /// TCP data offset + flags half-word.
    TcpOff,
    /// TCP flags byte.
    TcpFlags,
    /// TCP window size.
    TcpWin,
    /// TCP checksum.
    TcpCsum,
    /// UDP source port.
    UdpSport,
    /// UDP destination port.
    UdpDport,
    /// UDP length.
    UdpLen,
    /// UDP checksum.
    UdpCsum,
    /// Payload byte/word at a fixed offset past the transport header.
    Payload(u16),
}

impl PktField {
    /// Field name used by the printer and the abstract vocabulary.
    pub fn name(self) -> String {
        match self {
            PktField::EthDst => "eth_dst".into(),
            PktField::EthSrc => "eth_src".into(),
            PktField::EthType => "eth_type".into(),
            PktField::IpVhl => "ip_vhl".into(),
            PktField::IpTos => "ip_tos".into(),
            PktField::IpLen => "ip_len".into(),
            PktField::IpId => "ip_id".into(),
            PktField::IpTtl => "ip_ttl".into(),
            PktField::IpProto => "ip_proto".into(),
            PktField::IpCsum => "ip_csum".into(),
            PktField::IpSrc => "ip_src".into(),
            PktField::IpDst => "ip_dst".into(),
            PktField::TcpSport => "tcp_sport".into(),
            PktField::TcpDport => "tcp_dport".into(),
            PktField::TcpSeq => "tcp_seq".into(),
            PktField::TcpAck => "tcp_ack".into(),
            PktField::TcpOff => "tcp_off".into(),
            PktField::TcpFlags => "tcp_flags".into(),
            PktField::TcpWin => "tcp_win".into(),
            PktField::TcpCsum => "tcp_csum".into(),
            PktField::UdpSport => "udp_sport".into(),
            PktField::UdpDport => "udp_dport".into(),
            PktField::UdpLen => "udp_len".into(),
            PktField::UdpCsum => "udp_csum".into(),
            PktField::Payload(off) => format!("payload+{off}"),
        }
    }

    /// Parses a field name produced by [`PktField::name`].
    pub fn from_name(s: &str) -> Option<PktField> {
        if let Some(rest) = s.strip_prefix("payload+") {
            return rest.parse::<u16>().ok().map(PktField::Payload);
        }
        Some(match s {
            "eth_dst" => PktField::EthDst,
            "eth_src" => PktField::EthSrc,
            "eth_type" => PktField::EthType,
            "ip_vhl" => PktField::IpVhl,
            "ip_tos" => PktField::IpTos,
            "ip_len" => PktField::IpLen,
            "ip_id" => PktField::IpId,
            "ip_ttl" => PktField::IpTtl,
            "ip_proto" => PktField::IpProto,
            "ip_csum" => PktField::IpCsum,
            "ip_src" => PktField::IpSrc,
            "ip_dst" => PktField::IpDst,
            "tcp_sport" => PktField::TcpSport,
            "tcp_dport" => PktField::TcpDport,
            "tcp_seq" => PktField::TcpSeq,
            "tcp_ack" => PktField::TcpAck,
            "tcp_off" => PktField::TcpOff,
            "tcp_flags" => PktField::TcpFlags,
            "tcp_win" => PktField::TcpWin,
            "tcp_csum" => PktField::TcpCsum,
            "udp_sport" => PktField::UdpSport,
            "udp_dport" => PktField::UdpDport,
            "udp_len" => PktField::UdpLen,
            "udp_csum" => PktField::UdpCsum,
            _ => return None,
        })
    }

    /// Fixed header fields (excluding payload offsets), for enumeration.
    pub const HEADER_FIELDS: [PktField; 24] = [
        PktField::EthDst,
        PktField::EthSrc,
        PktField::EthType,
        PktField::IpVhl,
        PktField::IpTos,
        PktField::IpLen,
        PktField::IpId,
        PktField::IpTtl,
        PktField::IpProto,
        PktField::IpCsum,
        PktField::IpSrc,
        PktField::IpDst,
        PktField::TcpSport,
        PktField::TcpDport,
        PktField::TcpSeq,
        PktField::TcpAck,
        PktField::TcpOff,
        PktField::TcpFlags,
        PktField::TcpWin,
        PktField::TcpCsum,
        PktField::UdpSport,
        PktField::UdpDport,
        PktField::UdpLen,
        PktField::UdpCsum,
    ];
}

/// A memory reference: the address of a load or store.
///
/// The region is syntactically evident, which is what lets Clara classify
/// accesses as stateless (stack), stateful (global), or packet data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemRef {
    /// A function-local stack slot (stateless; register-allocatable).
    Stack {
        /// Slot number within the function.
        slot: u32,
    },
    /// A global data structure entry (stateful; lives in NIC memory).
    Global {
        /// The structure.
        global: GlobalId,
        /// Optional dynamic entry index (scaled by `entry_bytes`).
        index: Option<Operand>,
        /// Fixed byte offset within the entry.
        offset: u32,
    },
    /// A packet header/payload field (lives in packet memory, e.g. CTM).
    Pkt {
        /// The field.
        field: PktField,
    },
}

impl MemRef {
    /// Shorthand for a stack slot reference.
    pub fn stack(slot: u32) -> MemRef {
        MemRef::Stack { slot }
    }

    /// Shorthand for a scalar global reference (no index, offset 0).
    pub fn global(global: GlobalId) -> MemRef {
        MemRef::Global {
            global,
            index: None,
            offset: 0,
        }
    }

    /// Shorthand for an indexed global reference.
    pub fn global_at(global: GlobalId, index: impl Into<Operand>, offset: u32) -> MemRef {
        MemRef::Global {
            global,
            index: Some(index.into()),
            offset,
        }
    }

    /// Shorthand for a packet-field reference.
    pub fn pkt(field: PktField) -> MemRef {
        MemRef::Pkt { field }
    }

    /// Returns the global id if this reference targets a global.
    pub fn as_global(&self) -> Option<GlobalId> {
        match self {
            MemRef::Global { global, .. } => Some(*global),
            _ => None,
        }
    }
}

/// NF-framework API calls (the Click API surface Clara reverse-ports).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiCall {
    /// `Packet::ip_header()` — locate the IPv4 header.
    IpHeader,
    /// `Packet::tcp_header()` — locate the TCP header.
    TcpHeader,
    /// `Packet::udp_header()` — locate the UDP header.
    UdpHeader,
    /// `Packet::ether_header()` — locate the Ethernet header.
    EthHeader,
    /// `Packet::length()` — packet length in bytes.
    PktLen,
    /// `HashMap::find` on the given global.
    HashMapFind(GlobalId),
    /// `HashMap::insert` on the given global.
    HashMapInsert(GlobalId),
    /// `HashMap::erase` on the given global.
    HashMapErase(GlobalId),
    /// `Vector::at` on the given global.
    VectorGet(GlobalId),
    /// `Vector::push_back` on the given global.
    VectorPush(GlobalId),
    /// `Vector::erase` on the given global.
    VectorDelete(GlobalId),
    /// Flow-table lookup on the given global: probes the key's bucket,
    /// lazily expiring timed-out entries, and refreshes `last_seen` on a
    /// hit. Returns `slot + 1` on a hit, `0` on a miss.
    FlowLookup(GlobalId),
    /// Flow-table insert-or-refresh on the given global: refreshes a
    /// live entry for the key, otherwise claims a free/expired slot, and
    /// as a last resort evicts per the table's [`crate::EvictPolicy`].
    /// Returns `slot + 1`.
    FlowUpsert(GlobalId),
    /// Flow-table removal on the given global. Returns `slot + 1` if a
    /// live entry was removed, `0` otherwise.
    FlowRemove(GlobalId),
    /// Reads the given flow table's churn counter (lifetime evictions
    /// plus timeout expirations).
    FlowChurn(GlobalId),
    /// `Packet::send` to an output port.
    PktSend,
    /// Drop the packet.
    PktDrop,
    /// Recompute/patch the IP checksum incrementally.
    ChecksumUpdate,
    /// Full checksum over the packet payload.
    ChecksumFull,
    /// Read the element clock (`Timestamp::now`).
    Timestamp,
    /// Pseudo-random number (`click_random`).
    Random,
}

impl ApiCall {
    /// API name used by the printer and the abstract vocabulary.
    pub fn name(&self) -> &'static str {
        match self {
            ApiCall::IpHeader => "ip_header",
            ApiCall::TcpHeader => "tcp_header",
            ApiCall::UdpHeader => "udp_header",
            ApiCall::EthHeader => "eth_header",
            ApiCall::PktLen => "pkt_len",
            ApiCall::HashMapFind(_) => "hashmap_find",
            ApiCall::HashMapInsert(_) => "hashmap_insert",
            ApiCall::HashMapErase(_) => "hashmap_erase",
            ApiCall::VectorGet(_) => "vector_get",
            ApiCall::VectorPush(_) => "vector_push",
            ApiCall::VectorDelete(_) => "vector_delete",
            ApiCall::FlowLookup(_) => "flow_lookup",
            ApiCall::FlowUpsert(_) => "flow_upsert",
            ApiCall::FlowRemove(_) => "flow_remove",
            ApiCall::FlowChurn(_) => "flow_churn",
            ApiCall::PktSend => "pkt_send",
            ApiCall::PktDrop => "pkt_drop",
            ApiCall::ChecksumUpdate => "checksum_update",
            ApiCall::ChecksumFull => "checksum_full",
            ApiCall::Timestamp => "timestamp",
            ApiCall::Random => "random",
        }
    }

    /// The stateful structure this call operates on, if any.
    pub fn state_global(&self) -> Option<GlobalId> {
        match self {
            ApiCall::HashMapFind(g)
            | ApiCall::HashMapInsert(g)
            | ApiCall::HashMapErase(g)
            | ApiCall::VectorGet(g)
            | ApiCall::VectorPush(g)
            | ApiCall::VectorDelete(g)
            | ApiCall::FlowLookup(g)
            | ApiCall::FlowUpsert(g)
            | ApiCall::FlowRemove(g)
            | ApiCall::FlowChurn(g) => Some(*g),
            _ => None,
        }
    }

    /// Does this call return a value?
    pub fn has_result(&self) -> bool {
        !matches!(self, ApiCall::PktSend | ApiCall::PktDrop)
    }

    /// Number of arguments the framework ABI expects for this call.
    ///
    /// The interpreter enforces this exactly: a lowering that passes the
    /// wrong count gets a typed trace error instead of silently defaulted
    /// or ignored arguments.
    pub fn arity(&self) -> usize {
        match self {
            ApiCall::HashMapFind(_)
            | ApiCall::HashMapInsert(_)
            | ApiCall::HashMapErase(_)
            | ApiCall::VectorGet(_)
            | ApiCall::VectorDelete(_)
            | ApiCall::FlowLookup(_)
            | ApiCall::FlowUpsert(_)
            | ApiCall::FlowRemove(_)
            | ApiCall::PktSend => 1,
            _ => 0,
        }
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = op ty lhs, rhs`.
    Bin {
        /// Result value.
        dst: ValueId,
        /// Operation.
        op: BinOp,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = icmp pred ty lhs, rhs` (dst has type `i1`).
    Icmp {
        /// Result value (boolean).
        dst: ValueId,
        /// Predicate.
        pred: Pred,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = castop from_ty src to to_ty`.
    Cast {
        /// Result value.
        dst: ValueId,
        /// Conversion kind.
        op: CastOp,
        /// Source type.
        from: Ty,
        /// Destination type.
        to: Ty,
        /// Source operand.
        src: Operand,
    },
    /// `dst = select cond, on_true, on_false`.
    Select {
        /// Result value.
        dst: ValueId,
        /// Result type.
        ty: Ty,
        /// Boolean condition.
        cond: Operand,
        /// Value when `cond` is true.
        on_true: Operand,
        /// Value when `cond` is false.
        on_false: Operand,
    },
    /// `dst = load ty, mem`.
    Load {
        /// Result value.
        dst: ValueId,
        /// Loaded type.
        ty: Ty,
        /// Address.
        mem: MemRef,
    },
    /// `store ty val, mem`.
    Store {
        /// Stored type.
        ty: Ty,
        /// Stored value.
        val: Operand,
        /// Address.
        mem: MemRef,
    },
    /// `dst = call api(args...)` — an NF-framework API call.
    Call {
        /// Result value (if the API returns one).
        dst: Option<ValueId>,
        /// The framework API being invoked.
        api: ApiCall,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = phi ty [(bb, val), ...]`.
    Phi {
        /// Result value.
        dst: ValueId,
        /// Result type.
        ty: Ty,
        /// Incoming (predecessor block, value) pairs.
        incomings: Vec<(BlockId, Operand)>,
    },
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch.
    CondBr {
        /// Boolean condition.
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// Optional return value.
        val: Option<Operand>,
    },
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Term::Br { target } => vec![*target],
            Term::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Term::Ret { .. } => Vec::new(),
        }
    }
}

/// Coarse classification of an instruction, per the paper's Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Stateless computation (ALU work, casts, selects, phis).
    Compute,
    /// Stateless memory: loads/stores to function-local stack slots.
    StackMem,
    /// Stateful memory: loads/stores to global data structures.
    StatefulMem,
    /// Packet-data access (header/payload bytes).
    PacketMem,
    /// NF-framework API call (handled by reverse porting).
    Api,
}

impl Inst {
    /// The result value defined by this instruction, if any.
    pub fn dst(&self) -> Option<ValueId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Icmp { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Phi { dst, .. } => Some(*dst),
            Inst::Store { .. } => None,
            Inst::Call { dst, .. } => *dst,
        }
    }

    /// All operands read by this instruction (including memory indices).
    pub fn operands(&self) -> Vec<Operand> {
        let mut out = Vec::new();
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Inst::Cast { src, .. } => out.push(*src),
            Inst::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                out.push(*cond);
                out.push(*on_true);
                out.push(*on_false);
            }
            Inst::Load { mem, .. } => push_mem_operands(mem, &mut out),
            Inst::Store { val, mem, .. } => {
                out.push(*val);
                push_mem_operands(mem, &mut out);
            }
            Inst::Call { args, .. } => out.extend(args.iter().copied()),
            Inst::Phi { incomings, .. } => out.extend(incomings.iter().map(|(_, v)| *v)),
        }
        out
    }

    /// Classifies the instruction per the paper's compute/memory/API split.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Bin { .. }
            | Inst::Icmp { .. }
            | Inst::Cast { .. }
            | Inst::Select { .. }
            | Inst::Phi { .. } => InstClass::Compute,
            Inst::Load { mem, .. } | Inst::Store { mem, .. } => match mem {
                MemRef::Stack { .. } => InstClass::StackMem,
                MemRef::Global { .. } => InstClass::StatefulMem,
                MemRef::Pkt { .. } => InstClass::PacketMem,
            },
            Inst::Call { .. } => InstClass::Api,
        }
    }
}

fn push_mem_operands(mem: &MemRef, out: &mut Vec<Operand>) {
    if let MemRef::Global {
        index: Some(idx), ..
    } = mem
    {
        out.push(*idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_names_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_name(op.name()), Some(op));
        }
        assert_eq!(BinOp::from_name("frobnicate"), None);
    }

    #[test]
    fn pred_names_round_trip() {
        for p in Pred::ALL {
            assert_eq!(Pred::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn pkt_field_names_round_trip() {
        for f in PktField::HEADER_FIELDS {
            assert_eq!(PktField::from_name(&f.name()), Some(f));
        }
        assert_eq!(
            PktField::from_name("payload+12"),
            Some(PktField::Payload(12))
        );
        assert_eq!(PktField::from_name("payload+x"), None);
    }

    #[test]
    fn classification_follows_memory_region() {
        let stack = Inst::Load {
            dst: ValueId(1),
            ty: Ty::I32,
            mem: MemRef::stack(0),
        };
        assert_eq!(stack.class(), InstClass::StackMem);

        let global = Inst::Store {
            ty: Ty::I32,
            val: Operand::imm(1),
            mem: MemRef::global(GlobalId(0)),
        };
        assert_eq!(global.class(), InstClass::StatefulMem);

        let pkt = Inst::Load {
            dst: ValueId(2),
            ty: Ty::I16,
            mem: MemRef::pkt(PktField::IpLen),
        };
        assert_eq!(pkt.class(), InstClass::PacketMem);

        let alu = Inst::Bin {
            dst: ValueId(3),
            op: BinOp::Xor,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::imm(0xff),
        };
        assert_eq!(alu.class(), InstClass::Compute);
    }

    #[test]
    fn operands_include_memory_indices() {
        let inst = Inst::Store {
            ty: Ty::I32,
            val: Operand::Value(ValueId(5)),
            mem: MemRef::global_at(GlobalId(0), ValueId(6), 4),
        };
        let ops = inst.operands();
        assert!(ops.contains(&Operand::Value(ValueId(5))));
        assert!(ops.contains(&Operand::Value(ValueId(6))));
    }

    #[test]
    fn term_successors() {
        assert_eq!(
            Term::Br { target: BlockId(3) }.successors(),
            vec![BlockId(3)]
        );
        assert_eq!(Term::Ret { val: None }.successors(), Vec::<BlockId>::new());
    }
}
