//! Structural well-formedness checks for NIR.

use std::collections::HashSet;
use std::fmt;

use crate::inst::{Inst, Operand, Term, ValueId};
use crate::module::{BlockId, Function, Module};

/// A verification failure, with enough context to locate the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A function has no blocks.
    NoBlocks {
        /// Function name.
        func: String,
    },
    /// `blocks[i].id != i`.
    MisnumberedBlock {
        /// Function name.
        func: String,
        /// Position in the block list.
        position: usize,
    },
    /// A branch targets a block that does not exist.
    BadBranchTarget {
        /// Function name.
        func: String,
        /// Source block.
        block: BlockId,
        /// The bogus target.
        target: BlockId,
    },
    /// An SSA value is defined more than once.
    Redefined {
        /// Function name.
        func: String,
        /// The value.
        value: ValueId,
    },
    /// An operand references a value that is never defined.
    UndefinedUse {
        /// Function name.
        func: String,
        /// Block of the offending use.
        block: BlockId,
        /// The undefined value.
        value: ValueId,
    },
    /// A phi's incoming block is not a predecessor (or doesn't exist).
    BadPhiIncoming {
        /// Function name.
        func: String,
        /// Block containing the phi.
        block: BlockId,
        /// The bogus incoming block.
        incoming: BlockId,
    },
    /// A phi appears after a non-phi instruction in its block.
    PhiNotAtTop {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
    },
    /// A global reference points past the module's global table.
    BadGlobalRef {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The bogus global index.
        global: u32,
    },
    /// A stack slot reference exceeds the function's slot count.
    BadSlotRef {
        /// Function name.
        func: String,
        /// Offending block.
        block: BlockId,
        /// The bogus slot.
        slot: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NoBlocks { func } => write!(f, "function {func} has no blocks"),
            VerifyError::MisnumberedBlock { func, position } => {
                write!(f, "{func}: block at position {position} is misnumbered")
            }
            VerifyError::BadBranchTarget {
                func,
                block,
                target,
            } => write!(
                f,
                "{func}: bb{} branches to nonexistent bb{}",
                block.0, target.0
            ),
            VerifyError::Redefined { func, value } => {
                write!(f, "{func}: %{} defined more than once", value.0)
            }
            VerifyError::UndefinedUse { func, block, value } => {
                write!(f, "{func}: bb{} uses undefined %{}", block.0, value.0)
            }
            VerifyError::BadPhiIncoming {
                func,
                block,
                incoming,
            } => write!(
                f,
                "{func}: phi in bb{} has non-predecessor incoming bb{}",
                block.0, incoming.0
            ),
            VerifyError::PhiNotAtTop { func, block } => {
                write!(f, "{func}: phi not at top of bb{}", block.0)
            }
            VerifyError::BadGlobalRef {
                func,
                block,
                global,
            } => write!(f, "{func}: bb{} references unknown @g{}", block.0, global),
            VerifyError::BadSlotRef { func, block, slot } => {
                write!(f, "{func}: bb{} references unknown slot {}", block.0, slot)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a single function's structural invariants.
///
/// Checked invariants: block numbering, branch-target validity, single
/// definition per SSA value, all uses defined somewhere in the function
/// (NIR does not require dominance, matching the lenient form Clara needs
/// for analysis), phi placement and incoming-edge validity, and stack-slot
/// bounds.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    verify_function_in(func, None)
}

/// Verifies a function, also checking global references against `module`.
pub fn verify_function_in(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let name = || func.name.clone();
    if func.blocks.is_empty() {
        return Err(VerifyError::NoBlocks { func: name() });
    }
    for (i, b) in func.blocks.iter().enumerate() {
        if b.id.index() != i {
            return Err(VerifyError::MisnumberedBlock {
                func: name(),
                position: i,
            });
        }
    }
    let nblocks = func.blocks.len();

    // Collect definitions.
    let mut defined: HashSet<ValueId> = HashSet::new();
    for (p, _) in &func.params {
        if !defined.insert(*p) {
            return Err(VerifyError::Redefined {
                func: name(),
                value: *p,
            });
        }
    }
    for b in &func.blocks {
        for inst in &b.insts {
            if let Some(dst) = inst.dst() {
                if !defined.insert(dst) {
                    return Err(VerifyError::Redefined {
                        func: name(),
                        value: dst,
                    });
                }
            }
        }
    }

    // Predecessor sets for phi checking.
    let cfg = crate::cfg::Cfg::build(func);

    for b in &func.blocks {
        // Branch targets.
        for target in b.term.successors() {
            if target.index() >= nblocks {
                return Err(VerifyError::BadBranchTarget {
                    func: name(),
                    block: b.id,
                    target,
                });
            }
        }
        // Uses, phi placement, memory references.
        let mut seen_non_phi = false;
        for inst in &b.insts {
            match inst {
                Inst::Phi { incomings, .. } => {
                    if seen_non_phi {
                        return Err(VerifyError::PhiNotAtTop {
                            func: name(),
                            block: b.id,
                        });
                    }
                    for (in_bb, _) in incomings {
                        if in_bb.index() >= nblocks || !cfg.preds[b.id.index()].contains(in_bb) {
                            return Err(VerifyError::BadPhiIncoming {
                                func: name(),
                                block: b.id,
                                incoming: *in_bb,
                            });
                        }
                    }
                }
                _ => seen_non_phi = true,
            }
            for op in inst.operands() {
                check_use(op, &defined, &name, b.id)?;
            }
            check_mem(inst, func, module, &name, b.id)?;
        }
        match &b.term {
            Term::CondBr { cond, .. } => check_use(*cond, &defined, &name, b.id)?,
            Term::Ret { val: Some(v) } => check_use(*v, &defined, &name, b.id)?,
            _ => {}
        }
    }
    Ok(())
}

fn check_use(
    op: Operand,
    defined: &HashSet<ValueId>,
    name: &impl Fn() -> String,
    block: BlockId,
) -> Result<(), VerifyError> {
    if let Operand::Value(v) = op {
        if !defined.contains(&v) {
            return Err(VerifyError::UndefinedUse {
                func: name(),
                block,
                value: v,
            });
        }
    }
    Ok(())
}

fn check_mem(
    inst: &Inst,
    func: &Function,
    module: Option<&Module>,
    name: &impl Fn() -> String,
    block: BlockId,
) -> Result<(), VerifyError> {
    use crate::inst::MemRef;
    let mem = match inst {
        Inst::Load { mem, .. } | Inst::Store { mem, .. } => mem,
        _ => return Ok(()),
    };
    match mem {
        MemRef::Stack { slot } => {
            if *slot >= func.next_slot {
                return Err(VerifyError::BadSlotRef {
                    func: name(),
                    block,
                    slot: *slot,
                });
            }
        }
        MemRef::Global { global, .. } => {
            if let Some(m) = module {
                if m.global(*global).is_none() {
                    return Err(VerifyError::BadGlobalRef {
                        func: name(),
                        block,
                        global: global.0,
                    });
                }
            }
        }
        MemRef::Pkt { .. } => {}
    }
    Ok(())
}

/// Verifies every function in a module, including global references.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.funcs {
        verify_function_in(func, Some(module))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, MemRef, Operand};
    use crate::module::{StateKind, Ty};

    #[test]
    fn detects_undefined_use() {
        let mut fb = FunctionBuilder::new("bad");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        // Manually craft a use of an unknown value by adding two params' worth.
        let _ = fb.bin(
            BinOp::Add,
            Ty::I32,
            Operand::Value(ValueId(99)),
            Operand::imm(1),
        );
        fb.ret(None);
        let f = fb.finish();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::UndefinedUse { .. })
        ));
    }

    #[test]
    fn detects_bad_slot() {
        let mut fb = FunctionBuilder::new("slots");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let _ = fb.load(Ty::I32, MemRef::stack(3)); // never allocated
        fb.ret(None);
        let f = fb.finish();
        assert!(matches!(
            verify_function(&f),
            Err(VerifyError::BadSlotRef { .. })
        ));
    }

    #[test]
    fn detects_bad_global_in_module() {
        let mut m = Module::new("m");
        let _g = m.add_global("tbl", StateKind::Array, 4, 16);
        let mut fb = FunctionBuilder::new("f");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let _ = fb.load(Ty::I32, MemRef::global(crate::module::GlobalId(5)));
        fb.ret(None);
        m.funcs.push(fb.finish());
        assert!(matches!(
            verify_module(&m),
            Err(VerifyError::BadGlobalRef { .. })
        ));
    }

    #[test]
    fn accepts_valid_module() {
        let mut m = Module::new("m");
        let g = m.add_global("tbl", StateKind::Array, 4, 16);
        let mut fb = FunctionBuilder::new("f");
        let p = fb.param(Ty::I32);
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let v = fb.load(Ty::I32, MemRef::global_at(g, p, 0));
        let w = fb.bin(BinOp::Add, Ty::I32, v, Operand::imm(1));
        fb.store(Ty::I32, w, MemRef::global_at(g, p, 0));
        fb.ret(None);
        m.funcs.push(fb.finish());
        verify_module(&m).expect("valid module");
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::UndefinedUse {
            func: "f".into(),
            block: BlockId(2),
            value: ValueId(7),
        };
        assert_eq!(e.to_string(), "f: bb2 uses undefined %7");
    }
}
