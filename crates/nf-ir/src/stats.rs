//! Aggregate statistics over modules (instruction mixes, Table 2 columns).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::abstraction::{abstract_block, AbstractToken};
use crate::inst::{Inst, InstClass};
use crate::module::{Function, Module};

/// Instruction-mix and structure statistics for a module.
///
/// These power two things: the Table 2 inventory columns (instruction,
/// memory-access, and API-call counts) and the corpus *distribution
/// profile* that guides the `nf-synth` program generator (Table 1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModuleStats {
    /// Total non-terminator instructions.
    pub insts: usize,
    /// Compute instructions (ALU, casts, selects, phis).
    pub compute: usize,
    /// Loads/stores to stack slots.
    pub stack_mem: usize,
    /// Loads/stores to global (stateful) structures.
    pub stateful_mem: usize,
    /// Loads/stores to packet data.
    pub packet_mem: usize,
    /// Framework API calls.
    pub api_calls: usize,
    /// Basic blocks.
    pub blocks: usize,
    /// Loops (CFG back edges), summed over functions.
    pub loops: usize,
    /// Stateful data structures defined by the module.
    pub globals: usize,
    /// Histogram over abstract vocabulary tokens.
    pub token_histogram: BTreeMap<AbstractToken, usize>,
}

impl ModuleStats {
    /// Computes statistics for a module.
    pub fn of_module(module: &Module) -> ModuleStats {
        let mut s = ModuleStats {
            globals: module.globals.len(),
            ..ModuleStats::default()
        };
        for f in &module.funcs {
            s.accumulate_function(f);
        }
        s
    }

    /// Computes statistics for a single function.
    pub fn of_function(func: &Function) -> ModuleStats {
        let mut s = ModuleStats::default();
        s.accumulate_function(func);
        s
    }

    fn accumulate_function(&mut self, func: &Function) {
        self.blocks += func.blocks.len();
        self.loops += crate::cfg::Cfg::build(func).loop_count();
        for b in &func.blocks {
            for tok in abstract_block(b) {
                *self.token_histogram.entry(tok).or_insert(0) += 1;
            }
            for inst in &b.insts {
                self.insts += 1;
                match inst.class() {
                    InstClass::Compute => self.compute += 1,
                    InstClass::StackMem => self.stack_mem += 1,
                    InstClass::StatefulMem => self.stateful_mem += 1,
                    InstClass::PacketMem => self.packet_mem += 1,
                    InstClass::Api => self.api_calls += 1,
                }
            }
        }
    }

    /// All memory accesses regardless of region.
    pub fn total_mem(&self) -> usize {
        self.stack_mem + self.stateful_mem + self.packet_mem
    }

    /// The token histogram as a normalized probability distribution,
    /// aligned to the given token universe (order-preserving).
    pub fn distribution(&self, universe: &[AbstractToken]) -> Vec<f64> {
        let total: usize = self.token_histogram.values().sum();
        if total == 0 {
            return vec![0.0; universe.len()];
        }
        universe
            .iter()
            .map(|t| self.token_histogram.get(t).copied().unwrap_or(0) as f64 / total as f64)
            .collect()
    }

    /// Merges another stats record into this one (for corpus aggregation).
    pub fn merge(&mut self, other: &ModuleStats) {
        self.insts += other.insts;
        self.compute += other.compute;
        self.stack_mem += other.stack_mem;
        self.stateful_mem += other.stateful_mem;
        self.packet_mem += other.packet_mem;
        self.api_calls += other.api_calls;
        self.blocks += other.blocks;
        self.loops += other.loops;
        self.globals += other.globals;
        for (t, c) in &other.token_histogram {
            *self.token_histogram.entry(t.clone()).or_insert(0) += c;
        }
    }

    /// The union of token universes across several stats records, sorted.
    pub fn token_universe(stats: &[&ModuleStats]) -> Vec<AbstractToken> {
        let mut all: Vec<AbstractToken> = stats
            .iter()
            .flat_map(|s| s.token_histogram.keys().cloned())
            .collect();
        all.sort();
        all.dedup();
        all
    }
}

/// Is an instruction "interesting" for arithmetic-intensity purposes?
///
/// Arithmetic intensity (compute per memory access) is the feature Clara's
/// scale-out and colocation models key on.
pub fn arithmetic_intensity(stats: &ModuleStats) -> f64 {
    let mem = stats.stateful_mem + stats.packet_mem;
    if mem == 0 {
        stats.compute as f64
    } else {
        stats.compute as f64 / mem as f64
    }
}

/// Classifies whether a module is stateful (has cross-packet state).
pub fn is_stateful(module: &Module) -> bool {
    !module.globals.is_empty()
        || module.funcs.iter().any(|f| {
            f.blocks.iter().any(|b| {
                b.insts.iter().any(|i| {
                    matches!(i.class(), InstClass::StatefulMem)
                        || matches!(i, Inst::Call { api, .. } if api.state_global().is_some())
                })
            })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{ApiCall, BinOp, MemRef, Operand, PktField};
    use crate::module::{StateKind, Ty};

    fn sample_module() -> Module {
        let mut m = Module::new("sample");
        let g = m.add_global("ctr", StateKind::Scalar, 4, 1);
        let mut fb = FunctionBuilder::new("process");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
        let c = fb.load(Ty::I32, MemRef::global(g));
        let c2 = fb.bin(BinOp::Add, Ty::I32, c, Operand::imm(1));
        fb.store(Ty::I32, c2, MemRef::global(g));
        let slot = fb.slot();
        fb.store(Ty::I16, len, MemRef::stack(slot));
        let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
        fb.ret(None);
        m.funcs.push(fb.finish());
        m
    }

    #[test]
    fn counts_each_class() {
        let m = sample_module();
        let s = ModuleStats::of_module(&m);
        assert_eq!(s.compute, 1);
        assert_eq!(s.stateful_mem, 2);
        assert_eq!(s.packet_mem, 1);
        assert_eq!(s.stack_mem, 1);
        assert_eq!(s.api_calls, 1);
        assert_eq!(s.insts, 6);
        assert_eq!(s.globals, 1);
        assert!(is_stateful(&m));
    }

    #[test]
    fn distribution_sums_to_one() {
        let m = sample_module();
        let s = ModuleStats::of_module(&m);
        let universe = ModuleStats::token_universe(&[&s]);
        let d = s.distribution(&universe);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn merge_adds_counts() {
        let m = sample_module();
        let s1 = ModuleStats::of_module(&m);
        let mut s2 = s1.clone();
        s2.merge(&s1);
        assert_eq!(s2.insts, 2 * s1.insts);
        assert_eq!(
            s2.token_histogram.values().sum::<usize>(),
            2 * s1.token_histogram.values().sum::<usize>()
        );
    }

    #[test]
    fn arithmetic_intensity_handles_zero_mem() {
        let s = ModuleStats {
            compute: 10,
            ..Default::default()
        };
        assert_eq!(arithmetic_intensity(&s), 10.0);
    }
}
