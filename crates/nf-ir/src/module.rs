//! Modules, functions, blocks, globals, and the primitive type system.

use serde::{Deserialize, Serialize};

use crate::inst::{Inst, Term, ValueId};

/// Primitive integer types supported by NIR.
///
/// NIR has no pointer type: address arithmetic is expressed through
/// [`crate::MemRef`] operands, which keeps the memory-region classification
/// (stack vs. global vs. packet) syntactically evident, as Clara's analyses
/// require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Ty {
    /// 1-bit boolean (comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl Ty {
    /// Size of the type in bits.
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I16 => 16,
            Ty::I32 => 32,
            Ty::I64 => 64,
        }
    }

    /// Size of the type in bytes, rounded up.
    pub fn bytes(self) -> u32 {
        self.bits().div_ceil(8)
    }

    /// Textual name as used by the printer (`i32` etc.).
    pub fn name(self) -> &'static str {
        match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
        }
    }

    /// Parses a type name produced by [`Ty::name`].
    pub fn from_name(s: &str) -> Option<Ty> {
        match s {
            "i1" => Some(Ty::I1),
            "i8" => Some(Ty::I8),
            "i16" => Some(Ty::I16),
            "i32" => Some(Ty::I32),
            "i64" => Some(Ty::I64),
            _ => None,
        }
    }

    /// All types, in increasing width order.
    pub const ALL: [Ty; 5] = [Ty::I1, Ty::I8, Ty::I16, Ty::I32, Ty::I64];
}

/// Identifier for a basic block within a function.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index usable for dense per-block tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier for a global (stateful) data structure within a module.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Index usable for dense per-global tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The flavour of a stateful data structure.
///
/// Clara's reverse-porting step (Section 3.3 of the paper) cares about the
/// *kind* of Click data structure because host and SmartNIC implementations
/// walk them differently (linear probing vs. fixed bucket sets, elastic
/// vectors vs. tombstoned fixed arrays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StateKind {
    /// A plain scalar or small fixed struct (e.g., a counter).
    Scalar,
    /// A fixed-size array indexed by a computed offset.
    Array,
    /// A hash map keyed by flow tuples (`HashMap` in Click).
    HashMap,
    /// An elastically sized vector (`Vector` in Click).
    Vector,
    /// A sketch / probabilistic structure (rows x columns of counters).
    Sketch,
    /// A trie used for longest-prefix matching.
    Trie,
    /// A keyed flow table with timeouts and eviction (see [`FlowSpec`]).
    FlowTable,
}

impl StateKind {
    /// Short lowercase name used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            StateKind::Scalar => "scalar",
            StateKind::Array => "array",
            StateKind::HashMap => "hashmap",
            StateKind::Vector => "vector",
            StateKind::Sketch => "sketch",
            StateKind::Trie => "trie",
            StateKind::FlowTable => "flowtable",
        }
    }

    /// Parses a name produced by [`StateKind::name`].
    pub fn from_name(s: &str) -> Option<StateKind> {
        match s {
            "scalar" => Some(StateKind::Scalar),
            "array" => Some(StateKind::Array),
            "hashmap" => Some(StateKind::HashMap),
            "vector" => Some(StateKind::Vector),
            "sketch" => Some(StateKind::Sketch),
            "trie" => Some(StateKind::Trie),
            "flowtable" => Some(StateKind::FlowTable),
            _ => None,
        }
    }
}

/// Which entry a full flow-table bucket sacrifices on insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictPolicy {
    /// Evict the bucket entry with the oldest `last_seen` stamp
    /// (ties broken by lowest slot index).
    Lru,
    /// Evict a pseudo-random bucket entry drawn from a per-table
    /// deterministic stream.
    Random,
}

impl EvictPolicy {
    /// Short lowercase name used by the printer.
    pub fn name(self) -> &'static str {
        match self {
            EvictPolicy::Lru => "lru",
            EvictPolicy::Random => "random",
        }
    }

    /// Parses a name produced by [`EvictPolicy::name`].
    pub fn from_name(s: &str) -> Option<EvictPolicy> {
        match s {
            "lru" => Some(EvictPolicy::Lru),
            "random" => Some(EvictPolicy::Random),
            _ => None,
        }
    }
}

/// Flow-table behaviour attached to a [`StateKind::FlowTable`] global.
///
/// Timeouts are measured in *element clock ticks* (one tick per packet
/// the element processes, the same clock [`crate::ApiCall::Timestamp`]
/// reads) so every execution layer ages entries identically — wall
/// clocks would break the difftest oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Ticks since `last_seen` after which an entry expires; `0`
    /// disables idle expiry.
    pub idle_timeout: u32,
    /// Ticks since creation after which an entry expires regardless of
    /// activity; `0` disables hard expiry.
    pub hard_timeout: u32,
    /// Which entry a full bucket sacrifices on insert.
    pub evict: EvictPolicy,
}

/// Definition of a global (stateful, cross-packet) data structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Identifier referenced by [`crate::MemRef::Global`] operands.
    pub id: GlobalId,
    /// Human-readable name (`flow_table`, `pkt_counter`, ...).
    pub name: String,
    /// Structure kind; drives reverse porting and placement heuristics.
    pub kind: StateKind,
    /// Size in bytes of one entry.
    pub entry_bytes: u32,
    /// Number of entries (pre-sized — baremetal NICs lack `malloc`).
    pub entries: u32,
    /// Flow-table behaviour; `Some` iff `kind == StateKind::FlowTable`.
    /// (The compat serde maps a missing field to `None`, so modules
    /// serialized before this field existed still load.)
    pub flow: Option<FlowSpec>,
}

impl GlobalDef {
    /// Total size of the structure in bytes.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.entry_bytes) * u64::from(self.entries)
    }
}

/// A basic block: a straight-line instruction sequence plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// This block's id; equals its position in [`Function::blocks`].
    pub id: BlockId,
    /// Non-terminator instructions in program order.
    pub insts: Vec<Inst>,
    /// The sole terminator.
    pub term: Term,
}

impl Block {
    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len() + 1
    }

    /// A block always contains at least its terminator.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A function: parameters plus a list of basic blocks, entry first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Formal parameters: SSA values live on entry.
    pub params: Vec<(ValueId, Ty)>,
    /// Basic blocks; `blocks[i].id == BlockId(i)`, entry is `blocks[0]`.
    pub blocks: Vec<Block>,
    /// Number of SSA values allocated (all `ValueId`s are `< next_value`).
    pub next_value: u32,
    /// Number of stack slots allocated.
    pub next_slot: u32,
}

impl Function {
    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (an unfinished builder state).
    pub fn entry(&self) -> &Block {
        &self.blocks[0]
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index())
    }

    /// Total instruction count including terminators.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }
}

/// A module: global data structures plus functions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Module {
    /// Module name (typically the NF element name).
    pub name: String,
    /// Stateful data structures; `globals[i].id == GlobalId(i)`.
    pub globals: Vec<GlobalDef>,
    /// Functions; by convention the packet handler is first.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            globals: Vec::new(),
            funcs: Vec::new(),
        }
    }

    /// Registers a global data structure and returns its id.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        kind: StateKind,
        entry_bytes: u32,
        entries: u32,
    ) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalDef {
            id,
            name: name.into(),
            kind,
            entry_bytes,
            entries,
            flow: None,
        });
        id
    }

    /// Registers a keyed flow table ([`StateKind::FlowTable`]) with the
    /// given timeout/eviction behaviour and returns its id.
    pub fn add_flow_table(
        &mut self,
        name: impl Into<String>,
        entry_bytes: u32,
        entries: u32,
        spec: FlowSpec,
    ) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(GlobalDef {
            id,
            name: name.into(),
            kind: StateKind::FlowTable,
            entry_bytes,
            entries,
            flow: Some(spec),
        });
        id
    }

    /// Looks up a global definition.
    pub fn global(&self, id: GlobalId) -> Option<&GlobalDef> {
        self.globals.get(id.index())
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The packet-handler function (first function by convention).
    pub fn handler(&self) -> Option<&Function> {
        self.funcs.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes_are_consistent() {
        assert_eq!(Ty::I1.bytes(), 1);
        assert_eq!(Ty::I8.bytes(), 1);
        assert_eq!(Ty::I16.bytes(), 2);
        assert_eq!(Ty::I32.bytes(), 4);
        assert_eq!(Ty::I64.bytes(), 8);
        for ty in Ty::ALL {
            assert_eq!(Ty::from_name(ty.name()), Some(ty));
        }
    }

    #[test]
    fn state_kind_names_round_trip() {
        for kind in [
            StateKind::Scalar,
            StateKind::Array,
            StateKind::HashMap,
            StateKind::Vector,
            StateKind::Sketch,
            StateKind::Trie,
            StateKind::FlowTable,
        ] {
            assert_eq!(StateKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(StateKind::from_name("bogus"), None);
        for evict in [EvictPolicy::Lru, EvictPolicy::Random] {
            assert_eq!(EvictPolicy::from_name(evict.name()), Some(evict));
        }
        assert_eq!(EvictPolicy::from_name("fifo"), None);
    }

    #[test]
    fn module_global_registration_assigns_sequential_ids() {
        let mut m = Module::new("test");
        let a = m.add_global("a", StateKind::Scalar, 4, 1);
        let b = m.add_global("b", StateKind::HashMap, 16, 1024);
        assert_eq!(a, GlobalId(0));
        assert_eq!(b, GlobalId(1));
        assert_eq!(m.global(b).unwrap().total_bytes(), 16 * 1024);
        assert!(m.global(GlobalId(7)).is_none());
    }

    #[test]
    fn flow_table_registration_carries_its_spec() {
        let mut m = Module::new("test");
        let t = m.add_flow_table(
            "flows",
            16,
            4096,
            FlowSpec {
                idle_timeout: 32,
                hard_timeout: 256,
                evict: EvictPolicy::Lru,
            },
        );
        let g = m.global(t).unwrap();
        assert_eq!(g.kind, StateKind::FlowTable);
        let spec = g.flow.unwrap();
        assert_eq!(spec.idle_timeout, 32);
        assert_eq!(spec.hard_timeout, 256);
        assert_eq!(spec.evict, EvictPolicy::Lru);
        // Non-flow globals carry no spec.
        let a = m.add_global("a", StateKind::Scalar, 4, 1);
        assert!(m.global(a).unwrap().flow.is_none());
    }
}
