//! NIR: a typed, SSA-form intermediate representation for network functions.
//!
//! NIR is this repository's substitute for LLVM IR in the Clara pipeline
//! (SOSP 2021). It deliberately mirrors the subset of LLVM that Clara's
//! analyses consume:
//!
//! - typed SSA values and the usual integer compute instructions
//!   ([`Inst::Bin`], [`Inst::Icmp`], [`Inst::Cast`], [`Inst::Select`]);
//! - explicit memory instructions ([`Inst::Load`], [`Inst::Store`]) whose
//!   [`MemRef`] distinguishes *stateless* stack slots, *stateful* global
//!   data structures, and packet data — the distinction at the heart of
//!   Clara's Section 3.2 analysis;
//! - NF-framework API calls ([`Inst::Call`] with an [`ApiCall`]), which
//!   Clara handles by reverse porting instead of instruction prediction;
//! - basic blocks with explicit terminators, from which a control-flow
//!   graph ([`cfg::Cfg`]) is derived.
//!
//! The crate also provides the *vocabulary compaction* step of the paper
//! ([`abstraction`]): concrete operands are abstracted into a small closed
//! vocabulary ("add i32 VAR, IMM8") suitable for one-hot encoding and
//! sequence models.
//!
//! # Examples
//!
//! ```
//! use nf_ir::{FunctionBuilder, Ty, Operand, MemRef, PktField};
//!
//! let mut fb = FunctionBuilder::new("inc_ttl");
//! let bb0 = fb.entry_block();
//! fb.switch_to(bb0);
//! let ttl = fb.load(Ty::I8, MemRef::pkt(PktField::IpTtl));
//! let dec = fb.bin(nf_ir::BinOp::Sub, Ty::I8, ttl, Operand::imm(1));
//! fb.store(Ty::I8, dec, MemRef::pkt(PktField::IpTtl));
//! fb.ret(Some(dec));
//! let func = fb.finish();
//! assert!(nf_ir::verify::verify_function(&func).is_ok());
//! ```

pub mod abstraction;
pub mod builder;
pub mod cfg;
pub mod inst;
pub mod module;
pub mod opt;
pub mod parse;
pub mod print;
pub mod stats;
pub mod verify;

pub use abstraction::{abstract_inst, abstract_term, AbstractToken, Vocabulary};
pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use inst::{
    ApiCall, BinOp, CastOp, Inst, InstClass, MemRef, Operand, PktField, Pred, Term, ValueId,
};
pub use module::{
    Block, BlockId, EvictPolicy, FlowSpec, Function, GlobalDef, GlobalId, Module, StateKind, Ty,
};
pub use stats::ModuleStats;
