//! Textual printer for NIR modules (round-trips with [`crate::parse`]).

use std::fmt::Write as _;

use crate::inst::{ApiCall, Inst, MemRef, Operand, Term};
use crate::module::{Block, Function, Module};

/// Renders an operand (`%3` or an integer literal).
pub fn operand(op: Operand) -> String {
    match op {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::Const(c) => c.to_string(),
    }
}

/// Renders a memory reference (`slot[0]`, `@2[%5+4]`, `pkt.ip_len`).
pub fn mem_ref(mem: &MemRef) -> String {
    match mem {
        MemRef::Stack { slot } => format!("slot[{slot}]"),
        MemRef::Global {
            global,
            index,
            offset,
        } => match (index, offset) {
            (None, 0) => format!("@{}", global.0),
            (None, off) => format!("@{}[+{off}]", global.0),
            (Some(idx), 0) => format!("@{}[{}]", global.0, operand(*idx)),
            (Some(idx), off) => format!("@{}[{}+{off}]", global.0, operand(*idx)),
        },
        MemRef::Pkt { field } => format!("pkt.{}", field.name()),
    }
}

fn call_name(api: &ApiCall) -> String {
    match api.state_global() {
        Some(g) => format!("{}@{}", api.name(), g.0),
        None => api.name().to_string(),
    }
}

/// Renders a single instruction.
pub fn inst(i: &Inst) -> String {
    match i {
        Inst::Bin {
            dst,
            op,
            ty,
            lhs,
            rhs,
        } => format!(
            "%{} = {} {} {}, {}",
            dst.0,
            op.name(),
            ty.name(),
            operand(*lhs),
            operand(*rhs)
        ),
        Inst::Icmp {
            dst,
            pred,
            ty,
            lhs,
            rhs,
        } => format!(
            "%{} = icmp {} {} {}, {}",
            dst.0,
            pred.name(),
            ty.name(),
            operand(*lhs),
            operand(*rhs)
        ),
        Inst::Cast {
            dst,
            op,
            from,
            to,
            src,
        } => format!(
            "%{} = {} {} {} to {}",
            dst.0,
            op.name(),
            from.name(),
            operand(*src),
            to.name()
        ),
        Inst::Select {
            dst,
            ty,
            cond,
            on_true,
            on_false,
        } => format!(
            "%{} = select {} {}, {}, {}",
            dst.0,
            ty.name(),
            operand(*cond),
            operand(*on_true),
            operand(*on_false)
        ),
        Inst::Load { dst, ty, mem } => {
            format!("%{} = load {}, {}", dst.0, ty.name(), mem_ref(mem))
        }
        Inst::Store { ty, val, mem } => {
            format!("store {} {}, {}", ty.name(), operand(*val), mem_ref(mem))
        }
        Inst::Call { dst, api, args } => {
            let args: Vec<String> = args.iter().map(|a| operand(*a)).collect();
            match dst {
                Some(d) => format!("%{} = call {}({})", d.0, call_name(api), args.join(", ")),
                None => format!("call {}({})", call_name(api), args.join(", ")),
            }
        }
        Inst::Phi { dst, ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(bb, v)| format!("[bb{}: {}]", bb.0, operand(*v)))
                .collect();
            format!("%{} = phi {} {}", dst.0, ty.name(), inc.join(", "))
        }
    }
}

/// Renders a terminator.
pub fn term(t: &Term) -> String {
    match t {
        Term::Br { target } => format!("br bb{}", target.0),
        Term::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "condbr {}, bb{}, bb{}",
            operand(*cond),
            then_bb.0,
            else_bb.0
        ),
        Term::Ret { val: Some(v) } => format!("ret {}", operand(*v)),
        Term::Ret { val: None } => "ret".to_string(),
    }
}

fn block(out: &mut String, b: &Block) {
    let _ = writeln!(out, "  bb{}:", b.id.0);
    for i in &b.insts {
        let _ = writeln!(out, "    {}", inst(i));
    }
    let _ = writeln!(out, "    {}", term(&b.term));
}

/// Renders a function.
pub fn function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(v, ty)| format!("%{}: {}", v.0, ty.name()))
        .collect();
    let _ = writeln!(
        out,
        "  func @{}({}) slots={} values={} {{",
        f.name,
        params.join(", "),
        f.next_slot,
        f.next_value
    );
    for b in &f.blocks {
        block(&mut out, b);
    }
    let _ = writeln!(out, "  }}");
    out
}

/// Renders a whole module.
pub fn module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module @{} {{", m.name);
    for g in &m.globals {
        let _ = write!(
            out,
            "  global @{} {} : {} entry={} n={}",
            g.id.0,
            g.name,
            g.kind.name(),
            g.entry_bytes,
            g.entries
        );
        if let Some(spec) = &g.flow {
            let _ = write!(
                out,
                " idle={} hard={} evict={}",
                spec.idle_timeout,
                spec.hard_timeout,
                spec.evict.name()
            );
        }
        out.push('\n');
    }
    for f in &m.funcs {
        out.push_str(&function(f));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, PktField, Pred, ValueId};
    use crate::module::{BlockId, GlobalId, Ty};

    #[test]
    fn renders_instructions() {
        let i = Inst::Bin {
            dst: ValueId(3),
            op: BinOp::Xor,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(1)),
            rhs: Operand::Const(255),
        };
        assert_eq!(inst(&i), "%3 = xor i32 %1, 255");

        let l = Inst::Load {
            dst: ValueId(4),
            ty: Ty::I16,
            mem: MemRef::pkt(PktField::IpLen),
        };
        assert_eq!(inst(&l), "%4 = load i16, pkt.ip_len");

        let s = Inst::Store {
            ty: Ty::I32,
            val: Operand::Value(ValueId(4)),
            mem: MemRef::global_at(GlobalId(2), ValueId(1), 8),
        };
        assert_eq!(inst(&s), "store i32 %4, @2[%1+8]");
    }

    #[test]
    fn renders_phi_and_terms() {
        let p = Inst::Phi {
            dst: ValueId(9),
            ty: Ty::I32,
            incomings: vec![
                (BlockId(1), Operand::Value(ValueId(2))),
                (BlockId(2), Operand::Const(0)),
            ],
        };
        assert_eq!(inst(&p), "%9 = phi i32 [bb1: %2], [bb2: 0]");
        assert_eq!(
            term(&Term::CondBr {
                cond: Operand::Value(ValueId(1)),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }),
            "condbr %1, bb1, bb2"
        );
    }

    #[test]
    fn renders_calls_with_state_global() {
        let c = Inst::Call {
            dst: Some(ValueId(7)),
            api: ApiCall::HashMapFind(GlobalId(0)),
            args: vec![Operand::Value(ValueId(5))],
        };
        assert_eq!(inst(&c), "%7 = call hashmap_find@0(%5)");
        let v = Inst::Call {
            dst: None,
            api: ApiCall::PktSend,
            args: vec![Operand::Const(1)],
        };
        assert_eq!(inst(&v), "call pkt_send(1)");
    }

    #[test]
    fn renders_comparisons_and_casts() {
        let c = Inst::Icmp {
            dst: ValueId(2),
            pred: Pred::ULt,
            ty: Ty::I16,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Const(1500),
        };
        assert_eq!(inst(&c), "%2 = icmp ult i16 %0, 1500");
        let z = Inst::Cast {
            dst: ValueId(3),
            op: crate::inst::CastOp::Zext,
            from: Ty::I8,
            to: Ty::I32,
            src: Operand::Value(ValueId(2)),
        };
        assert_eq!(inst(&z), "%3 = zext i8 %2 to i32");
    }
}
