//! Differential semantics oracle across the three execution layers.
//!
//! Clara's insights are only trustworthy if the execution that produced
//! the profiles is the execution the NF actually performs. This module
//! checks that end to end: for each synthesized seed it runs the same
//! trace through
//!
//! - **layer A** — the reference executor ([`click_model::RefMachine`],
//!   independently written Click-element semantics),
//! - **layer B** — the NIR interpreter ([`click_model::Machine`]) on the
//!   lowered module, and
//! - **layer C** — the same interpreter on the
//!   [`nf_ir::opt`]-optimized module,
//!
//! and asserts that emitted packets and port decisions, state-access
//! sequences, API events, and the `nicsim` cost profiles (B vs C,
//! compute excluded) all agree. On divergence a built-in shrinker
//! removes instructions, rewrites terminators, and drops globals —
//! re-verifying with [`nf_ir::verify`] and re-checking the oracle after
//! every edit — and writes a minimized NIR module plus a repro command
//! as an artifact.
//!
//! Seed sweeps fan out through [`crate::engine`] (`try_par_map`), so
//! they are parallel, fault-tolerant, and — with `CLARA_CACHE_DIR` set —
//! profile raw/optimized modules through the persistent disk cache.
//!
//! With [`DifftestConfig::backends`] naming two or more built-in device
//! manifests, every clean seed is additionally profiled under each
//! device and the access-side profile signals must be identical across
//! all of them (execution semantics are hardware-invariant), while the
//! sweep collects the largest cross-backend compute delta as evidence
//! the manifests genuinely change predicted cost.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use clara_hal::{Backend as _, DeviceBackend};
use clara_obs as obs;
use click_model::{Event, Machine, PacketView, RefMachine};
use nf_ir::inst::{BinOp, Inst, Term};
use nf_ir::{opt, parse, print, verify, Module};
use nic_sim::{NicConfig, PortConfig};
use trafgen::{Trace, WorkloadSpec};

use crate::engine::{self, Engine};
use crate::error::ClaraError;

/// Configuration of one difftest sweep.
#[derive(Debug, Clone)]
pub struct DifftestConfig {
    /// Number of synthesized seeds to check.
    pub seeds: u64,
    /// First seed (the sweep covers `start_seed..start_seed + seeds`).
    pub start_seed: u64,
    /// Packets per seed.
    pub pkts: usize,
    /// Distribution-guided synthesis (matches the training corpora).
    pub guided: bool,
    /// Run the shrinker on divergent seeds.
    pub shrink: bool,
    /// Where to write minimized repros (none: report only).
    pub artifact_dir: Option<PathBuf>,
    /// Deliberate miscompile injected into layer C (smoke tests).
    pub inject: Option<Injection>,
    /// Built-in device backends for the cross-backend oracle: every
    /// clean seed is additionally profiled under each named manifest and
    /// the access-side signals must be identical everywhere, while
    /// compute-cycle deltas are collected as evidence the devices
    /// actually differ. Fewer than two names: the dimension is skipped.
    pub backends: Vec<String>,
}

impl Default for DifftestConfig {
    fn default() -> DifftestConfig {
        DifftestConfig {
            seeds: 500,
            start_seed: 0,
            pkts: 64,
            guided: true,
            shrink: true,
            artifact_dir: None,
            inject: None,
            backends: Vec::new(),
        }
    }
}

/// A deliberate miscompile applied to the optimized module, used to
/// prove the oracle catches divergences and the shrinker minimizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Flip the first `add` to `sub` (or the reverse). A no-op on
    /// modules with neither, so shrinking converges on the arithmetic
    /// actually responsible for the divergence.
    FlipArith,
}

/// Which layers (or derived signals) disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Reference executor vs interpreter on the same module.
    RefVsInterp,
    /// Interpreter on the raw vs the optimized module.
    RawVsOpt,
    /// `nicsim` access profiles (compute excluded) raw vs optimized.
    Profile,
    /// A layer failed loudly (typed trace error) — malformed lowering.
    TraceError,
    /// The optimized module no longer passes `nf_ir::verify`.
    OptInvalid,
    /// Access profiles differ across device backends — execution
    /// semantics leaked a hardware dependency.
    Backend,
}

impl DivergenceKind {
    /// Stable label used in reports and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::RefVsInterp => "ref-vs-interp",
            DivergenceKind::RawVsOpt => "raw-vs-opt",
            DivergenceKind::Profile => "profile",
            DivergenceKind::TraceError => "trace-error",
            DivergenceKind::OptInvalid => "opt-invalid",
            DivergenceKind::Backend => "backend",
        }
    }
}

/// One observed disagreement between layers.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which signal disagreed.
    pub kind: DivergenceKind,
    /// Packet index at which it surfaced (None: end-of-trace signals).
    pub pkt: Option<usize>,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.kind.label())?;
        if let Some(i) = self.pkt {
            write!(f, "pkt {i}: ")?;
        }
        write!(f, "{}", self.detail)
    }
}

/// Outcome of shrinking one divergent module.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized module (still divergent, still verifies).
    pub module: Module,
    /// Blocks before/after.
    pub blocks_before: usize,
    /// Blocks after shrinking.
    pub blocks_after: usize,
    /// Instructions before shrinking.
    pub insts_before: usize,
    /// Instructions after shrinking.
    pub insts_after: usize,
    /// Oracle evaluations the shrinker spent.
    pub checks: usize,
}

/// Per-seed result.
#[derive(Debug, Clone)]
pub struct SeedReport {
    /// The synthesis seed.
    pub seed: u64,
    /// Name of the synthesized module.
    pub module_name: String,
    /// The divergence, if any.
    pub divergence: Option<Divergence>,
    /// Shrinker result for divergent seeds (when shrinking is enabled).
    pub minimized: Option<ShrinkOutcome>,
    /// Artifact path, when a repro was written.
    pub artifact: Option<PathBuf>,
    /// Artifact-write failure, surfaced instead of dropped.
    pub artifact_error: Option<String>,
    /// Largest absolute compute-cycle delta between any configured
    /// backend and the first one (0.0 when the backend dimension is
    /// off or the seed diverged before reaching it).
    pub backend_compute_delta: f64,
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone)]
pub struct DifftestReport {
    /// Seeds checked (excluding engine-failed tasks).
    pub checked: usize,
    /// Divergent seeds, in seed order.
    pub divergent: Vec<SeedReport>,
    /// Engine tasks that failed permanently (fault injection, panics).
    pub engine_failures: usize,
    /// Artifact directory the sweep wrote into, if configured.
    pub artifact_dir: Option<PathBuf>,
    /// Largest cross-backend compute delta observed over the sweep.
    /// Semantics must be backend-invariant but *costs* must not be:
    /// a multi-backend sweep over API-calling NFs where this stays 0.0
    /// means the manifests are not actually being consulted.
    pub max_backend_compute_delta: f64,
}

impl DifftestReport {
    /// Maps the report to the CLI error contract: divergences dominate
    /// (exit 6), then degraded runs (exit 3), else success.
    pub fn into_result(self) -> Result<DifftestReport, ClaraError> {
        if !self.divergent.is_empty() {
            return Err(ClaraError::Divergence {
                found: self.divergent.len(),
                checked: self.checked + self.divergent.len(),
                artifact_dir: self.artifact_dir.clone(),
            });
        }
        if self.engine_failures > 0 {
            return Err(ClaraError::Degraded {
                failed: self.engine_failures,
                total: self.checked + self.engine_failures,
            });
        }
        Ok(self)
    }
}

struct DtCounters {
    seeds: obs::Counter,
    divergences: obs::Counter,
    pkts_ref: obs::Counter,
    pkts_interp: obs::Counter,
    pkts_opt: obs::Counter,
    shrink_checks: obs::Counter,
    backend_profiles: obs::Counter,
}

fn counters() -> &'static DtCounters {
    static C: OnceLock<DtCounters> = OnceLock::new();
    C.get_or_init(|| DtCounters {
        seeds: obs::counter("difftest.seeds"),
        divergences: obs::counter("difftest.divergences"),
        pkts_ref: obs::counter("difftest.pkts.ref"),
        pkts_interp: obs::counter("difftest.pkts.interp"),
        pkts_opt: obs::counter("difftest.pkts.opt"),
        shrink_checks: obs::counter("difftest.shrink_checks"),
        backend_profiles: obs::counter("difftest.backend_profiles"),
    })
}

/// The deterministic trace a seed is checked under. Replay commands use
/// the same derivation, so a repro needs only `--seed` and `--pkts`.
pub fn trace_for_seed(seed: u64, pkts: usize) -> Trace {
    Trace::generate(&WorkloadSpec::imix(), pkts, seed)
}

/// The layer-C pipeline: `nf_ir::opt::optimize` plus the configured
/// injection, if any.
pub fn optimize_module(module: &Module, inject: Option<Injection>) -> Module {
    let mut m = module.clone();
    let _ = opt::optimize(&mut m);
    if let Some(inj) = inject {
        apply_injection(&mut m, inj);
    }
    m
}

fn apply_injection(m: &mut Module, inj: Injection) {
    match inj {
        Injection::FlipArith => {
            for f in &mut m.funcs {
                for b in &mut f.blocks {
                    for inst in &mut b.insts {
                        if let Inst::Bin { op, .. } = inst {
                            match op {
                                BinOp::Add => {
                                    *op = BinOp::Sub;
                                    return;
                                }
                                BinOp::Sub => {
                                    *op = BinOp::Add;
                                    return;
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
}

/// How the profile oracle (B vs C) is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProfileMode {
    /// Through the engine's memo/disk caches (sweeps).
    Cached,
    /// Direct `nicsim` profiling, bypassing caches (shrinker).
    Direct,
    /// Skipped (shrinker predicates for non-profile divergences).
    Skip,
}

/// Runs the full three-layer oracle for one module over one trace.
///
/// Returns the first divergence found, or `None` when every layer
/// agrees (including the raw-vs-optimized access profiles).
pub fn check_module(
    module: &Module,
    trace: &Trace,
    inject: Option<Injection>,
) -> Option<Divergence> {
    check_with(module, trace, inject, ProfileMode::Cached)
}

fn observable(events: &[Event]) -> Vec<&Event> {
    events
        .iter()
        .filter(|e| !matches!(e, Event::Block(_)))
        .collect()
}

fn first_mismatch<T: PartialEq + fmt::Debug>(a: &[T], b: &[T]) -> String {
    let i = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    format!(
        "event {i}: {:?} vs {:?} (lengths {} vs {})",
        a.get(i),
        b.get(i),
        a.len(),
        b.len()
    )
}

#[allow(clippy::too_many_lines)]
fn check_with(
    module: &Module,
    trace: &Trace,
    inject: Option<Injection>,
    profiles: ProfileMode,
) -> Option<Divergence> {
    let c = counters();
    let opt_module = optimize_module(module, inject);
    if let Err(e) = verify::verify_module(&opt_module) {
        return Some(Divergence {
            kind: DivergenceKind::OptInvalid,
            pkt: None,
            detail: format!("optimized module fails verification: {e}"),
        });
    }
    let mut layer_a = match RefMachine::new(module) {
        Ok(m) => m,
        Err(e) => {
            return Some(Divergence {
                kind: DivergenceKind::TraceError,
                pkt: None,
                detail: format!("module fails verification: {e}"),
            })
        }
    };
    let mut layer_b = Machine::new(module).expect("verified by RefMachine::new");
    let mut layer_c = Machine::new(&opt_module).expect("verified above");

    for (i, pkt) in trace.pkts.iter().enumerate() {
        let mut va = PacketView::new(pkt);
        let mut vb = PacketView::new(pkt);
        let mut vc = PacketView::new(pkt);
        let ra = layer_a.run_view(&mut va);
        c.pkts_ref.incr();
        let rb = layer_b.run_view(&mut vb);
        c.pkts_interp.incr();
        let rc = layer_c.run_view(&mut vc);
        c.pkts_opt.incr();

        // Loud failure anywhere — including layers disagreeing about
        // *whether* execution fails — stops the seed immediately.
        let errs: Vec<String> = [("ref", &ra), ("interp", &rb), ("opt", &rc)]
            .iter()
            .filter_map(|(l, r)| r.as_ref().err().map(|e| format!("{l}: {e}")))
            .collect();
        if !errs.is_empty() {
            return Some(Divergence {
                kind: DivergenceKind::TraceError,
                pkt: Some(i),
                detail: errs.join("; "),
            });
        }
        let (ta, verdict_a) = ra.expect("checked above");
        let (tb, verdict_b) = rb.expect("checked above");
        let (tc, verdict_c) = rc.expect("checked above");

        // Layer A vs B: same module, independent evaluators — the whole
        // trace must match (events, steps, return, packet, verdict).
        if ta != tb {
            return Some(Divergence {
                kind: DivergenceKind::RefVsInterp,
                pkt: Some(i),
                detail: if ta.events != tb.events {
                    first_mismatch(&ta.events, &tb.events)
                } else {
                    format!(
                        "steps/ret: {}/{:?} vs {}/{:?}",
                        ta.steps, ta.ret, tb.steps, tb.ret
                    )
                },
            });
        }
        if verdict_a != verdict_b || va.snapshot() != vb.snapshot() {
            return Some(Divergence {
                kind: DivergenceKind::RefVsInterp,
                pkt: Some(i),
                detail: format!(
                    "packet outputs differ: verdict {verdict_a:?} vs {verdict_b:?}"
                ),
            });
        }

        // Layer B vs C: optimization may renumber blocks and drop pure
        // compute, but every observable — the State/Pkt/Api event
        // subsequence, return value, verdict, and emitted packet — must
        // be identical.
        if tb.ret != tc.ret {
            return Some(Divergence {
                kind: DivergenceKind::RawVsOpt,
                pkt: Some(i),
                detail: format!("return value: {:?} vs {:?}", tb.ret, tc.ret),
            });
        }
        if verdict_b != verdict_c {
            return Some(Divergence {
                kind: DivergenceKind::RawVsOpt,
                pkt: Some(i),
                detail: format!("verdict: {verdict_b:?} vs {verdict_c:?}"),
            });
        }
        if vb.snapshot() != vc.snapshot() {
            return Some(Divergence {
                kind: DivergenceKind::RawVsOpt,
                pkt: Some(i),
                detail: "emitted packet contents differ".into(),
            });
        }
        let ob = observable(&tb.events);
        let oc = observable(&tc.events);
        if ob != oc {
            return Some(Divergence {
                kind: DivergenceKind::RawVsOpt,
                pkt: Some(i),
                detail: format!("state-access sequence: {}", first_mismatch(&ob, &oc)),
            });
        }
    }

    // Cross-packet state must agree at end of trace. (Mid-trace value
    // differences that never reach an output would surface here.)
    let fa = engine::value_fingerprint(&layer_a.state);
    let fb = engine::value_fingerprint(&layer_b.state);
    let fc = engine::value_fingerprint(&layer_c.state);
    if fa != fb {
        return Some(Divergence {
            kind: DivergenceKind::RefVsInterp,
            pkt: None,
            detail: format!("final state fingerprint: {fa:#x} vs {fb:#x}"),
        });
    }
    if fb != fc {
        return Some(Divergence {
            kind: DivergenceKind::RawVsOpt,
            pkt: None,
            detail: format!("final state fingerprint: {fb:#x} vs {fc:#x}"),
        });
    }

    // Profile oracle: the optimized module must cost the same through
    // the real nfcc/nicsim pipeline, compute cycles excluded.
    let (wp_raw, wp_opt) = match profiles {
        ProfileMode::Skip => return None,
        ProfileMode::Cached => {
            let eng = Engine::new();
            let port = PortConfig::naive();
            let cfg = NicConfig::default();
            (
                eng.profile_cached(module, trace, &port, &cfg),
                eng.profile_cached(&opt_module, trace, &port, &cfg),
            )
        }
        ProfileMode::Direct => {
            let port = PortConfig::naive();
            let cfg = NicConfig::default();
            (
                nic_sim::profile_workload(module, trace, &port, &cfg, |_| {}),
                nic_sim::profile_workload(&opt_module, trace, &port, &cfg, |_| {}),
            )
        }
    };
    wp_raw
        .access_divergence_from(&wp_opt)
        .map(|detail| Divergence {
            kind: DivergenceKind::Profile,
            pkt: None,
            detail,
        })
}

/// Shrinks a divergent module: repeatedly drops instructions, rewrites
/// terminators (unconditionalizing branches, truncating to `ret`), and
/// pops trailing globals; every candidate must pass [`nf_ir::verify`]
/// and still diverge under the oracle before it replaces the current
/// module. The trace is first truncated to the shortest prefix that
/// still reproduces.
pub fn shrink(
    module: &Module,
    trace: &Trace,
    inject: Option<Injection>,
) -> ShrinkOutcome {
    let blocks_before = module.funcs[0].blocks.len();
    let insts_before: usize = module.funcs[0].blocks.iter().map(|b| b.insts.len()).sum();
    let mut checks = 0usize;
    const BUDGET: usize = 2500;

    // Shrinker predicates skip the profile oracle unless the divergence
    // itself is a profile mismatch — candidate modules should not churn
    // the compile caches.
    let initial = check_with(module, trace, inject, ProfileMode::Skip);
    let profile_mode = if initial.is_some() {
        ProfileMode::Skip
    } else {
        ProfileMode::Direct
    };
    let diverges = |m: &Module, t: &Trace, checks: &mut usize| -> bool {
        *checks += 1;
        counters().shrink_checks.incr();
        verify::verify_module(m).is_ok() && check_with(m, t, inject, profile_mode).is_some()
    };

    let mut cur = module.clone();
    if !diverges(&cur, trace, &mut checks) {
        // Not actually divergent (or only under cached profiles): return
        // unchanged rather than "minimizing" toward nothing.
        return ShrinkOutcome {
            module: cur,
            blocks_before,
            blocks_after: blocks_before,
            insts_before,
            insts_after: insts_before,
            checks,
        };
    }

    // Trace minimization: divergences that surface at packet k only
    // need packets 0..=k.
    let mut trace = trace.clone();
    if let Some(d) = check_with(&cur, &trace, inject, profile_mode) {
        if let Some(k) = d.pkt {
            let mut t2 = trace.clone();
            t2.pkts.truncate(k + 1);
            if diverges(&cur, &t2, &mut checks) {
                trace = t2;
            }
        }
    }

    while checks < BUDGET {
        match shrink_step(&cur, &trace, &mut checks, BUDGET, &diverges) {
            Some(next) => cur = next,
            None => break,
        }
    }

    let blocks_after = cur.funcs[0].blocks.len();
    let insts_after = cur.funcs[0].blocks.iter().map(|b| b.insts.len()).sum();
    ShrinkOutcome {
        module: cur,
        blocks_before,
        blocks_after,
        insts_before,
        insts_after,
        checks,
    }
}

/// One greedy pass: returns the first accepted (smaller, still
/// divergent, still valid) candidate, or `None` at a local minimum.
fn shrink_step(
    cur: &Module,
    trace: &Trace,
    checks: &mut usize,
    budget: usize,
    diverges: &dyn Fn(&Module, &Trace, &mut usize) -> bool,
) -> Option<Module> {
    let func = &cur.funcs[0];

    // 1. Drop one instruction.
    for (bi, block) in func.blocks.iter().enumerate() {
        for ii in 0..block.insts.len() {
            if *checks >= budget {
                return None;
            }
            let mut cand = cur.clone();
            cand.funcs[0].blocks[bi].insts.remove(ii);
            prune(&mut cand);
            if diverges(&cand, trace, checks) {
                return Some(cand);
            }
        }
    }

    // 2. Rewrite terminators: unconditionalize branches, then truncate
    // whole suffixes by returning early.
    for (bi, block) in func.blocks.iter().enumerate() {
        let mut replacements: Vec<Term> = Vec::new();
        match &block.term {
            Term::CondBr {
                then_bb, else_bb, ..
            } => {
                replacements.push(Term::Br { target: *then_bb });
                replacements.push(Term::Br { target: *else_bb });
                replacements.push(Term::Ret { val: None });
            }
            Term::Br { .. } => replacements.push(Term::Ret { val: None }),
            Term::Ret { val: Some(_) } => replacements.push(Term::Ret { val: None }),
            Term::Ret { val: None } => {}
        }
        for term in replacements {
            if *checks >= budget {
                return None;
            }
            let mut cand = cur.clone();
            cand.funcs[0].blocks[bi].term = term;
            prune(&mut cand);
            if diverges(&cand, trace, checks) {
                return Some(cand);
            }
        }
    }

    // 3. Drop the last global (verification rejects dangling uses).
    if !cur.globals.is_empty() && *checks < budget {
        let mut cand = cur.clone();
        cand.globals.pop();
        if diverges(&cand, trace, checks) {
            return Some(cand);
        }
    }
    None
}

/// Removes blocks made unreachable by a shrink edit (semantics-neutral;
/// the oracle re-check guards against everything else).
fn prune(m: &mut Module) {
    for f in &mut m.funcs {
        let _ = opt::remove_unreachable(f);
    }
}

fn io_err(path: &Path, source: std::io::Error) -> ClaraError {
    ClaraError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Writes the minimized module and a repro note; returns the `.nir` path.
fn write_artifacts(
    dir: &Path,
    seed: u64,
    pkts: usize,
    minimized: &Module,
    div: &Divergence,
    inject: Option<Injection>,
) -> Result<PathBuf, ClaraError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let nir = dir.join(format!("seed{seed}.nir"));
    fs::write(&nir, print::module(minimized)).map_err(|e| io_err(&nir, e))?;
    let note = dir.join(format!("seed{seed}.txt"));
    let inject_flag = match inject {
        Some(Injection::FlipArith) => " --inject",
        None => "",
    };
    let body = format!(
        "seed: {seed}\ndivergence: {div}\nrepro: clara difftest --replay {} --pkts {pkts} \
         --seed {seed}{inject_flag}\n",
        nir.display()
    );
    fs::write(&note, body).map_err(|e| io_err(&note, e))?;
    Ok(nir)
}

/// Resolves backend names against the built-in device manifests.
/// Unknown names surface as [`ClaraError::Manifest`] (exit code 8),
/// naming the devices that are available.
pub fn resolve_backends(names: &[String]) -> Result<Vec<&'static DeviceBackend>, ClaraError> {
    names
        .iter()
        .map(|n| {
            clara_hal::builtin(n).ok_or_else(|| ClaraError::Manifest {
                origin: format!("builtin:{n}"),
                field: "(backend)".into(),
                detail: format!(
                    "unknown backend `{n}` (available: {})",
                    clara_hal::builtin_names().join(", ")
                ),
            })
        })
        .collect()
}

/// Cross-backend oracle for one clean seed: profiles the module under
/// every configured device (through the engine's caches, keyed by
/// manifest fingerprint) and asserts the access-side signals — packet
/// counts and sizes, fixed and global accesses, working sets — are
/// identical everywhere. Returns the first divergence, if any, plus the
/// largest compute-cycle delta seen, which should be nonzero whenever
/// the devices differ in accelerator or vendor-library costs.
fn check_backends(
    module: &Module,
    trace: &Trace,
    backends: &[&'static DeviceBackend],
) -> (Option<Divergence>, f64) {
    let Some((base, rest)) = backends.split_first() else {
        return (None, 0.0);
    };
    if rest.is_empty() {
        return (None, 0.0);
    }
    let eng = Engine::new();
    let port = PortConfig::naive();
    let wp_base = eng.profile_cached_for(module, trace, &port, base.nic(), base.fingerprint());
    counters().backend_profiles.incr();
    let mut max_delta = 0.0f64;
    for b in rest {
        let wp = eng.profile_cached_for(module, trace, &port, b.nic(), b.fingerprint());
        counters().backend_profiles.incr();
        if let Some(detail) = wp_base.access_divergence_from(&wp) {
            return (
                Some(Divergence {
                    kind: DivergenceKind::Backend,
                    pkt: None,
                    detail: format!("{} vs {}: {detail}", base.name(), b.name()),
                }),
                max_delta,
            );
        }
        max_delta = max_delta.max((wp_base.compute - wp.compute).abs());
    }
    (None, max_delta)
}

fn check_seed(cfg: &DifftestConfig, backends: &[&'static DeviceBackend], seed: u64) -> SeedReport {
    let module = nf_synth::synth_corpus(1, cfg.guided, seed).remove(0);
    let trace = trace_for_seed(seed, cfg.pkts);
    counters().seeds.incr();
    let mut divergence = check_module(&module, &trace, cfg.inject);
    // The shrinker replays the single-device oracle, so backend
    // divergences (which that oracle cannot reproduce) are reported
    // unminimized.
    let shrinkable = divergence.is_some();
    let mut backend_compute_delta = 0.0;
    if divergence.is_none() {
        let (bd, delta) = check_backends(&module, &trace, backends);
        divergence = bd;
        backend_compute_delta = delta;
    }
    let mut report = SeedReport {
        seed,
        module_name: module.name.clone(),
        divergence,
        minimized: None,
        artifact: None,
        artifact_error: None,
        backend_compute_delta,
    };
    if let Some(div) = &report.divergence {
        counters().divergences.incr();
        if cfg.shrink && shrinkable {
            let outcome = shrink(&module, &trace, cfg.inject);
            if let Some(dir) = &cfg.artifact_dir {
                match write_artifacts(dir, seed, cfg.pkts, &outcome.module, div, cfg.inject) {
                    Ok(path) => report.artifact = Some(path),
                    Err(e) => report.artifact_error = Some(e.to_string()),
                }
            }
            report.minimized = Some(outcome);
        }
    }
    report
}

/// Runs a full sweep: `cfg.seeds` synthesized NFs, checked in parallel
/// through the engine (fault-tolerant, disk-cached when configured).
///
/// Fails fast — before any seed runs — when `cfg.backends` names a
/// device that is not built in.
pub fn run(cfg: &DifftestConfig) -> Result<DifftestReport, ClaraError> {
    let backends = resolve_backends(&cfg.backends)?;
    let _span = obs::span!(
        "difftest",
        "seeds={} pkts={} inject={:?}",
        cfg.seeds,
        cfg.pkts,
        cfg.inject
    );
    let seeds: Vec<u64> = (cfg.start_seed..cfg.start_seed.saturating_add(cfg.seeds)).collect();
    let outcome =
        engine::try_par_map("difftest-sweep", &seeds, |_, &seed| check_seed(cfg, &backends, seed));
    let engine_failures = outcome.failures.len();
    let mut checked = 0usize;
    let mut divergent = Vec::new();
    let mut max_backend_compute_delta = 0.0f64;
    for r in outcome.results.into_iter().flatten() {
        max_backend_compute_delta = max_backend_compute_delta.max(r.backend_compute_delta);
        if r.divergence.is_some() {
            divergent.push(r);
        } else {
            checked += 1;
        }
    }
    divergent.sort_by_key(|r| r.seed);
    Ok(DifftestReport {
        checked,
        divergent,
        engine_failures,
        artifact_dir: cfg.artifact_dir.clone(),
        max_backend_compute_delta,
    })
}

/// Replays a (typically shrinker-minimized) NIR module artifact through
/// the oracle, rebuilding the same trace the sweep used.
pub fn replay(
    path: &Path,
    pkts: usize,
    seed: u64,
    inject: Option<Injection>,
) -> Result<Option<Divergence>, ClaraError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let module = parse::parse_module(&text).map_err(|e| ClaraError::Format {
        path: Some(path.to_path_buf()),
        detail: e.to_string(),
    })?;
    let trace = trace_for_seed(seed, pkts);
    Ok(check_module(&module, &trace, inject))
}

/// A hand-built multi-block module for the injected-divergence smoke
/// test: the `add` on the large-packet path feeds a stored counter and
/// the return value, so [`Injection::FlipArith`] must be caught, and the
/// CFG has enough slack for the shrinker to prove it minimizes.
pub fn smoke_module() -> Module {
    use nf_ir::{ApiCall, FunctionBuilder, MemRef, Operand, PktField, Pred, StateKind, Ty};
    let mut m = Module::new("difftest_smoke");
    let ctr = m.add_global("ctr", StateKind::Scalar, 8, 1);
    let scratch = m.add_global("scratch", StateKind::Scalar, 8, 1);
    let _ = scratch; // Exists so the shrinker has a global to drop.
    let mut fb = FunctionBuilder::new("process");
    let entry = fb.entry_block();
    let big = fb.block();
    let small = fb.block();
    let join = fb.block();
    let send = fb.block();
    let drop_bb = fb.block();
    fb.switch_to(entry);
    let len = fb.load(Ty::I16, MemRef::pkt(PktField::IpLen));
    let is_big = fb.icmp(Pred::UGt, Ty::I16, len, Operand::imm(200));
    fb.cond_br(is_big, big, small);
    fb.switch_to(big);
    let wide = fb.cast(nf_ir::CastOp::Zext, Ty::I16, Ty::I32, len);
    let bumped = fb.bin(BinOp::Add, Ty::I32, wide, Operand::imm(3));
    fb.store(Ty::I32, bumped, MemRef::global(ctr));
    fb.br(join);
    fb.switch_to(small);
    fb.store(Ty::I32, Operand::imm(7), MemRef::global(ctr));
    fb.br(join);
    fb.switch_to(join);
    let back = fb.load(Ty::I32, MemRef::global(ctr));
    let ok = fb.icmp(Pred::ULt, Ty::I32, back, Operand::imm(100_000));
    fb.cond_br(ok, send, drop_bb);
    fb.switch_to(send);
    let _ = fb.call(ApiCall::PktSend, vec![Operand::imm(0)]);
    fb.ret(Some(back));
    fb.switch_to(drop_bb);
    let _ = fb.call(ApiCall::PktDrop, vec![]);
    fb.ret(None);
    m.funcs.push(fb.finish());
    m
}

/// Smoke-test result: proof the oracle catches an injected miscompile
/// and the shrinker reduces it.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// The injected divergence was detected.
    pub caught: bool,
    /// Blocks in the deliberately broken module.
    pub blocks_before: usize,
    /// Blocks after shrinking.
    pub blocks_after: usize,
    /// Instructions after shrinking.
    pub insts_after: usize,
}

/// Runs the injected-divergence smoke test: breaks [`smoke_module`] via
/// [`Injection::FlipArith`], asserts the oracle notices, and shrinks the
/// repro. CI requires `caught` and a small `blocks_after`.
pub fn smoke() -> SmokeReport {
    let module = smoke_module();
    let trace = trace_for_seed(0xd1ff, 24);
    let caught = check_module(&module, &trace, Some(Injection::FlipArith)).is_some();
    let outcome = shrink(&module, &trace, Some(Injection::FlipArith));
    SmokeReport {
        caught,
        blocks_before: outcome.blocks_before,
        blocks_after: outcome.blocks_after,
        insts_after: outcome.insts_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_corpus_element_passes_the_oracle() {
        let nf = click_model::elements::cmsketch();
        let trace = trace_for_seed(7, 20);
        let div = check_module(&nf.module, &trace, None);
        assert!(div.is_none(), "unexpected divergence: {}", div.unwrap());
    }

    #[test]
    fn injected_miscompile_is_caught_and_shrunk() {
        let report = smoke();
        assert!(report.caught, "injection went unnoticed");
        assert_eq!(report.blocks_before, 6);
        assert!(
            report.blocks_after <= 3,
            "shrinker left {} blocks",
            report.blocks_after
        );
    }

    #[test]
    fn small_seed_sweep_is_clean() {
        let cfg = DifftestConfig {
            seeds: 10,
            pkts: 16,
            ..DifftestConfig::default()
        };
        let report = run(&cfg).expect("no backends configured");
        assert_eq!(report.engine_failures, 0);
        assert!(
            report.divergent.is_empty(),
            "first: {}",
            report.divergent[0].divergence.as_ref().unwrap()
        );
        assert_eq!(report.checked, 10);
        assert_eq!(report.max_backend_compute_delta, 0.0);
    }

    #[test]
    fn cross_backend_sweep_is_clean_with_nonzero_cost_deltas() {
        let cfg = DifftestConfig {
            seeds: 8,
            pkts: 16,
            backends: clara_hal::builtin_names()
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            ..DifftestConfig::default()
        };
        let report = run(&cfg).expect("builtin names resolve");
        assert_eq!(report.engine_failures, 0);
        assert!(
            report.divergent.is_empty(),
            "semantics leaked a hardware dependency: {}",
            report.divergent[0].divergence.as_ref().unwrap()
        );
        // Devices must disagree on *cost* even while they agree on
        // semantics — otherwise the manifests are not being consulted.
        assert!(
            report.max_backend_compute_delta > 0.0,
            "no compute delta across {} backends",
            cfg.backends.len()
        );
    }

    #[test]
    fn unknown_backend_is_a_manifest_error() {
        let cfg = DifftestConfig {
            seeds: 1,
            backends: vec!["agilio-cx".into(), "no-such-device".into()],
            ..DifftestConfig::default()
        };
        let err = run(&cfg).expect_err("unknown backend");
        assert_eq!(err.exit_code(), 8);
        assert!(err.to_string().contains("no-such-device"), "{err}");
    }

    #[test]
    fn shrink_of_non_divergent_module_is_a_no_op() {
        let module = smoke_module();
        let trace = trace_for_seed(1, 8);
        let out = shrink(&module, &trace, None);
        assert_eq!(out.blocks_after, out.blocks_before);
        assert_eq!(print::module(&out.module), print::module(&module));
    }
}
