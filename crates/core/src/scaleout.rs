//! Multicore scale-out factor analysis (paper Section 4.2).
//!
//! Clara predicts the close-to-optimal core count for an NF and workload
//! by training a GBDT cost model on synthesized programs deployed to the
//! NIC across different "schedules" (core counts) — the TVM-inspired
//! algorithm/schedule separation. Features capture arithmetic intensity
//! (compute vs memory to different regions) and workload shape.

use nic_sim::{optimal_cores, solve_perf, NicConfig, PortConfig, WorkloadProfile};

use crate::error::ClaraError;
use serde::{Deserialize, Serialize};
use tinyml::automl::AutoMlRegressor;
use tinyml::gbdt::{GbdtConfig, GbdtRegressor};
use tinyml::knn::Knn;
use tinyml::mlp::{Loss, Mlp, MlpConfig};
use tinyml::quant::{Precision, QuantGbdt};
use tinyml::regressor::{Regressor, RegressorInput};
use tinyml::Dataset;
use trafgen::WorkloadSpec;

#[cfg(test)]
use trafgen::Trace;

/// Feature vector of one (NF workload-profile, NIC) pair.
pub fn features_of(wp: &WorkloadProfile, cfg: &NicConfig, port: &PortConfig) -> Vec<f64> {
    let demand = wp.channel_demand(cfg, port);
    let mem_total: f64 = demand.iter().sum();
    let ai = wp.compute / mem_total.max(1e-9);
    let ws: u64 = wp.working_set.values().sum();
    vec![
        wp.compute / 100.0,
        demand[0],
        demand[1],
        demand[2],
        demand[3], // EMEM misses
        demand[4], // EMEM cache hits
        ai.min(100.0),
        ((ws.max(1)) as f64).log2(),
        wp.mean_pkt_size / 100.0,
    ]
}

/// Ground-truth optimal core count by exhaustive sweep (what the paper
/// obtains "by exhaustive benchmarking with all possible configurations").
pub fn optimal_by_sweep(wp: &WorkloadProfile, cfg: &NicConfig, port: &PortConfig) -> u32 {
    let pts: Vec<_> = (1..=cfg.cores)
        .map(|c| solve_perf(wp, cfg, port, c))
        .collect();
    optimal_cores(&pts)
}

/// The regressor family (Figure 11a's contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleoutKind {
    /// Clara's GBDT.
    ClaraGbdt,
    /// k-nearest neighbours.
    Knn,
    /// Fully-connected network.
    Dnn,
    /// AutoML pipeline search.
    AutoMl,
}

impl ScaleoutKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleoutKind::ClaraGbdt => "Clara (GBDT)",
            ScaleoutKind::Knn => "kNN",
            ScaleoutKind::Dnn => "DNN",
            ScaleoutKind::AutoMl => "AutoML",
        }
    }
}

#[derive(Serialize, Deserialize)]
enum SoModel {
    Gbdt(GbdtRegressor),
    Knn(Knn),
    Dnn(Mlp),
    AutoMl(AutoMlRegressor),
}

/// A trained scale-out (optimal core count) predictor.
///
/// For the GBDT family a Q16.16 quantized companion rides along (absent
/// in version-1 model files; rebuilt on load). Other families fall back
/// to f64 at any requested precision.
#[derive(Serialize, Deserialize)]
pub struct ScaleoutModel {
    model: SoModel,
    kind: ScaleoutKind,
    max_cores: u32,
    quant: Option<QuantGbdt>,
}

/// Builds the training set: synthesized NFs × workload profiles, labeled
/// with the sweep-optimal core count.
///
/// # Panics
///
/// Panics if any profiling or labeling task fails permanently;
/// [`try_training_set`] is the fault-tolerant form.
pub fn training_set(programs: usize, seed: u64, cfg: &NicConfig) -> Dataset {
    let (data, failures, total) = try_training_set(programs, seed, cfg);
    assert!(
        failures.is_empty(),
        "scaleout training set: {} of {total} task(s) failed permanently; first: {}",
        failures.len(),
        failures[0].error
    );
    data
}

/// Fault-tolerant [`training_set`]: matrix cells whose profiling fails
/// permanently (and rows whose labeling fails) are dropped from the
/// dataset and reported in the failure list. Returns
/// `(dataset, failures, tasks attempted)`.
pub fn try_training_set(
    programs: usize,
    seed: u64,
    cfg: &NicConfig,
) -> (Dataset, Vec<crate::engine::TaskFailure>, usize) {
    let modules = nf_synth::synth_corpus(programs, true, seed);
    let workloads = [
        WorkloadSpec::large_flows(),
        WorkloadSpec::small_flows().with_flows(8192),
        WorkloadSpec::min_size(),
    ];
    let port = PortConfig::naive();
    // The corpus × workload matrix fans out across the engine's worker
    // pool; profiles come back in the same (module-major) order the old
    // serial loop produced, so the dataset is bit-identical.
    let matrix = crate::engine::try_profile_matrix(&modules, &workloads, 400, seed, &port, cfg);
    let mut total = matrix.total();
    let mut failures = matrix.failures;
    let profiles: Vec<WorkloadProfile> = matrix.results.into_iter().flatten().collect();
    let labeled = crate::engine::try_par_map("scaleout-label", &profiles, |_, wp| {
        let label = optimal_by_sweep(wp, cfg, &port);
        (features_of(wp, cfg, &port), f64::from(label))
    });
    total += labeled.total();
    failures.extend(labeled.failures);
    let mut data = Dataset::default();
    for (x, y) in labeled.results.into_iter().flatten() {
        data.push(x, y);
    }
    (data, failures, total)
}

impl ScaleoutModel {
    /// Trains a predictor on a labeled dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(kind: ScaleoutKind, data: &Dataset, cfg: &NicConfig, seed: u64) -> ScaleoutModel {
        assert!(!data.is_empty(), "empty dataset");
        let model = match kind {
            ScaleoutKind::ClaraGbdt => SoModel::Gbdt(GbdtRegressor::fit(
                &data.x,
                &data.y,
                &GbdtConfig {
                    rounds: 500,
                    shrinkage: 0.03,
                    tree: tinyml::tree::TreeConfig {
                        max_depth: 6,
                        min_split: 4,
                        min_leaf: 2,
                    },
                },
            )),
            ScaleoutKind::Knn => SoModel::Knn(Knn::fit(&data.x, &data.y, 3)),
            ScaleoutKind::Dnn => {
                let mut m = Mlp::new(MlpConfig {
                    inputs: data.dim(),
                    hidden: vec![32, 16],
                    outputs: 1,
                    loss: Loss::Mse,
                    lr: 0.01,
                    epochs: 120,
                    seed,
                });
                m.fit(&data.x, &data.y);
                SoModel::Dnn(m)
            }
            ScaleoutKind::AutoMl => SoModel::AutoMl(AutoMlRegressor::search(data, 10, seed)),
        };
        let quant = match &model {
            SoModel::Gbdt(m) => Some(QuantGbdt::quantize(m)),
            _ => None,
        };
        ScaleoutModel {
            model,
            kind,
            max_cores: cfg.cores,
            quant,
        }
    }

    /// The model family used.
    pub fn kind(&self) -> ScaleoutKind {
        self.kind
    }

    /// Rebuilds the quantized companion from the f64 ensemble if it is
    /// missing — used after loading a version-1 model file.
    pub fn ensure_quantized(&mut self) {
        if self.quant.is_none() {
            if let SoModel::Gbdt(m) = &self.model {
                self.quant = Some(QuantGbdt::quantize(m));
            }
        }
    }

    /// The [`Regressor`] serving a given precision (f64 reference unless
    /// a quantized companion exists and `Q16` was requested).
    fn regressor(&self, precision: Precision) -> &dyn Regressor {
        if matches!(precision, Precision::Q16) {
            if let Some(q) = &self.quant {
                return q;
            }
        }
        match &self.model {
            SoModel::Gbdt(m) => m,
            SoModel::Knn(m) => m,
            SoModel::Dnn(m) => m,
            SoModel::AutoMl(m) => m,
        }
    }

    /// Predicts the optimal core count for a profiled workload.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Prediction`] when the regressor produces a
    /// non-finite estimate (a corrupt or out-of-domain model).
    pub fn predict(
        &self,
        wp: &WorkloadProfile,
        cfg: &NicConfig,
        port: &PortConfig,
    ) -> Result<u32, ClaraError> {
        self.predict_prec(wp, cfg, port, Precision::F64)
    }

    /// [`ScaleoutModel::predict`] at an explicit precision.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Prediction`] when the regressor produces a
    /// non-finite estimate (a corrupt or out-of-domain model).
    pub fn predict_prec(
        &self,
        wp: &WorkloadProfile,
        cfg: &NicConfig,
        port: &PortConfig,
        precision: Precision,
    ) -> Result<u32, ClaraError> {
        let f = features_of(wp, cfg, port);
        let raw = self.regressor(precision).predict(RegressorInput::Features(&f));
        if !raw.is_finite() {
            return Err(ClaraError::Prediction {
                detail: format!(
                    "{} scale-out model returned a non-finite core estimate ({raw})",
                    self.kind.name()
                ),
            });
        }
        Ok((raw.round().max(1.0) as u32).min(self.max_cores))
    }

    /// Mean absolute error (in cores) on a labeled dataset.
    pub fn mae(&self, data: &Dataset) -> f64 {
        let preds: Vec<f64> = data
            .x
            .iter()
            .map(|f| {
                let raw = self
                    .regressor(Precision::F64)
                    .predict(RegressorInput::Features(f));
                raw.round().clamp(1.0, f64::from(self.max_cores))
            })
            .collect();
        tinyml::metrics::mae(&data.y, &preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbdt_beats_constant_predictor() {
        let cfg = NicConfig::default();
        let train = training_set(30, 1, &cfg);
        let test = training_set(10, 2, &cfg);
        let m = ScaleoutModel::train(ScaleoutKind::ClaraGbdt, &train, &cfg, 1);
        let mae = m.mae(&test);
        // Constant predictor: always guess the training mean.
        let mean = train.y.iter().sum::<f64>() / train.len() as f64;
        let base = tinyml::metrics::mae(&test.y, &vec![mean.round(); test.len()]);
        assert!(mae <= base, "gbdt {mae:.2} vs constant {base:.2}");
    }

    #[test]
    fn predictions_are_in_range() {
        let cfg = NicConfig::default();
        let train = training_set(12, 3, &cfg);
        let m = ScaleoutModel::train(ScaleoutKind::ClaraGbdt, &train, &cfg, 3);
        let e = click_model::elements::aggcounter();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 4);
        let wp = nic_sim::profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
        let c = m
            .predict(&wp, &cfg, &PortConfig::naive())
            .expect("finite prediction");
        assert!((1..=cfg.cores).contains(&c), "{c}");
    }

    #[test]
    fn all_baselines_train() {
        let cfg = NicConfig::default();
        let train = training_set(8, 5, &cfg);
        for kind in [ScaleoutKind::Knn, ScaleoutKind::Dnn, ScaleoutKind::AutoMl] {
            let m = ScaleoutModel::train(kind, &train, &cfg, 5);
            assert!(m.mae(&train).is_finite(), "{}", kind.name());
        }
    }
}
