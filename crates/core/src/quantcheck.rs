//! Quantization oracle (`clara quantcheck`): difftest-style checking of
//! the Q16.16 fast path against the f64 reference.
//!
//! For every NF in the extended 27-element corpus the oracle compares
//! per-block compute predictions between precisions against a pinned
//! tolerance, requires the suggested core count to be identical, and
//! times the module-level predict stage at both precisions (the honest
//! measurement of what the fixed-point path buys: `clara serve`'s steady
//! state is memo-dominated, so a serve-side req/s delta would mostly
//! measure the memo). On a tolerance violation a greedy shrinker
//! minimizes the worst block's token sequence to the smallest prefix/
//! subsequence that still violates, and writes it as a repro artifact.
//!
//! Violations surface as [`ClaraError::Quantization`] — exit code 9 at
//! the CLI — carrying the first offending NF and the artifact location.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use nf_ir::AbstractToken;
use nic_sim::PortConfig;
use tinyml::quant::Precision;
use trafgen::{Trace, WorkloadSpec};

use crate::clara::Clara;
use crate::error::ClaraError;
use crate::predict::InstructionPredictor;
use crate::prepare::prepare_module;

/// Pinned relative tolerance: a block's Q16 prediction may drift at most
/// this fraction of the f64 value (when above the absolute floor).
pub const QUANT_REL_TOLERANCE: f64 = 0.02;
/// Pinned absolute floor: blocks whose predictions are tiny may drift up
/// to this many instructions regardless of the relative bound.
pub const QUANT_ABS_TOLERANCE: f64 = 0.5;

/// Knobs for one oracle run.
#[derive(Debug, Clone)]
pub struct QuantcheckConfig {
    /// Packets in the workload trace used for the core-count check.
    pub packets: usize,
    /// Trace RNG seed.
    pub seed: u64,
    /// Timing repetitions for the predict-stage speed measurement.
    pub reps: usize,
    /// Relative tolerance (defaults to [`QUANT_REL_TOLERANCE`]).
    pub rel_tol: f64,
    /// Absolute tolerance floor (defaults to [`QUANT_ABS_TOLERANCE`]).
    pub abs_tol: f64,
    /// When set, fail unless the Q16 predict stage is at least this many
    /// times faster than f64.
    pub require_speedup: Option<f64>,
    /// Where to write the minimized repro on violation.
    pub artifact_dir: Option<PathBuf>,
}

impl Default for QuantcheckConfig {
    fn default() -> QuantcheckConfig {
        QuantcheckConfig {
            packets: 400,
            seed: 42,
            reps: 3,
            rel_tol: QUANT_REL_TOLERANCE,
            abs_tol: QUANT_ABS_TOLERANCE,
            require_speedup: None,
            artifact_dir: None,
        }
    }
}

/// Per-NF comparison row.
#[derive(Debug, Clone)]
pub struct NfQuantRow {
    /// Corpus element name.
    pub nf: &'static str,
    /// Handler blocks compared.
    pub blocks: usize,
    /// Module compute prediction, f64 path.
    pub compute_f64: f64,
    /// Module compute prediction, Q16 path.
    pub compute_q16: f64,
    /// Weighted MAPE of Q16 vs f64 over the blocks
    /// (`Σ|q−f| / Σ|f|`).
    pub wmape: f64,
    /// Suggested cores, f64 path.
    pub cores_f64: u32,
    /// Suggested cores, Q16 path.
    pub cores_q16: u32,
    /// True when some block (or the core count) broke tolerance.
    pub violated: bool,
}

/// Outcome of a full oracle run.
#[derive(Debug, Clone)]
pub struct QuantcheckReport {
    /// One row per corpus NF, corpus order.
    pub rows: Vec<NfQuantRow>,
    /// Predict-stage wall time over all NFs × reps, f64 path (ms).
    pub f64_ms: f64,
    /// Predict-stage wall time over all NFs × reps, Q16 path (ms).
    pub q16_ms: f64,
    /// `f64_ms / q16_ms`.
    pub speedup: f64,
}

impl QuantcheckReport {
    /// Fixed-width table of the per-NF rows plus the timing summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>12} {:>12} {:>10} {:>5} {:>5}  ok",
            "nf", "blocks", "f64", "q16", "wmape", "c64", "cq16"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>6} {:>12.4} {:>12.4} {:>10.6} {:>5} {:>5}  {}",
                r.nf,
                r.blocks,
                r.compute_f64,
                r.compute_q16,
                r.wmape,
                r.cores_f64,
                r.cores_q16,
                if r.violated { "VIOLATED" } else { "ok" }
            );
        }
        let _ = writeln!(
            out,
            "predict stage: f64 {:.2} ms, q16 {:.2} ms, speedup {:.2}x",
            self.f64_ms, self.q16_ms, self.speedup
        );
        out
    }
}

fn within(q: f64, f: f64, cfg: &QuantcheckConfig) -> bool {
    (q - f).abs() <= cfg.abs_tol.max(cfg.rel_tol * f.abs())
}

/// Runs the oracle over the extended corpus with a trained pipeline.
///
/// # Errors
///
/// Returns [`ClaraError::Quantization`] when any NF breaks the block
/// tolerance or flips its suggested core count, or — with
/// `require_speedup` set — when the Q16 predict stage misses the floor.
/// [`ClaraError::Io`] can surface while writing repro artifacts, and
/// [`ClaraError::Prediction`] if the scale-out model degenerates.
pub fn run(clara: &Clara, cfg: &QuantcheckConfig) -> Result<QuantcheckReport, ClaraError> {
    let corpus = click_model::extended_corpus();
    let naive = PortConfig::naive();
    let mut rows = Vec::with_capacity(corpus.len());
    let mut first_violation: Option<(String, Option<PathBuf>)> = None;
    let mut violations = 0usize;

    for e in &corpus {
        let prepared = prepare_module(&e.module);
        let mut num = 0.0f64; // Σ|q − f|
        let mut den = 0.0f64; // Σ|f|
        let mut worst: Option<(usize, f64)> = None; // (block idx, excess)
        for (bi, block) in prepared.blocks.iter().enumerate() {
            let f = clara.predictor.predict_block(&block.tokens);
            let q = clara
                .predictor
                .predict_block_prec(&block.tokens, Precision::Q16);
            num += (q - f).abs();
            den += f.abs();
            if !within(q, f, cfg) {
                let excess = (q - f).abs() - cfg.abs_tol.max(cfg.rel_tol * f.abs());
                if worst.is_none_or(|(_, w)| excess > w) {
                    worst = Some((bi, excess));
                }
            }
        }
        let wmape = if den > 0.0 { num / den } else { 0.0 };

        let trace = Trace::generate(&WorkloadSpec::large_flows(), cfg.packets, cfg.seed);
        let wp = nic_sim::profile_workload(&e.module, &trace, &naive, &clara.nic, |_| {});
        let cores_f64 = clara
            .scaleout
            .predict(&wp, &clara.nic, &naive)?
            .min(clara.nic.cores);
        let cores_q16 = clara
            .scaleout
            .predict_prec(&wp, &clara.nic, &naive, Precision::Q16)?
            .min(clara.nic.cores);

        let violated = worst.is_some() || cores_f64 != cores_q16;
        if violated {
            violations += 1;
            if first_violation.is_none() {
                let (detail, artifact) = describe_violation(
                    clara, cfg, e.name(), &prepared, worst, cores_f64, cores_q16,
                )?;
                first_violation = Some((detail, artifact));
            }
        }
        rows.push(NfQuantRow {
            nf: e.name(),
            blocks: prepared.blocks.len(),
            compute_f64: clara.predictor.predict_module_compute(&e.module),
            compute_q16: clara
                .predictor
                .predict_module_compute_prec(&e.module, Precision::Q16),
            wmape,
            cores_f64,
            cores_q16,
            violated,
        });
    }

    // Timing: the module-level predict stage (what serve's batch path
    // runs per miss), both precisions, identical work lists.
    let time_precision = |p: Precision| {
        let start = Instant::now();
        for _ in 0..cfg.reps.max(1) {
            for e in &corpus {
                std::hint::black_box(clara.predictor.predict_module_compute_prec(&e.module, p));
            }
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    let f64_ms = time_precision(Precision::F64);
    let q16_ms = time_precision(Precision::Q16);
    let speedup = f64_ms / q16_ms.max(1e-9);

    let report = QuantcheckReport {
        rows,
        f64_ms,
        q16_ms,
        speedup,
    };
    if let Some((detail, artifact_dir)) = first_violation {
        return Err(ClaraError::Quantization {
            violations,
            checked: report.rows.len(),
            detail,
            artifact_dir,
        });
    }
    if let Some(floor) = cfg.require_speedup {
        if speedup < floor {
            return Err(ClaraError::Quantization {
                violations: 0,
                checked: report.rows.len(),
                detail: format!(
                    "q16 predict-stage speedup {speedup:.2}x is below the required floor \
                     {floor:.2}x (f64 {f64_ms:.2} ms vs q16 {q16_ms:.2} ms)"
                ),
                artifact_dir: None,
            });
        }
    }
    Ok(report)
}

/// Builds the human-readable detail (and optional artifact) for the
/// first violating NF; shrinks the worst block when one exists.
#[allow(clippy::too_many_arguments)]
fn describe_violation(
    clara: &Clara,
    cfg: &QuantcheckConfig,
    nf: &str,
    prepared: &crate::prepare::PreparedModule,
    worst: Option<(usize, f64)>,
    cores_f64: u32,
    cores_q16: u32,
) -> Result<(String, Option<PathBuf>), ClaraError> {
    if let Some((bi, _)) = worst {
        let tokens = &prepared.blocks[bi].tokens;
        let minimized = shrink_tokens(&clara.predictor, tokens, cfg);
        let f = clara.predictor.predict_block(&minimized);
        let q = clara
            .predictor
            .predict_block_prec(&minimized, Precision::Q16);
        let detail = format!(
            "{nf}: block {bi} predicts {f:.4} (f64) vs {q:.4} (q16), outside \
             max({:.2}, {:.0}%·|f64|); minimized to {} of {} token(s)",
            cfg.abs_tol,
            cfg.rel_tol * 100.0,
            minimized.len(),
            tokens.len()
        );
        let artifact = match &cfg.artifact_dir {
            Some(dir) => Some(write_repro(dir, nf, bi, &minimized, f, q)?),
            None => None,
        };
        Ok((detail, artifact))
    } else {
        Ok((
            format!(
                "{nf}: suggested cores flipped between precisions \
                 ({cores_f64} at f64 vs {cores_q16} at q16)"
            ),
            None,
        ))
    }
}

/// Greedy ddmin-style shrink: repeatedly try dropping chunks (halving
/// chunk size down to single tokens) while the tolerance violation
/// persists. Deterministic and linear-ish; the result still violates.
fn shrink_tokens(
    predictor: &InstructionPredictor,
    tokens: &[AbstractToken],
    cfg: &QuantcheckConfig,
) -> Vec<AbstractToken> {
    let violates = |toks: &[AbstractToken]| {
        let f = predictor.predict_block(toks);
        let q = predictor.predict_block_prec(toks, Precision::Q16);
        !within(q, f, cfg)
    };
    let mut cur: Vec<AbstractToken> = tokens.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && violates(&candidate) {
                cur = candidate;
                shrunk = true;
                // Re-test from the same offset: the window now holds new
                // tokens.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            return cur;
        }
        if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
}

fn write_repro(
    dir: &Path,
    nf: &str,
    block: usize,
    tokens: &[AbstractToken],
    f: f64,
    q: f64,
) -> Result<PathBuf, ClaraError> {
    let io_err = |p: &Path, e: std::io::Error| ClaraError::Io {
        path: p.to_path_buf(),
        source: e,
    };
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = dir.join(format!("quant_{nf}_block{block}.txt"));
    let mut body = format!(
        "nf: {nf}\nblock: {block}\nf64: {f}\nq16: {q}\nminimized tokens ({}):\n",
        tokens.len()
    );
    for t in tokens {
        let _ = writeln!(body, "  {t:?}");
    }
    fs::write(&path, body).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tolerances_are_pinned() {
        let cfg = QuantcheckConfig::default();
        assert_eq!(cfg.rel_tol, QUANT_REL_TOLERANCE);
        assert_eq!(cfg.abs_tol, QUANT_ABS_TOLERANCE);
        assert!(within(10.1, 10.0, &cfg));
        assert!(!within(10.8, 10.0, &cfg));
        assert!(within(0.3, 0.0, &cfg), "absolute floor covers tiny blocks");
    }
}
