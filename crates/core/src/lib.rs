//! `clara-core`: automated SmartNIC offloading insights for network
//! functions — a Rust reproduction of Clara (SOSP 2021).
//!
//! Clara analyzes a *legacy, unported* NF and produces **offloading
//! insights**: predictions of its ported performance parameters and
//! concrete porting strategies that improve performance. The six insight
//! types of the paper map to the modules of this crate:
//!
//! | Paper section | Insight | Module |
//! |---|---|---|
//! | §3.1 | Program preparation (IR, CFG, classification) | [`prepare`] |
//! | §3.2–3.3 | Cross-platform instruction/memory prediction | [`predict`] |
//! | §4.1 | Accelerator algorithm identification | [`algid`] |
//! | §4.2 | Multicore scale-out analysis | [`scaleout`] |
//! | §4.3 | NF state placement (ILP) | [`placement`] |
//! | §4.4 | Memory access coalescing (K-means) | [`coalesce`] |
//! | §4.5 | NF colocation ranking (LambdaMART) | [`coloc`] |
//! | §6 (extension) | Partial offloading across PCIe | [`partial`] |
//!
//! The [`Clara`] facade ties them together: train once on synthesized
//! corpora, then [`Clara::analyze`] any NF to get an [`Insights`] bundle,
//! and [`Insights::port_config`] to turn the insights into a concrete
//! port for the simulator.
//!
//! # Examples
//!
//! ```no_run
//! use clara_core::{Clara, ClaraConfig, ClaraError};
//! use trafgen::{Trace, WorkloadSpec};
//!
//! # fn main() -> Result<(), ClaraError> {
//! let clara = Clara::train(&ClaraConfig::fast(1))?;
//! let nf = click_model::elements::cmsketch();
//! let trace = Trace::generate(&WorkloadSpec::large_flows(), 500, 7);
//! let insights = clara.analyze(&nf.module, &trace)?;
//! println!("predicted compute/pkt: {}", insights.predicted_compute);
//! println!("suggested cores: {}", insights.suggested_cores);
//! # Ok(())
//! # }
//! ```
//!
//! # Observability
//!
//! With the `CLARA_REPORT` environment variable set (or a bench binary's
//! `--report` flag), [`Clara::train`] and [`Clara::analyze`] record a
//! [`clara_obs`] span tree plus engine/compiler/simulator/ML counters and
//! write a JSON run report when they finish. Without a sink the
//! instrumentation is atomics-only and does not perturb results.

pub mod algid;
pub mod clara;
pub mod coalesce;
pub mod coloc;
pub mod difftest;
mod diskcache;
pub mod engine;
pub mod error;
pub mod faults;
pub mod partial;
pub mod placement;
pub mod predict;
pub mod prepare;
pub mod quantcheck;
pub mod scaleout;

pub use clara::{
    Clara, ClaraConfig, ClaraConfigBuilder, Insights, Prediction, MIN_MODEL_FORMAT_VERSION,
    MODEL_FORMAT_VERSION,
};
pub use coloc::{pair_interference, representative_profile, PairInterference};
pub use nic_sim::{NicConfig, PortConfig, WorkloadProfile};
pub use difftest::{DifftestConfig, DifftestReport, Divergence, DivergenceKind};
pub use engine::{Engine, EngineOptions, EngineOptionsBuilder};
pub use error::{ClaraError, PlacementFailure};
pub use placement::plan::{
    Objective, PlacementPlan, PlacementRequest, PlacementRequestBuilder, ReplaySummary,
};
pub use faults::{FaultKind, FaultPlan};
pub use predict::{BlockSample, InstructionPredictor, PredictorKind};
pub use prepare::{prepare_module, PreparedBlock, PreparedModule};
pub use quantcheck::{QuantcheckConfig, QuantcheckReport, QUANT_ABS_TOLERANCE, QUANT_REL_TOLERANCE};
pub use tinyml::quant::Precision;
