//! The unified placement planner: one typed request, one typed plan.
//!
//! Before this module, the repo had three disconnected placement
//! surfaces — the exact ILP (`crates/ilp`), the greedy fallback inside
//! the solver, and the partial-offload chain splitter
//! ([`crate::partial`]) — each with its own ad-hoc entry point. The
//! redesigned API collapses them behind a single flow:
//!
//! ```text
//! PlacementRequest ──▶ Clara::place ──▶ PlacementPlan
//! ```
//!
//! A [`PlacementRequest`] names an NF set, describes traffic via
//! `trafgen` axes (packets, seed, flow profile), and picks a device
//! backend, an inference precision, and an [`Objective`]. The returned
//! [`PlacementPlan`] carries, per NF, the exact ILP memory mapping with
//! its objective value *and* the greedy fallback's plan with its delta
//! (the difftest invariant: ILP objective ≥ greedy objective, and the
//! two must agree on feasibility), plus the chain's partial-offload
//! split point and the modeled per-side throughput/latency on the chosen
//! backend.
//!
//! The **objective value** is the per-packet memory-latency saving of a
//! placement over the all-EMEM baseline: `Σ f_i · L_emem − Σ f_i ·
//! L_place(i)` in cycles per packet. Every level is at least as fast as
//! EMEM, so the objective is non-negative, and because the exact solver
//! minimizes the same cost the greedy heuristic packs, ILP ≥ greedy
//! holds by construction on every instance where both are feasible.
//! Greedy may strand an item the exact solver places (it never
//! backtracks); the converse — greedy feasible, ILP infeasible — would
//! be a solver bug.
//!
//! Setting [`PlacementRequest::replay`] to a [`Schedule`] name makes the
//! plan *dynamic*: the planner walks the schedule epoch by epoch,
//! re-profiles the NF set on each epoch's trace, and re-solves when the
//! observed per-NF access drift exceeds
//! [`PlacementRequest::drift_threshold`]. The [`ReplaySummary`] records
//! every epoch's drift, the re-solve count, and migration cost (bytes of
//! state moved between levels) against the predicted gain (cycles per
//! packet saved by the new plan under the new traffic). Deterministic
//! counters (`place.epochs`, `place.resolves`, `place.migrated_globals`)
//! land in the run report so a draining server surfaces its re-planning
//! history.

use std::collections::{BTreeMap, BTreeSet};

use clara_obs as obs;
use ilp_solver::{AssignmentProblem, IlpError};
use nf_ir::{GlobalId, Module};
use nic_sim::{solve_perf, MemLevel, NicConfig, PortConfig, WorkloadProfile};
use trafgen::{Schedule, Trace, WorkloadSpec, BUILTIN_SCHEDULES};

use crate::clara::Clara;
use crate::engine;
use crate::error::{ClaraError, PlacementFailure};
use crate::partial::{self, HostConfig, SplitPlan};
use crate::placement::{apply_placement, CAPACITY_HEADROOM};
use tinyml::quant::Precision;

pub use crate::partial::best_split;

/// Default branch-and-bound node budget per NF. Corpus instances solve
/// in well under a thousand nodes; exceeding this surfaces as a typed
/// solver timeout instead of a hang.
pub const DEFAULT_NODE_BUDGET: u64 = 2_000_000;

/// Default relative drift (L1 change of the per-NF access vector) that
/// triggers a re-solve during replay.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.2;

/// Default epoch count for replay mode.
pub const DEFAULT_EPOCHS: usize = 4;

/// Throughput slack the host-cores objective tolerates when buying back
/// host cores (mirrors the paper's "within 5% of best" reading).
pub const DEFAULT_SPLIT_SLACK: f64 = 0.95;

/// What the chain-split stage of a plan optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Maximize end-to-end throughput; ties go to fewer host cores.
    Throughput,
    /// Minimize host cores while staying within
    /// [`DEFAULT_SPLIT_SLACK`] of the best achievable throughput (the
    /// paper's headline metric: host cores freed for revenue work).
    #[default]
    HostCores,
}

impl Objective {
    /// Wire/CLI name (`throughput` or `host-cores`).
    pub fn as_str(&self) -> &'static str {
        match self {
            Objective::Throughput => "throughput",
            Objective::HostCores => "host-cores",
        }
    }

    /// Parses a wire/CLI name; `None` for unknown values.
    pub fn parse(s: &str) -> Option<Objective> {
        match s {
            "throughput" => Some(Objective::Throughput),
            "host-cores" => Some(Objective::HostCores),
            _ => None,
        }
    }

    fn slack(self) -> f64 {
        match self {
            Objective::Throughput => 1.0,
            Objective::HostCores => DEFAULT_SPLIT_SLACK,
        }
    }
}

/// A typed placement request: NF set, traffic, device, precision,
/// objective, and (optionally) a replay schedule. Build one with
/// [`PlacementRequest::new`] defaults or fluently via
/// [`PlacementRequest::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementRequest {
    /// Corpus NF names, in chain order.
    pub nfs: Vec<String>,
    /// Packets per profiling trace (per epoch in replay mode).
    pub packets: usize,
    /// Trace seed.
    pub seed: u64,
    /// Use the small-flows (cache-hostile) profile instead of
    /// large-flows. Ignored in replay mode (the schedule picks specs).
    pub small_flows: bool,
    /// Builtin backend name; `None` for the session default.
    pub backend: Option<String>,
    /// Inference precision; `None` for the model's default.
    pub precision: Option<Precision>,
    /// Chain-split objective.
    pub objective: Objective,
    /// Builtin [`Schedule`] name to replay (`steady`, `shift`, `burst`);
    /// `None` for a static one-shot plan.
    pub replay: Option<String>,
    /// Requested epoch count for replay mode (schedules clamp to their
    /// own minimum).
    pub epochs: usize,
    /// Relative access-vector drift that triggers a re-solve.
    pub drift_threshold: f64,
    /// Branch-and-bound node budget per NF solve.
    pub node_budget: u64,
}

impl PlacementRequest {
    /// A request with serving-path defaults: 400 packets, seed 42,
    /// large flows, session backend/precision, host-cores objective, no
    /// replay.
    pub fn new<I, S>(nfs: I) -> PlacementRequest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PlacementRequest {
            nfs: nfs.into_iter().map(Into::into).collect(),
            packets: 400,
            seed: 42,
            small_flows: false,
            backend: None,
            precision: None,
            objective: Objective::default(),
            replay: None,
            epochs: DEFAULT_EPOCHS,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            node_budget: DEFAULT_NODE_BUDGET,
        }
    }

    /// Fluent builder over [`PlacementRequest::new`] defaults.
    pub fn builder<I, S>(nfs: I) -> PlacementRequestBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PlacementRequestBuilder {
            req: PlacementRequest::new(nfs),
        }
    }

    /// The workload spec a static (non-replay) request profiles.
    pub fn spec(&self) -> WorkloadSpec {
        if self.small_flows {
            WorkloadSpec::small_flows().with_flows(8192)
        } else {
            WorkloadSpec::large_flows()
        }
    }

    /// The profiling trace for a static request.
    pub fn trace(&self) -> Trace {
        Trace::generate(&self.spec(), self.packets.max(1), self.seed)
    }

    /// Resolves the replay schedule, if any. Unknown names are a typed
    /// format error listing the builtins.
    pub fn schedule(&self) -> Result<Option<Schedule>, ClaraError> {
        match &self.replay {
            None => Ok(None),
            Some(name) => Schedule::builtin(name, self.epochs)
                .map(Some)
                .ok_or_else(|| ClaraError::Format {
                    path: None,
                    detail: format!(
                        "unknown replay schedule `{name}` (available: {})",
                        BUILTIN_SCHEDULES.join(", ")
                    ),
                }),
        }
    }
}

/// Fluent builder for [`PlacementRequest`].
#[derive(Debug, Clone)]
pub struct PlacementRequestBuilder {
    req: PlacementRequest,
}

impl PlacementRequestBuilder {
    /// Packets per profiling trace.
    pub fn packets(mut self, n: usize) -> Self {
        self.req.packets = n;
        self
    }

    /// Trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.req.seed = seed;
        self
    }

    /// Profile under the small-flows workload.
    pub fn small_flows(mut self, yes: bool) -> Self {
        self.req.small_flows = yes;
        self
    }

    /// Builtin backend name.
    pub fn backend(mut self, name: impl Into<String>) -> Self {
        self.req.backend = Some(name.into());
        self
    }

    /// Inference precision.
    pub fn precision(mut self, p: Precision) -> Self {
        self.req.precision = Some(p);
        self
    }

    /// Chain-split objective.
    pub fn objective(mut self, o: Objective) -> Self {
        self.req.objective = o;
        self
    }

    /// Replay a builtin schedule by name.
    pub fn replay(mut self, schedule: impl Into<String>) -> Self {
        self.req.replay = Some(schedule.into());
        self
    }

    /// Epoch count for replay mode.
    pub fn epochs(mut self, n: usize) -> Self {
        self.req.epochs = n;
        self
    }

    /// Drift threshold for replay re-solves.
    pub fn drift_threshold(mut self, t: f64) -> Self {
        self.req.drift_threshold = t;
        self
    }

    /// Branch-and-bound node budget per NF.
    pub fn node_budget(mut self, n: u64) -> Self {
        self.req.node_budget = n;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PlacementRequest {
        self.req
    }
}

/// The greedy fallback's answer for one NF.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyPlan {
    /// Greedy memory mapping.
    pub placement: BTreeMap<GlobalId, MemLevel>,
    /// Greedy cost `Σ f_i · L_place(i)` (cycles/packet).
    pub cost: f64,
    /// Greedy objective (baseline − cost, cycles/packet saved).
    pub objective: f64,
}

/// One NF's exact solve with its greedy fallback attached.
#[derive(Debug, Clone, PartialEq)]
pub struct NfSolve {
    /// Optimal memory mapping.
    pub placement: BTreeMap<GlobalId, MemLevel>,
    /// Optimal cost `Σ f_i · L_place(i)` (cycles/packet).
    pub cost: f64,
    /// Objective value (baseline − cost, cycles/packet saved; ≥ 0).
    pub objective: f64,
    /// The greedy fallback; `None` when the heuristic stranded an item
    /// the exact solver still placed.
    pub greedy: Option<GreedyPlan>,
}

impl NfSolve {
    /// ILP objective minus greedy objective: how much the exact solve
    /// buys over the fallback (≥ 0). When greedy found no plan at all,
    /// the whole ILP objective is the delta.
    pub fn delta(&self) -> f64 {
        match &self.greedy {
            Some(g) => self.objective - g.objective,
            None => self.objective,
        }
    }
}

/// One NF's entry in a [`PlacementPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct NfPlan {
    /// Corpus NF name.
    pub nf: String,
    /// The exact solve (placement, objective, greedy delta).
    pub solve: NfSolve,
    /// The exact placement as render-ready `(global, level)` name pairs.
    pub named_placement: Vec<(String, String)>,
    /// The greedy placement as name pairs (`None` when greedy stranded).
    pub named_greedy_placement: Option<Vec<(String, String)>>,
    /// Suggested NIC core count under the profiled workload.
    pub suggested_cores: u32,
    /// Modeled throughput at the placed port and suggested cores (Mpps).
    pub throughput_mpps: f64,
    /// Modeled per-packet latency at the placed port (µs).
    pub latency_us: f64,
}

/// The chain's chosen partial-offload split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSummary {
    /// Stages `0..nic_stages` run on the NIC; the rest on the host.
    pub nic_stages: usize,
    /// Total chain stages (= NFs in the request).
    pub total_stages: usize,
    /// End-to-end throughput at the chosen split (Mpps).
    pub throughput_mpps: f64,
    /// End-to-end per-packet latency at the chosen split (µs).
    pub latency_us: f64,
    /// Host cores the split consumes (0 = full offload).
    pub host_cores_needed: u32,
}

/// One replay epoch's drift decision.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch index within the schedule.
    pub epoch: usize,
    /// Workload spec name active during the epoch.
    pub workload: String,
    /// Max per-NF relative access drift vs the plan's basis profiles.
    pub drift: f64,
    /// Whether the planner (re-)solved this epoch (epoch 0 always
    /// solves; later epochs only past the threshold).
    pub resolved: bool,
    /// Globals whose memory level changed in this epoch's re-solve.
    pub migrated_globals: u64,
    /// Bytes of state moved between levels (migration cost).
    pub migration_bytes: u64,
    /// Cycles/packet the new plan saves over keeping the old placement
    /// under the new traffic (predicted gain).
    pub predicted_gain: f64,
}

/// Aggregate replay outcome ([`PlacementPlan::replay`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Schedule replayed.
    pub schedule: String,
    /// Drift threshold used.
    pub drift_threshold: f64,
    /// Per-epoch decisions, in order.
    pub epochs: Vec<EpochReport>,
    /// Drift-triggered re-solves (the initial epoch-0 solve is not a
    /// *re*-solve and is not counted).
    pub resolves: u64,
    /// Total globals migrated across all re-solves.
    pub migrated_globals: u64,
    /// Total migration cost in bytes.
    pub migration_bytes: u64,
    /// Total predicted gain across re-solves (cycles/packet).
    pub predicted_gain: f64,
}

/// The unified answer to a [`PlacementRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Device backend the plan targets.
    pub backend: String,
    /// Inference precision used.
    pub precision: Precision,
    /// Chain-split objective used.
    pub objective: Objective,
    /// Per-NF exact plans (request order).
    pub nfs: Vec<NfPlan>,
    /// The chain's partial-offload split.
    pub split: SplitSummary,
    /// Sum of per-NF ILP objectives (cycles/packet saved).
    pub total_objective: f64,
    /// Sum of per-NF greedy objectives (stranded NFs contribute 0;
    /// always ≤ [`PlacementPlan::total_objective`]).
    pub greedy_total_objective: f64,
    /// Replay outcome when the request named a schedule.
    pub replay: Option<ReplaySummary>,
}

/// Builds the capacitated assignment instance for one NF on one device
/// (costs `f_i · L_j`, sizes `total_bytes`, capacities with
/// [`CAPACITY_HEADROOM`]).
fn instance(module: &Module, wp: &WorkloadProfile, cfg: &NicConfig) -> AssignmentProblem {
    let globals = &module.globals;
    let costs: Vec<Vec<f64>> = globals
        .iter()
        .map(|g| {
            let freq = wp.accesses_to(g.id);
            MemLevel::ALL
                .iter()
                .map(|l| freq * f64::from(cfg.level(*l).latency))
                .collect()
        })
        .collect();
    let sizes: Vec<u64> = globals.iter().map(|g| g.total_bytes().max(1)).collect();
    let caps: Vec<u64> = MemLevel::ALL
        .iter()
        .map(|l| (cfg.level(*l).capacity as f64 * CAPACITY_HEADROOM) as u64)
        .collect();
    AssignmentProblem { costs, sizes, caps }
}

fn to_placement(module: &Module, assignment: &[usize]) -> BTreeMap<GlobalId, MemLevel> {
    module
        .globals
        .iter()
        .zip(assignment.iter())
        .map(|(g, &j)| (g.id, MemLevel::ALL[j]))
        .collect()
}

/// Cost of an arbitrary placement under a profile: `Σ f_i · L_place(i)`
/// in cycles per packet (globals missing from the map count as EMEM).
pub fn placement_cost(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
    placement: &BTreeMap<GlobalId, MemLevel>,
) -> f64 {
    module
        .globals
        .iter()
        .map(|g| {
            let level = placement.get(&g.id).copied().unwrap_or(MemLevel::Emem);
            wp.accesses_to(g.id) * f64::from(cfg.level(level).latency)
        })
        .sum()
}

/// The all-EMEM baseline cost the objective is measured against.
pub fn baseline_cost(module: &Module, wp: &WorkloadProfile, cfg: &NicConfig) -> f64 {
    placement_cost(module, wp, cfg, &BTreeMap::new())
}

/// Flushes IEEE negative zero (a `baseline − cost` artifact on
/// zero-state NFs) so rendered objectives are `0.000`, not `-0.000`.
fn nonneg_zero(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Exactly solves one NF's placement with the greedy fallback attached.
///
/// Errors are typed: an instance no assignment satisfies is
/// [`PlacementFailure::Infeasible`]; an exhausted node budget is
/// [`PlacementFailure::SolverTimeout`].
pub fn solve_nf(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
    node_budget: u64,
) -> Result<NfSolve, ClaraError> {
    let p = instance(module, wp, cfg);
    let baseline = baseline_cost(module, wp, cfg);
    let sol = match p.solve_within(node_budget) {
        Ok(Some(s)) => s,
        Ok(None) => {
            return Err(ClaraError::Placement {
                kind: PlacementFailure::Infeasible,
                detail: format!(
                    "`{}`: state does not fit any feasible memory assignment",
                    module.name
                ),
            })
        }
        Err(IlpError::BudgetExhausted { budget }) => {
            return Err(ClaraError::Placement {
                kind: PlacementFailure::SolverTimeout,
                detail: format!("`{}`: node budget of {budget} exhausted", module.name),
            })
        }
        Err(e) => {
            return Err(ClaraError::Format {
                path: None,
                detail: format!("`{}`: malformed placement instance: {e}", module.name),
            })
        }
    };
    let greedy = p
        .solve_greedy()
        .ok()
        .flatten()
        .map(|g| GreedyPlan {
            placement: to_placement(module, &g.assignment),
            cost: g.cost,
            objective: nonneg_zero(baseline - g.cost),
        });
    Ok(NfSolve {
        placement: to_placement(module, &sol.assignment),
        cost: sol.cost,
        objective: nonneg_zero(baseline - sol.cost),
        greedy,
    })
}

/// The greedy fallback alone: `None` when the heuristic strands an item.
pub fn greedy_placement(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
) -> Option<BTreeMap<GlobalId, MemLevel>> {
    let p = instance(module, wp, cfg);
    p.solve_greedy()
        .ok()
        .flatten()
        .map(|g| to_placement(module, &g.assignment))
}

/// Clara's ILP-based placement suggestion (the canonical home of the
/// former `placement::suggest_placement`). Returns `None` when the
/// instance is infeasible.
pub fn suggest_placement(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
) -> Option<BTreeMap<GlobalId, MemLevel>> {
    solve_nf(module, wp, cfg, DEFAULT_NODE_BUDGET)
        .ok()
        .map(|s| s.placement)
}

/// Evaluates every prefix split of a chain (the canonical home of the
/// former [`crate::partial::suggest_split`]); see [`crate::partial`] for
/// the host and PCIe models.
///
/// # Panics
///
/// Panics if inputs mismatch or the chain fails to run (element bugs).
pub fn suggest_split(
    modules: &[&Module],
    trace: &Trace,
    ports: &[&PortConfig],
    nic_cfg: &NicConfig,
    nic_cores: u32,
    host: &HostConfig,
    setup: impl FnOnce(&mut click_model::Chain),
) -> Vec<SplitPlan> {
    partial::split_plans(modules, trace, ports, nic_cfg, nic_cores, host, setup)
}

/// Relative L1 drift between two access profiles of the same NF: the
/// summed absolute change of the fixed- and per-global access
/// frequencies, normalized by the old profile's total. Exactly 0 for
/// bit-identical traces; compute changes are deliberately ignored (they
/// cannot change a placement).
pub fn drift(old: &WorkloadProfile, new: &WorkloadProfile) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in old.fixed_accesses.iter().zip(new.fixed_accesses.iter()) {
        num += (a - b).abs();
        den += a;
    }
    let keys: BTreeSet<GlobalId> = old
        .global_access
        .keys()
        .chain(new.global_access.keys())
        .copied()
        .collect();
    for g in keys {
        let a = old.accesses_to(g);
        let b = new.accesses_to(g);
        num += (a - b).abs();
        den += a;
    }
    if num <= 1e-12 {
        0.0
    } else {
        num / den.max(1e-9)
    }
}

/// Migration between two per-NF solves: `(globals moved, bytes moved)`.
fn migration(modules: &[&click_model::NfElement], old: &[NfSolve], new: &[NfSolve]) -> (u64, u64) {
    let mut moved = 0u64;
    let mut bytes = 0u64;
    for ((e, o), n) in modules.iter().zip(old.iter()).zip(new.iter()) {
        for g in &e.module.globals {
            let from = o.placement.get(&g.id).copied().unwrap_or(MemLevel::Emem);
            let to = n.placement.get(&g.id).copied().unwrap_or(MemLevel::Emem);
            if from != to {
                moved += 1;
                bytes += g.total_bytes();
            }
        }
    }
    (moved, bytes)
}

fn solve_all(
    modules: &[&click_model::NfElement],
    profiles: &[WorkloadProfile],
    nic: &NicConfig,
    node_budget: u64,
    device: &str,
) -> Result<Vec<NfSolve>, ClaraError> {
    modules
        .iter()
        .zip(profiles.iter())
        .map(|(e, wp)| {
            solve_nf(&e.module, wp, nic, node_budget).map_err(|err| match err {
                ClaraError::Placement { kind, detail } => ClaraError::Placement {
                    kind,
                    detail: format!("{detail} on device `{device}`"),
                },
                other => other,
            })
        })
        .collect()
}

impl Clara {
    /// Plans placement for an NF set: resolves the request's builtin
    /// backend (session default when unset) and delegates to
    /// [`Clara::place_on`]. This is the single typed entry point behind
    /// `clara place` and serve `op:"place"`.
    pub fn place(&self, req: &PlacementRequest) -> Result<PlacementPlan, ClaraError> {
        let backend: &dyn clara_hal::Backend = match &req.backend {
            Some(name) => crate::difftest::resolve_backends(std::slice::from_ref(name))?[0],
            None => clara_hal::default_backend(),
        };
        self.place_on(req, backend)
    }

    /// Plans placement against an explicit backend (a warm server's
    /// loaded device, or a manifest loaded from disk), at the request's
    /// precision (model default when unset).
    pub fn place_on(
        &self,
        req: &PlacementRequest,
        backend: &dyn clara_hal::Backend,
    ) -> Result<PlacementPlan, ClaraError> {
        self.place_on_prec(req, backend, req.precision.unwrap_or(self.precision))
    }

    /// Fully explicit placement planning: request × backend × precision.
    pub fn place_on_prec(
        &self,
        req: &PlacementRequest,
        backend: &dyn clara_hal::Backend,
        precision: Precision,
    ) -> Result<PlacementPlan, ClaraError> {
        obs::counter("place.requests").incr();
        let root = obs::span!(
            "clara-place",
            "nfs={} backend={}",
            req.nfs.join(","),
            backend.name()
        );
        if req.nfs.is_empty() {
            return Err(ClaraError::Placement {
                kind: PlacementFailure::UnknownNf,
                detail: "request names no NFs".into(),
            });
        }
        let corpus = click_model::extended_corpus();
        let mut modules: Vec<&click_model::NfElement> = Vec::with_capacity(req.nfs.len());
        for nf in &req.nfs {
            let e = corpus
                .iter()
                .find(|e| e.name() == nf)
                .ok_or_else(|| ClaraError::Placement {
                    kind: PlacementFailure::UnknownNf,
                    detail: format!("`{nf}` is not in the corpus"),
                })?;
            modules.push(e);
        }

        let nic = backend.nic();
        let backend_fp = backend.fingerprint();
        let naive = PortConfig::naive();
        let eng = engine::Engine::new();
        let profile_at = |trace: &Trace| -> Vec<WorkloadProfile> {
            modules
                .iter()
                .map(|e| eng.profile_cached_for(&e.module, trace, &naive, nic, backend_fp))
                .collect()
        };

        // Solve: one shot on the static trace, or a drift-driven walk
        // over the replay schedule. `basis` is the (trace, profiles) the
        // current plan was solved on — the final plan is rendered
        // against it.
        let (solves, basis_trace, basis_profiles, replay) = match req.schedule()? {
            None => {
                let trace = req.trace();
                let profiles = profile_at(&trace);
                let solves =
                    solve_all(&modules, &profiles, nic, req.node_budget, backend.name())?;
                (solves, trace, profiles, None)
            }
            Some(sched) => {
                let total = sched.epochs();
                let mut reports: Vec<EpochReport> = Vec::with_capacity(total);
                let mut resolves = 0u64;
                let mut migrated = 0u64;
                let mut migration_bytes = 0u64;
                let mut predicted_gain = 0.0f64;
                let mut current: Vec<NfSolve> = Vec::new();
                let mut basis: Vec<WorkloadProfile> = Vec::new();
                let mut basis_trace: Option<Trace> = None;
                for epoch in 0..total {
                    let trace = sched
                        .epoch_trace(epoch, req.packets.max(1), req.seed)
                        .expect("epoch within schedule");
                    let workload = sched
                        .phase_of(epoch)
                        .map(|(_, spec)| spec.name.clone())
                        .expect("epoch within schedule");
                    let profiles = profile_at(&trace);
                    obs::counter("place.epochs").incr();
                    if epoch == 0 {
                        current = solve_all(
                            &modules,
                            &profiles,
                            nic,
                            req.node_budget,
                            backend.name(),
                        )?;
                        reports.push(EpochReport {
                            epoch,
                            workload,
                            drift: 0.0,
                            resolved: true,
                            migrated_globals: 0,
                            migration_bytes: 0,
                            predicted_gain: 0.0,
                        });
                        basis = profiles;
                        basis_trace = Some(trace);
                        continue;
                    }
                    let d = basis
                        .iter()
                        .zip(profiles.iter())
                        .map(|(o, n)| drift(o, n))
                        .fold(0.0f64, f64::max);
                    if d > req.drift_threshold {
                        let next = solve_all(
                            &modules,
                            &profiles,
                            nic,
                            req.node_budget,
                            backend.name(),
                        )?;
                        let (moved, bytes) = migration(&modules, &current, &next);
                        // Gain: what the *old* placement would cost under
                        // the new traffic, minus the re-solved cost.
                        let gain: f64 = modules
                            .iter()
                            .zip(current.iter())
                            .zip(profiles.iter())
                            .zip(next.iter())
                            .map(|(((e, old), wp), new)| {
                                placement_cost(&e.module, wp, nic, &old.placement) - new.cost
                            })
                            .sum();
                        resolves += 1;
                        migrated += moved;
                        migration_bytes += bytes;
                        predicted_gain += gain;
                        obs::counter("place.resolves").incr();
                        obs::counter("place.migrated_globals").add(moved);
                        reports.push(EpochReport {
                            epoch,
                            workload,
                            drift: d,
                            resolved: true,
                            migrated_globals: moved,
                            migration_bytes: bytes,
                            predicted_gain: gain,
                        });
                        current = next;
                        basis = profiles;
                        basis_trace = Some(trace);
                    } else {
                        reports.push(EpochReport {
                            epoch,
                            workload,
                            drift: d,
                            resolved: false,
                            migrated_globals: 0,
                            migration_bytes: 0,
                            predicted_gain: 0.0,
                        });
                    }
                }
                let summary = ReplaySummary {
                    schedule: sched.name.clone(),
                    drift_threshold: req.drift_threshold,
                    epochs: reports,
                    resolves,
                    migrated_globals: migrated,
                    migration_bytes,
                    predicted_gain,
                };
                (
                    current,
                    basis_trace.expect("schedule has at least one epoch"),
                    basis,
                    Some(summary),
                )
            }
        };

        // Render the plan against the basis: per-NF ports, suggested
        // cores, operating points, and the chain split.
        let mut nfs: Vec<NfPlan> = Vec::with_capacity(modules.len());
        let mut ports: Vec<PortConfig> = Vec::with_capacity(modules.len());
        for ((e, solve), wp) in modules
            .iter()
            .zip(solves)
            .zip(basis_profiles.iter())
        {
            let port = apply_placement(naive.clone(), &solve.placement);
            let suggested_cores = self
                .scaleout
                .predict_prec(wp, nic, &naive, precision)?
                .min(nic.cores);
            let perf = solve_perf(wp, nic, &port, suggested_cores);
            let named = |placement: &BTreeMap<GlobalId, MemLevel>| {
                placement
                    .iter()
                    .map(|(&g, l)| {
                        let gname = e.module.global(g).map_or("?", |d| d.name.as_str());
                        (gname.to_string(), l.name().to_string())
                    })
                    .collect::<Vec<_>>()
            };
            let named_placement = named(&solve.placement);
            let named_greedy_placement =
                solve.greedy.as_ref().map(|g| named(&g.placement));
            nfs.push(NfPlan {
                nf: e.name().to_string(),
                solve,
                named_placement,
                named_greedy_placement,
                suggested_cores,
                throughput_mpps: perf.throughput_mpps,
                latency_us: perf.latency_us,
            });
            ports.push(port);
        }
        let total_objective: f64 = nfs.iter().map(|p| p.solve.objective).sum();
        let greedy_total_objective: f64 = nfs
            .iter()
            .map(|p| p.solve.greedy.as_ref().map_or(0.0, |g| g.objective))
            .sum();

        let module_refs: Vec<&Module> = modules.iter().map(|e| &e.module).collect();
        let port_refs: Vec<&PortConfig> = ports.iter().collect();
        let split_plans = partial::split_plans(
            &module_refs,
            &basis_trace,
            &port_refs,
            nic,
            nic.cores,
            &HostConfig::default(),
            |_| {},
        );
        let chosen = best_split(&split_plans, req.objective.slack())
            .expect("a chain always has at least the 0-stage split");
        let split = SplitSummary {
            nic_stages: chosen.nic_stages,
            total_stages: modules.len(),
            throughput_mpps: chosen.throughput_mpps,
            latency_us: chosen.latency_us,
            host_cores_needed: chosen.host_cores_needed,
        };
        drop(root);

        Ok(PlacementPlan {
            backend: backend.name().to_string(),
            precision,
            objective: req.objective,
            nfs,
            split,
            total_objective,
            greedy_total_objective,
            replay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nic_sim::profile_workload;

    fn profiled(e: &click_model::NfElement) -> (WorkloadProfile, NicConfig) {
        let cfg = NicConfig::default();
        let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(2048), 500, 1);
        let wp = profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
        (wp, cfg)
    }

    #[test]
    fn objective_is_nonnegative_and_beats_greedy() {
        let e = click_model::elements::mazunat();
        let (wp, cfg) = profiled(&e);
        let s = solve_nf(&e.module, &wp, &cfg, DEFAULT_NODE_BUDGET).expect("feasible");
        assert!(s.objective >= 0.0);
        let g = s.greedy.as_ref().expect("greedy feasible on default NIC");
        assert!(s.objective >= g.objective - 1e-9);
        assert!(s.delta() >= -1e-9);
        // Objective really is baseline minus cost.
        let baseline = baseline_cost(&e.module, &wp, &cfg);
        assert!((s.objective - (baseline - s.cost)).abs() < 1e-9);
    }

    #[test]
    fn solver_timeout_is_typed() {
        let e = click_model::elements::mazunat();
        let (wp, cfg) = profiled(&e);
        match solve_nf(&e.module, &wp, &cfg, 0) {
            Err(ClaraError::Placement {
                kind: PlacementFailure::SolverTimeout,
                ..
            }) => {}
            other => panic!("expected solver timeout, got {other:?}"),
        }
    }

    #[test]
    fn drift_is_zero_for_identical_profiles_and_positive_for_shifts() {
        let e = click_model::elements::flowstats();
        let cfg = NicConfig::default();
        let naive = PortConfig::naive();
        let large = Trace::generate(&WorkloadSpec::large_flows(), 400, 42);
        let small = Trace::generate(&WorkloadSpec::small_flows().with_flows(8192), 400, 42);
        let a = profile_workload(&e.module, &large, &naive, &cfg, |_| {});
        let b = profile_workload(&e.module, &large, &naive, &cfg, |_| {});
        let c = profile_workload(&e.module, &small, &naive, &cfg, |_| {});
        assert_eq!(drift(&a, &b), 0.0);
        assert!(drift(&a, &c) > 0.0);
    }

    #[test]
    fn request_defaults_match_the_serving_path() {
        let req = PlacementRequest::new(["nat"]);
        assert_eq!(req.packets, 400);
        assert_eq!(req.seed, 42);
        assert_eq!(req.objective, Objective::HostCores);
        assert!(req.schedule().unwrap().is_none());
        let req = PlacementRequest::builder(["nat"])
            .packets(100)
            .seed(7)
            .replay("shift")
            .epochs(6)
            .drift_threshold(0.5)
            .build();
        assert_eq!(req.packets, 100);
        let sched = req.schedule().unwrap().expect("builtin");
        assert_eq!(sched.epochs(), 6);
        let bad = PlacementRequest::builder(["nat"]).replay("nosuch").build();
        assert!(bad.schedule().is_err());
    }

    #[test]
    fn objective_names_round_trip() {
        for o in [Objective::Throughput, Objective::HostCores] {
            assert_eq!(Objective::parse(o.as_str()), Some(o));
        }
        assert_eq!(Objective::parse("speed"), None);
    }
}
