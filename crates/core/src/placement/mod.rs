//! NF state placement via ILP (paper Section 4.3).
//!
//! Clara collects per-structure access frequencies by running the NF on
//! the host against the workload trace, then solves
//! `min Σ L_j · p_ij · f_i` subject to one-location-per-structure and
//! per-level capacity constraints. The paper's expert emulation
//! (Section 5.8) — an exhaustive sweep over all placements, evaluated on
//! the real (here: simulated) NIC — is also provided; it can beat the ILP
//! exactly where the paper says it does, because the ILP's cost model
//! ignores the EMEM cache and bandwidth-spreading effects.
//!
//! The canonical placement API lives in [`plan`]: a typed
//! [`plan::PlacementRequest`] flows into [`crate::Clara::place`] and
//! returns a [`plan::PlacementPlan`]. The free functions kept at this
//! level are either placement-agnostic helpers ([`apply_placement`],
//! [`exhaustive_placement`]) or deprecated shims retained for one
//! release.

use std::collections::BTreeMap;

use nf_ir::{GlobalId, Module};
use nic_sim::{solve_perf, MemLevel, NicConfig, PerfPoint, PortConfig, WorkloadProfile};

pub mod plan;

/// Fraction of each level's capacity available to NF state (the runtime
/// reserves the rest for packet buffers and metadata).
pub const CAPACITY_HEADROOM: f64 = 0.9;

/// Clara's ILP-based placement suggestion.
///
/// Returns `None` when the instance is infeasible (state larger than the
/// NIC's memory).
#[deprecated(note = "use clara_core::placement::plan::suggest_placement instead")]
pub fn suggest_placement(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
) -> Option<BTreeMap<GlobalId, MemLevel>> {
    plan::suggest_placement(module, wp, cfg)
}

/// Applies a placement map to a port configuration.
pub fn apply_placement(
    mut port: PortConfig,
    placement: &BTreeMap<GlobalId, MemLevel>,
) -> PortConfig {
    for (g, l) in placement {
        port = port.place(*g, *l);
    }
    port
}

/// Expert emulation: exhaustively tries every feasible placement on the
/// simulator and returns the best (by throughput/latency ratio at the
/// given core count), together with its operating point.
///
/// Exponential in the number of globals; fine for real NFs (≤ 6 globals).
pub fn exhaustive_placement(
    module: &Module,
    wp: &WorkloadProfile,
    cfg: &NicConfig,
    base: &PortConfig,
    cores: u32,
) -> Option<(BTreeMap<GlobalId, MemLevel>, PerfPoint)> {
    let n = module.globals.len();
    if n == 0 {
        return Some((BTreeMap::new(), solve_perf(wp, cfg, base, cores)));
    }
    let caps: Vec<u64> = MemLevel::ALL
        .iter()
        .map(|l| (cfg.level(*l).capacity as f64 * CAPACITY_HEADROOM) as u64)
        .collect();
    let mut assign = vec![0usize; n];
    let mut best: Option<(BTreeMap<GlobalId, MemLevel>, PerfPoint)> = None;
    loop {
        // Feasibility.
        let mut used = [0u64; 4];
        for (i, g) in module.globals.iter().enumerate() {
            used[assign[i]] += g.total_bytes();
        }
        if used.iter().zip(caps.iter()).all(|(u, c)| u <= c) {
            let placement: BTreeMap<GlobalId, MemLevel> = module
                .globals
                .iter()
                .enumerate()
                .map(|(i, g)| (g.id, MemLevel::ALL[assign[i]]))
                .collect();
            let port = apply_placement(base.clone(), &placement);
            let p = solve_perf(wp, cfg, &port, cores);
            if best.as_ref().is_none_or(|(_, b)| p.ratio() > b.ratio()) {
                best = Some((placement, p));
            }
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == n {
                return best;
            }
            assign[k] += 1;
            if assign[k] < 4 {
                break;
            }
            assign[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nic_sim::profile_workload;
    use trafgen::{Trace, WorkloadSpec};

    fn profiled(e: &click_model::NfElement) -> (WorkloadProfile, NicConfig) {
        let cfg = NicConfig::default();
        let trace = Trace::generate(&WorkloadSpec::small_flows().with_flows(2048), 500, 1);
        let wp = profile_workload(&e.module, &trace, &PortConfig::naive(), &cfg, |_| {});
        (wp, cfg)
    }

    #[test]
    fn hot_small_structures_move_to_fast_memory() {
        let e = click_model::elements::udpcount();
        let (wp, cfg) = profiled(&e);
        let placement = plan::suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        // Every structure in udpcount is small; none should stay in EMEM.
        for (g, l) in &placement {
            assert_ne!(
                *l,
                MemLevel::Emem,
                "global {g:?} left in EMEM: {placement:?}"
            );
        }
    }

    #[test]
    fn capacity_forces_large_tables_out_of_cls() {
        let e = click_model::elements::mazunat();
        let (wp, cfg) = profiled(&e);
        let placement = plan::suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        for g in &e.module.globals {
            if g.total_bytes() > cfg.level(MemLevel::Cls).capacity {
                assert_ne!(placement[&g.id], MemLevel::Cls, "{}", g.name);
            }
        }
    }

    #[test]
    fn ilp_placement_beats_naive_port() {
        let e = click_model::elements::udpcount();
        let (wp, cfg) = profiled(&e);
        let placement = plan::suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        let naive = solve_perf(&wp, &cfg, &PortConfig::naive(), 20);
        let tuned_port = apply_placement(PortConfig::naive(), &placement);
        let tuned = solve_perf(&wp, &cfg, &tuned_port, 20);
        assert!(
            tuned.latency_us < naive.latency_us,
            "tuned {} vs naive {}",
            tuned.latency_us,
            naive.latency_us
        );
        assert!(tuned.throughput_mpps >= naive.throughput_mpps);
    }

    #[test]
    fn expert_is_at_least_as_good_as_ilp() {
        let e = click_model::elements::udpcount();
        let (wp, cfg) = profiled(&e);
        let ilp = plan::suggest_placement(&e.module, &wp, &cfg).expect("feasible");
        let ilp_port = apply_placement(PortConfig::naive(), &ilp);
        let ilp_point = solve_perf(&wp, &cfg, &ilp_port, 20);
        let (_, expert_point) =
            exhaustive_placement(&e.module, &wp, &cfg, &PortConfig::naive(), 20).expect("feasible");
        assert!(
            expert_point.ratio() >= ilp_point.ratio() - 1e-9,
            "expert {} vs ilp {}",
            expert_point.ratio(),
            ilp_point.ratio()
        );
    }

    #[test]
    fn infeasible_state_returns_none() {
        let mut m = nf_ir::Module::new("huge");
        let _ = m.add_global("big", nf_ir::StateKind::Array, 1024, 16 * 1024 * 1024); // 16 GB
        let mut fb = nf_ir::FunctionBuilder::new("process");
        let bb = fb.entry_block();
        fb.switch_to(bb);
        fb.ret(None);
        m.funcs.push(fb.finish());
        let wp = WorkloadProfile::default();
        assert!(plan::suggest_placement(&m, &wp, &NicConfig::default()).is_none());
    }
}
