//! Partial offloading: splitting an NF chain between SmartNIC and host.
//!
//! The paper's Discussion (§6) names this as the natural extension:
//! "a partial offloading scenario might split the NF program between
//! host CPUs and SmartNICs … Clara would also need to reason about the
//! communication between SmartNICs and the host". This module implements
//! that reasoning for linear service chains:
//!
//! - a simple **host cost model** ([`HostConfig`]): few fast wide cores,
//!   cache-served state, per-packet kernel-bypass IO overhead;
//! - a **PCIe crossing model**: per-packet DMA latency plus a bandwidth
//!   ceiling, paid once when the packet moves from NIC to host;
//! - [`suggest_split`]: evaluates every prefix split (stages `0..k` on
//!   the NIC, `k..n` on the host) and reports throughput, latency, and —
//!   the quantity the paper's introduction optimizes — **host CPU cores
//!   freed** for revenue work.

use nic_sim::{solve_perf, NicConfig, PortConfig, WorkloadProfile};
use serde::{Deserialize, Serialize};
use trafgen::Trace;

/// Host-side execution model (x86 server, kernel-bypass IO).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostConfig {
    /// Host core clock in GHz.
    pub freq_ghz: f64,
    /// Host cores available for packet processing.
    pub cores: u32,
    /// Host cycles per NIC compute instruction (wide OoO cores retire
    /// several of the NIC's simple ops per cycle).
    pub cycles_per_inst: f64,
    /// Host cycles per state access (large caches make most hits cheap).
    pub mem_access_cycles: f64,
    /// Per-packet IO/framework overhead in host cycles (DPDK-style).
    pub io_overhead_cycles: f64,
    /// PCIe one-way crossing latency in microseconds.
    pub pcie_latency_us: f64,
    /// PCIe packet ceiling in Mpps (descriptor ring + DMA limits).
    pub pcie_mpps_cap: f64,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            freq_ghz: 3.4,
            cores: 8,
            cycles_per_inst: 0.45,
            mem_access_cycles: 12.0,
            io_overhead_cycles: 180.0,
            pcie_latency_us: 0.9,
            pcie_mpps_cap: 38.0,
        }
    }
}

/// A host-side operating point for a (partial) workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostPoint {
    /// Host cores used.
    pub cores: u32,
    /// Sustained throughput in Mpps.
    pub throughput_mpps: f64,
    /// Per-packet latency in microseconds.
    pub latency_us: f64,
}

/// Evaluates a workload profile on host cores.
pub fn host_point(wp: &WorkloadProfile, host: &HostConfig, cores: u32) -> HostPoint {
    let accesses: f64 =
        wp.fixed_accesses.iter().sum::<f64>() + wp.global_access.values().sum::<f64>();
    let cycles = host.io_overhead_cycles
        + wp.compute * host.cycles_per_inst
        + accesses * host.mem_access_cycles;
    let per_core_mpps = host.freq_ghz * 1e3 / cycles.max(1.0);
    HostPoint {
        cores,
        throughput_mpps: per_core_mpps * f64::from(cores.max(1)),
        latency_us: cycles / (host.freq_ghz * 1e3),
    }
}

/// One candidate split of a chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Stages `0..nic_stages` run on the NIC; the rest on the host.
    pub nic_stages: usize,
    /// End-to-end sustainable throughput in Mpps.
    pub throughput_mpps: f64,
    /// End-to-end per-packet latency in microseconds.
    pub latency_us: f64,
    /// Host cores needed to keep up with the NIC at this split (the
    /// complement of "host cores freed").
    pub host_cores_needed: u32,
}

/// Evaluates every prefix split of a chain and returns one plan per
/// split point (`0..=n` NIC stages), ordered by split point.
///
/// # Panics
///
/// Panics if inputs mismatch or the chain fails to run (element bugs).
#[deprecated(note = "use clara_core::placement::plan::suggest_split instead")]
pub fn suggest_split(
    modules: &[&nf_ir::Module],
    trace: &Trace,
    ports: &[&PortConfig],
    nic_cfg: &NicConfig,
    nic_cores: u32,
    host: &HostConfig,
    setup: impl FnOnce(&mut click_model::Chain),
) -> Vec<SplitPlan> {
    split_plans(modules, trace, ports, nic_cfg, nic_cores, host, setup)
}

/// The split evaluator behind [`crate::placement::plan::suggest_split`]
/// (and the deprecated [`suggest_split`] shim above).
pub(crate) fn split_plans(
    modules: &[&nf_ir::Module],
    trace: &Trace,
    ports: &[&PortConfig],
    nic_cfg: &NicConfig,
    nic_cores: u32,
    host: &HostConfig,
    setup: impl FnOnce(&mut click_model::Chain),
) -> Vec<SplitPlan> {
    let stages = nic_sim::profile_chain_stages(modules, trace, ports, nic_cfg, setup);
    let n = stages.len();
    let mut plans = Vec::with_capacity(n + 1);
    for k in 0..=n {
        // NIC side: stages 0..k.
        let (nic_thpt, nic_lat) = if k == 0 {
            (f64::INFINITY, 0.0)
        } else {
            let nic_wp = nic_sim::merge_stage_profiles(&stages[..k], trace);
            let p = solve_perf(&nic_wp, nic_cfg, &PortConfig::naive(), nic_cores);
            (p.throughput_mpps, p.latency_us)
        };
        // Host side: stages k..n (cost per chain packet; reach-weighting
        // is already folded into the stage profiles).
        let (host_thpt_per_core, host_lat) = if k == n {
            (f64::INFINITY, 0.0)
        } else {
            let host_wp = nic_sim::merge_stage_profiles(&stages[k..], trace);
            let hp = host_point(&host_wp, host, 1);
            (hp.throughput_mpps, hp.latency_us)
        };
        // PCIe crossing: paid whenever any stage runs on the host.
        let (pcie_cap, pcie_lat) = if k == n {
            (f64::INFINITY, 0.0)
        } else {
            (host.pcie_mpps_cap, host.pcie_latency_us)
        };

        // Host cores needed to match the upstream bottleneck.
        let upstream = nic_thpt.min(pcie_cap);
        let host_cores_needed = if k == n {
            0
        } else {
            ((upstream / host_thpt_per_core).ceil() as u32).clamp(1, host.cores)
        };
        let host_thpt = if k == n {
            f64::INFINITY
        } else {
            host_thpt_per_core * f64::from(host_cores_needed)
        };

        let throughput = nic_thpt.min(pcie_cap).min(host_thpt);
        plans.push(SplitPlan {
            nic_stages: k,
            throughput_mpps: if throughput.is_finite() {
                throughput
            } else {
                0.0
            },
            latency_us: nic_lat + pcie_lat + host_lat,
            host_cores_needed,
        });
    }
    plans
}

/// Picks the split that minimizes host cores while staying within
/// `slack` (e.g. 0.95) of the best achievable throughput.
pub fn best_split(plans: &[SplitPlan], slack: f64) -> Option<&SplitPlan> {
    let best = plans
        .iter()
        .map(|p| p.throughput_mpps)
        .fold(0.0f64, f64::max);
    plans
        .iter()
        .filter(|p| p.throughput_mpps >= best * slack.clamp(0.0, 1.0))
        .min_by_key(|p| (p.host_cores_needed, std::cmp::Reverse(p.nic_stages)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_model::elements;
    use trafgen::WorkloadSpec;

    fn chain_plans() -> Vec<SplitPlan> {
        let fw = elements::firewall();
        let nat = elements::mazunat();
        let stats = elements::flowstats();
        let spec = WorkloadSpec {
            tcp_ratio: 1.0,
            ..WorkloadSpec::large_flows().with_flows(64)
        };
        let trace = Trace::generate(&spec, 1500, 1);
        let cfg = NicConfig::default();
        let naive = PortConfig::naive();
        let pfx = u64::from(trace.pkts[0].flow.src_ip >> 12);
        split_plans(
            &[&fw.module, &nat.module, &stats.module],
            &trace,
            &[&naive, &naive, &naive],
            &cfg,
            40,
            &HostConfig::default(),
            |chain| {
                chain
                    .stage_mut(0)
                    .expect("stage 0")
                    .state
                    .store(nf_ir::GlobalId(1), 0, 0, 4, pfx);
            },
        )
    }

    #[test]
    fn evaluates_every_split_point() {
        let plans = chain_plans();
        assert_eq!(plans.len(), 4); // 0..=3 NIC stages.
        for (k, p) in plans.iter().enumerate() {
            assert_eq!(p.nic_stages, k);
            assert!(p.throughput_mpps > 0.0, "split {k}");
            assert!(p.latency_us > 0.0 && p.latency_us.is_finite());
        }
    }

    #[test]
    fn full_offload_frees_all_host_cores() {
        let plans = chain_plans();
        assert_eq!(plans.last().unwrap().host_cores_needed, 0);
        // Any partial split needs at least one host core.
        assert!(plans[..3].iter().all(|p| p.host_cores_needed >= 1));
    }

    #[test]
    fn partial_splits_pay_pcie_latency() {
        let plans = chain_plans();
        let host_cfg = HostConfig::default();
        // Every split with host stages carries at least the PCIe latency.
        for p in &plans[..3] {
            assert!(
                p.latency_us >= host_cfg.pcie_latency_us,
                "split {} too fast: {}",
                p.nic_stages,
                p.latency_us
            );
        }
    }

    #[test]
    fn best_split_prefers_fewer_host_cores() {
        let plans = chain_plans();
        let best = best_split(&plans, 0.9).expect("some plan");
        // Whatever the numbers, the chosen plan is within slack of the
        // fastest and no other qualifying plan uses fewer host cores.
        let fastest = plans
            .iter()
            .map(|p| p.throughput_mpps)
            .fold(0.0f64, f64::max);
        assert!(best.throughput_mpps >= 0.9 * fastest);
        for p in &plans {
            if p.throughput_mpps >= 0.9 * fastest {
                assert!(best.host_cores_needed <= p.host_cores_needed);
            }
        }
    }

    #[test]
    fn host_point_scales_with_cores() {
        let wp = WorkloadProfile {
            compute: 400.0,
            fixed_accesses: [0.0, 4.0, 0.0, 0.0],
            mean_pkt_size: 128.0,
            pkts: 100,
            ..Default::default()
        };
        let host = HostConfig::default();
        let one = host_point(&wp, &host, 1);
        let four = host_point(&wp, &host, 4);
        assert!((four.throughput_mpps / one.throughput_mpps - 4.0).abs() < 1e-9);
        assert_eq!(one.latency_us, four.latency_us);
    }
}
