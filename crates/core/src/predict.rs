//! Cross-platform instruction prediction (paper Sections 3.2–3.3).
//!
//! Clara predicts, per basic block, how many compute instructions the
//! opaque vendor compiler will emit — by training an LSTM+FC model on
//! synthesized program/assembly pairs. Stateful memory accesses are not
//! predicted but *counted* from IR loads/stores (they map ~1:1 onto NIC
//! memory commands). Framework API calls are excluded from prediction and
//! handled by reverse porting: their cost comes from the vendor library
//! itself (`nic-sim`'s API cost model), mirroring the paper's use of "the
//! machine code as compiled from the SmartNIC compiler directly".

use nf_ir::{abstraction, Module, Vocabulary};
use serde::{Deserialize, Serialize};
use tinyml::cnn::{Cnn1d, CnnConfig};
use tinyml::lstm::{LstmConfig, LstmRegressor};
use tinyml::metrics;
use tinyml::mlp::{Loss, Mlp, MlpConfig};
use tinyml::quant::{Precision, QuantLstm, QuantMlp};
use tinyml::regressor::{Regressor, RegressorInput};

/// One training sample: a block's token sequence and its ground-truth
/// NIC instruction counts (from compiling with `nfcc`).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSample {
    /// Abstract tokens of the block.
    pub tokens: Vec<nf_ir::AbstractToken>,
    /// Compute instructions `nfcc` emitted for the block.
    pub compute: f64,
    /// Memory instructions `nfcc` emitted for the block.
    pub mem: f64,
}

/// Extracts `(token sequence, NIC counts)` samples from modules by
/// compiling each with the vendor compiler.
///
/// Compiles fan out across the engine's worker pool and are memoized per
/// module content, so a corpus element sampled twice compiles once.
/// Sample order matches a serial loop over `modules` exactly.
///
/// # Panics
///
/// Panics if any module's compile fails permanently;
/// [`try_block_samples`] is the fault-tolerant form.
pub fn block_samples(modules: &[Module]) -> Vec<BlockSample> {
    let (samples, failures, _) = try_block_samples(modules);
    assert!(
        failures.is_empty(),
        "predict-samples: {} of {} module(s) failed permanently; first: {}",
        failures.len(),
        modules.len(),
        failures[0].error
    );
    samples
}

/// Fault-tolerant [`block_samples`]: modules whose compile fails
/// permanently are dropped from the sample set and reported in the
/// failure list. Returns `(samples, failures, tasks attempted)`.
pub fn try_block_samples(
    modules: &[Module],
) -> (Vec<BlockSample>, Vec<crate::engine::TaskFailure>, usize) {
    let engine = crate::engine::Engine::new();
    let out = crate::engine::try_par_map("predict-samples", modules, |_, m| {
        let nic = engine.compile_cached(m);
        let mut out = Vec::new();
        for (f, nf) in m.funcs.iter().zip(nic.funcs.iter()) {
            for (b, nb) in f.blocks.iter().zip(nf.blocks.iter()) {
                out.push(BlockSample {
                    tokens: abstraction::abstract_block(b),
                    compute: f64::from(nb.compute_count()),
                    mem: f64::from(nb.mem_count()),
                });
            }
        }
        out
    });
    let total = out.total();
    let samples = out.results.into_iter().flatten().flatten().collect();
    (samples, out.failures, total)
}

/// The model family used for prediction (Figure 8's contenders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Clara's LSTM + FC model.
    ClaraLstm,
    /// Fully-connected network over the bag-of-tokens histogram.
    Dnn,
    /// 1-D CNN over the token sequence.
    Cnn,
    /// AutoML pipeline search (random-forest & friends) over the
    /// bag-of-tokens histogram (the TPOT baseline).
    AutoMl,
}

impl PredictorKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::ClaraLstm => "Clara (LSTM+FC)",
            PredictorKind::Dnn => "DNN",
            PredictorKind::Cnn => "CNN",
            PredictorKind::AutoMl => "AutoML",
        }
    }
}

#[derive(Serialize, Deserialize)]
enum Model {
    Lstm(LstmRegressor),
    Dnn(Mlp),
    Cnn(Cnn1d),
    AutoMl(tinyml::automl::AutoMlRegressor),
}

/// Quantized (Q16.16) companion of a [`Model`]. Only the model families
/// with a fixed-point twin in `tinyml` get one; CNN and AutoML fall back
/// to the f64 reference at any requested precision.
#[derive(Serialize, Deserialize)]
enum QuantModel {
    Lstm(QuantLstm),
    Dnn(QuantMlp),
}

impl QuantModel {
    /// Builds the companion deterministically from trained f64 weights.
    fn build(model: &Model) -> Option<QuantModel> {
        match model {
            Model::Lstm(m) => Some(QuantModel::Lstm(QuantLstm::quantize(m))),
            Model::Dnn(m) => Some(QuantModel::Dnn(QuantMlp::quantize(m))),
            Model::Cnn(_) | Model::AutoMl(_) => None,
        }
    }
}

/// A trained cross-platform instruction predictor.
///
/// The optional `quant` companion carries the Q16.16 twin of the model;
/// it is absent in version-1 model files (and rebuilt on load) and for
/// model families without a quantized path.
#[derive(Serialize, Deserialize)]
pub struct InstructionPredictor {
    vocab: Vocabulary,
    kind: PredictorKind,
    model: Model,
    quant: Option<QuantModel>,
}

/// Knobs for predictor training.
#[derive(Debug, Clone, Copy)]
pub struct PredictTrainConfig {
    /// Training epochs for the neural models.
    pub epochs: usize,
    /// Hidden width of the LSTM.
    pub hidden: usize,
    /// AutoML search budget (pipelines tried).
    pub automl_budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Disable vocabulary compaction's operand abstraction (ablation):
    /// every token becomes out-of-vocabulary noise instead.
    pub ablate_vocab: bool,
}

impl Default for PredictTrainConfig {
    fn default() -> PredictTrainConfig {
        PredictTrainConfig {
            epochs: 35,
            hidden: 28,
            automl_budget: 8,
            seed: 11,
            ablate_vocab: false,
        }
    }
}

fn bag_of_tokens(vocab: &Vocabulary, tokens: &[nf_ir::AbstractToken]) -> Vec<f64> {
    let mut v = vec![0.0; vocab.len()];
    for t in tokens {
        v[vocab.encode_token(t)] += 1.0;
    }
    v
}

impl InstructionPredictor {
    /// Trains a predictor of the given kind on block samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(
        kind: PredictorKind,
        samples: &[BlockSample],
        cfg: &PredictTrainConfig,
    ) -> InstructionPredictor {
        assert!(!samples.is_empty(), "no training samples");
        let token_seqs: Vec<&[nf_ir::AbstractToken]> = if cfg.ablate_vocab {
            Vec::new() // Empty vocabulary: everything maps to <unk>.
        } else {
            samples.iter().map(|s| s.tokens.as_slice()).collect()
        };
        let vocab = Vocabulary::build(token_seqs);
        let seqs: Vec<Vec<usize>> = samples.iter().map(|s| vocab.encode(&s.tokens)).collect();
        let targets: Vec<Vec<f64>> = samples.iter().map(|s| vec![s.compute]).collect();
        let scalar_targets: Vec<f64> = samples.iter().map(|s| s.compute).collect();

        let model = match kind {
            PredictorKind::ClaraLstm => {
                let mut m = LstmRegressor::new(LstmConfig {
                    vocab: vocab.len().max(2),
                    hidden: cfg.hidden,
                    fc_hidden: cfg.hidden.max(8),
                    outputs: 1,
                    lr: 0.015,
                    epochs: cfg.epochs,
                    clip: 5.0,
                    seed: cfg.seed,
                });
                m.fit(&seqs, &targets);
                Model::Lstm(m)
            }
            PredictorKind::Dnn => {
                let x: Vec<Vec<f64>> = samples
                    .iter()
                    .map(|s| bag_of_tokens(&vocab, &s.tokens))
                    .collect();
                let mut m = Mlp::new(MlpConfig {
                    inputs: vocab.len(),
                    hidden: vec![48, 24],
                    outputs: 1,
                    loss: Loss::Mse,
                    lr: 0.01,
                    epochs: cfg.epochs * 2,
                    seed: cfg.seed,
                });
                m.fit(&x, &scalar_targets);
                Model::Dnn(m)
            }
            PredictorKind::Cnn => {
                let mut m = Cnn1d::new(CnnConfig {
                    vocab: vocab.len().max(2),
                    embed: 14,
                    filters: 20,
                    width: 3,
                    outputs: 1,
                    lr: 0.015,
                    epochs: cfg.epochs,
                    seed: cfg.seed,
                });
                m.fit(&seqs, &targets);
                Model::Cnn(m)
            }
            PredictorKind::AutoMl => {
                let x: Vec<Vec<f64>> = samples
                    .iter()
                    .map(|s| bag_of_tokens(&vocab, &s.tokens))
                    .collect();
                let data = tinyml::Dataset::new(x, scalar_targets);
                Model::AutoMl(tinyml::automl::AutoMlRegressor::search(
                    &data,
                    cfg.automl_budget,
                    cfg.seed,
                ))
            }
        };
        let quant = QuantModel::build(&model);
        InstructionPredictor {
            vocab,
            kind,
            model,
            quant,
        }
    }

    /// The model family this predictor uses.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// True when this predictor carries a Q16.16 companion (always, after
    /// training or [`InstructionPredictor::ensure_quantized`], for the
    /// LSTM and DNN families).
    pub fn has_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Rebuilds the quantized companion from the f64 weights if it is
    /// missing — used after loading a version-1 model file. Deterministic:
    /// quantization is a pure function of the weights.
    pub fn ensure_quantized(&mut self) {
        if self.quant.is_none() {
            self.quant = QuantModel::build(&self.model);
        }
    }

    /// True when the model consumes token sequences (LSTM/CNN) rather
    /// than bag-of-tokens feature vectors (DNN/AutoML).
    fn uses_sequences(&self) -> bool {
        matches!(self.model, Model::Lstm(_) | Model::Cnn(_))
    }

    /// The single typed dispatch point: every prediction, at every
    /// precision, goes through the [`Regressor`] this returns. `Q16`
    /// falls back to the f64 reference when no companion exists.
    fn regressor(&self, precision: Precision) -> &dyn Regressor {
        if matches!(precision, Precision::Q16) {
            match &self.quant {
                Some(QuantModel::Lstm(m)) => return m,
                Some(QuantModel::Dnn(m)) => return m,
                None => {}
            }
        }
        match &self.model {
            Model::Lstm(m) => m,
            Model::Cnn(m) => m,
            Model::Dnn(m) => m,
            Model::AutoMl(m) => m,
        }
    }

    /// Predicts the NIC compute-instruction count of one block.
    pub fn predict_block(&self, tokens: &[nf_ir::AbstractToken]) -> f64 {
        self.predict_block_prec(tokens, Precision::F64)
    }

    /// [`InstructionPredictor::predict_block`] at an explicit precision.
    pub fn predict_block_prec(&self, tokens: &[nf_ir::AbstractToken], precision: Precision) -> f64 {
        let reg = self.regressor(precision);
        let pred = if self.uses_sequences() {
            reg.predict(RegressorInput::Tokens(&self.vocab.encode(tokens)))
        } else {
            reg.predict(RegressorInput::Features(&bag_of_tokens(&self.vocab, tokens)))
        };
        pred.max(0.0)
    }

    /// Per-block WMAPE against the vendor compiler's ground truth on a
    /// module the predictor has never seen.
    pub fn wmape_module(&self, module: &Module) -> f64 {
        let samples = block_samples(std::slice::from_ref(module));
        let truth: Vec<f64> = samples.iter().map(|s| s.compute).collect();
        let preds: Vec<f64> = samples
            .iter()
            .map(|s| self.predict_block(&s.tokens))
            .collect();
        metrics::wmape(&truth, &preds)
    }

    /// Predicted total compute instructions for a module's handler.
    pub fn predict_module_compute(&self, module: &Module) -> f64 {
        self.predict_module_compute_prec(module, Precision::F64)
    }

    /// [`InstructionPredictor::predict_module_compute`] at an explicit
    /// precision. Blocks are evaluated through the regressor's batch
    /// entry point, so the quantized LSTM takes its structure-of-arrays
    /// path here; at `F64` the default per-item loop keeps results
    /// bit-identical to summing [`InstructionPredictor::predict_block`].
    pub fn predict_module_compute_prec(&self, module: &Module, precision: Precision) -> f64 {
        let prepared = crate::prepare::prepare_module(module);
        let reg = self.regressor(precision);
        let preds = if self.uses_sequences() {
            let encoded: Vec<Vec<usize>> = prepared
                .blocks
                .iter()
                .map(|b| self.vocab.encode(&b.tokens))
                .collect();
            let inputs: Vec<RegressorInput<'_>> =
                encoded.iter().map(|s| RegressorInput::Tokens(s)).collect();
            reg.predict_batch(&inputs)
        } else {
            let feats: Vec<Vec<f64>> = prepared
                .blocks
                .iter()
                .map(|b| bag_of_tokens(&self.vocab, &b.tokens))
                .collect();
            let inputs: Vec<RegressorInput<'_>> =
                feats.iter().map(|f| RegressorInput::Features(f)).collect();
            reg.predict_batch(&inputs)
        };
        preds.iter().map(|p| p.max(0.0)).sum()
    }
}

/// Memory-access counting accuracy: IR stateful+packet loads/stores vs
/// the memory instructions `nfcc` actually emitted, per block
/// (1 − WMAPE, as a percentage).
pub fn memory_count_accuracy(module: &Module) -> f64 {
    let nic = crate::engine::Engine::new().compile_cached(module);
    let mut truth = Vec::new();
    let mut counted = Vec::new();
    for (f, nf) in module.funcs.iter().zip(nic.funcs.iter()) {
        for (b, nb) in f.blocks.iter().zip(nf.blocks.iter()) {
            truth.push(f64::from(nb.mem_cmd_count()));
            let ir_mem = b
                .insts
                .iter()
                .filter(|i| {
                    matches!(
                        i.class(),
                        nf_ir::InstClass::StatefulMem | nf_ir::InstClass::PacketMem
                    )
                })
                .count();
            counted.push(ir_mem as f64);
        }
    }
    (1.0 - metrics::wmape(&truth, &counted)) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_modules(n: usize, seed: u64) -> Vec<Module> {
        nf_synth::synth_corpus(n, true, seed)
    }

    #[test]
    fn memory_counting_is_nearly_exact() {
        for e in click_model::corpus() {
            let acc = memory_count_accuracy(&e.module);
            assert!(acc >= 95.0, "{}: {acc:.1}%", e.name());
        }
    }

    #[test]
    fn lstm_beats_mean_predictor_on_held_out_blocks() {
        let train = training_modules(60, 1);
        let test = training_modules(15, 2);
        let train_s = block_samples(&train);
        let test_s = block_samples(&test);
        let cfg = PredictTrainConfig {
            epochs: 25,
            ..Default::default()
        };
        let model = InstructionPredictor::train(PredictorKind::ClaraLstm, &train_s, &cfg);
        let truth: Vec<f64> = test_s.iter().map(|s| s.compute).collect();
        let preds: Vec<f64> = test_s
            .iter()
            .map(|s| model.predict_block(&s.tokens))
            .collect();
        let err = metrics::wmape(&truth, &preds);
        let mean = train_s.iter().map(|s| s.compute).sum::<f64>() / train_s.len() as f64;
        let base = metrics::wmape(&truth, &vec![mean; truth.len()]);
        assert!(err < 0.6 * base, "lstm {err:.3} vs mean {base:.3}");
        assert!(err < 0.30, "lstm wmape {err:.3}");
    }

    #[test]
    fn ablating_vocabulary_hurts() {
        let train = training_modules(40, 3);
        let test = training_modules(10, 4);
        let train_s = block_samples(&train);
        let test_s = block_samples(&test);
        let mut cfg = PredictTrainConfig {
            epochs: 15,
            ..Default::default()
        };
        let good = InstructionPredictor::train(PredictorKind::ClaraLstm, &train_s, &cfg);
        cfg.ablate_vocab = true;
        let bad = InstructionPredictor::train(PredictorKind::ClaraLstm, &train_s, &cfg);
        let truth: Vec<f64> = test_s.iter().map(|s| s.compute).collect();
        let wm = |m: &InstructionPredictor| {
            metrics::wmape(
                &truth,
                &test_s
                    .iter()
                    .map(|s| m.predict_block(&s.tokens))
                    .collect::<Vec<_>>(),
            )
        };
        assert!(
            wm(&good) < wm(&bad),
            "vocab {} vs ablated {}",
            wm(&good),
            wm(&bad)
        );
    }

    #[test]
    fn all_baselines_train_and_predict() {
        let train = training_modules(25, 5);
        let train_s = block_samples(&train);
        let cfg = PredictTrainConfig {
            epochs: 6,
            automl_budget: 4,
            ..Default::default()
        };
        for kind in [
            PredictorKind::Dnn,
            PredictorKind::Cnn,
            PredictorKind::AutoMl,
        ] {
            let m = InstructionPredictor::train(kind, &train_s, &cfg);
            let p = m.predict_block(&train_s[0].tokens);
            assert!(p.is_finite() && p >= 0.0, "{}: {p}", kind.name());
            let q = m.predict_block_prec(&train_s[0].tokens, Precision::Q16);
            match kind {
                // DNN has a fixed-point twin; it must track the reference.
                PredictorKind::Dnn => {
                    assert!(m.has_quantized());
                    assert!((q - p).abs() <= 0.5f64.max(0.02 * p), "{}: {q} vs {p}", kind.name());
                }
                // CNN/AutoML have none; Q16 falls back bit-exactly.
                _ => {
                    assert!(!m.has_quantized());
                    assert_eq!(q.to_bits(), p.to_bits(), "{}", kind.name());
                }
            }
        }
    }

    #[test]
    fn predicts_whole_module_totals() {
        let train = training_modules(40, 6);
        let train_s = block_samples(&train);
        let cfg = PredictTrainConfig {
            epochs: 20,
            ..Default::default()
        };
        let model = InstructionPredictor::train(PredictorKind::ClaraLstm, &train_s, &cfg);
        let e = click_model::elements::aggcounter();
        let predicted = model.predict_module_compute(&e.module);
        let truth = f64::from(nfcc::compile_module(&e.module).handler().total_compute());
        assert!(predicted > 0.0);
        let rel = (predicted - truth).abs() / truth;
        assert!(
            rel < 0.6,
            "module-level error {rel:.2} (pred {predicted:.0} vs {truth:.0})"
        );
    }
}
