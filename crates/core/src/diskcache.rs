//! Persistent content-addressed artifact cache (`CLARA_CACHE_DIR`).
//!
//! Compiled [`nfcc::NicModule`]s and [`nic_sim::WorkloadProfile`]s are
//! expensive and pure functions of fingerprinted inputs, so the engine
//! persists them across processes. Layered *under* the in-process memo
//! caches: an in-memory miss consults the disk before recomputing, and a
//! recomputation stores its result for the next process.
//!
//! # File format
//!
//! One artifact per file, named `<kind>-<key:016x>.clc`, containing a
//! single header line followed by a JSON body:
//!
//! ```text
//! claracache v1 <kind> <key:016x> <checksum:016x>\n
//! {"enabled":...,"counters":[...],"span":...,"value":...}
//! ```
//!
//! - `v1` is the format version; any other version is treated as corrupt
//!   and recomputed (never mis-parsed).
//! - `<checksum>` is [`nic_sim::fingerprint_bytes`] over the exact body
//!   bytes; a mismatch (truncation, bit rot, concurrent torn write)
//!   falls back to recomputation.
//! - the body carries the artifact (`value`) plus the deterministic
//!   telemetry the computation produced ([`obs::CapturedTelemetry`]):
//!   replaying it on a warm hit keeps the deterministic run report
//!   byte-identical to a cold run's.
//!
//! Writes go to a `.tmp.<pid>` sibling first and are published with an
//! atomic rename, so readers never observe a partially written artifact.
//! All failures are silent at the engine level (a cache must never fail
//! the pipeline); they are visible in the volatile
//! `engine.disk_cache.*` counters and to explicit integrity checks
//! ([`crate::engine::Engine::verify_disk_cache`]).

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use clara_obs as obs;
use serde::{Deserialize, Serialize, Value};

use crate::error::ClaraError;

/// On-disk format version accepted and written by this build.
const VERSION: &str = "v1";
/// Artifact file extension.
const EXT: &str = "clc";

fn vctr(cell: &'static OnceLock<obs::Counter>, name: &'static str) -> &'static obs::Counter {
    cell.get_or_init(|| obs::volatile_counter(name))
}

static HITS: OnceLock<obs::Counter> = OnceLock::new();
static CORRUPT: OnceLock<obs::Counter> = OnceLock::new();
static STALE: OnceLock<obs::Counter> = OnceLock::new();
static STORES: OnceLock<obs::Counter> = OnceLock::new();
static STORE_ERRORS: OnceLock<obs::Counter> = OnceLock::new();
static RECOMPUTES: OnceLock<obs::Counter> = OnceLock::new();

/// Disk-level counters are *volatile*: they depend on what previous
/// processes left on disk, not on the work this run performs, so they
/// must stay out of the deterministic report rendering (which pins
/// byte-identity between cold and warm runs).
pub(crate) fn hits() -> &'static obs::Counter {
    vctr(&HITS, "engine.disk_cache.hits")
}
pub(crate) fn corrupt() -> &'static obs::Counter {
    vctr(&CORRUPT, "engine.disk_cache.corrupt")
}
pub(crate) fn stale() -> &'static obs::Counter {
    vctr(&STALE, "engine.disk_cache.stale")
}
pub(crate) fn stores() -> &'static obs::Counter {
    vctr(&STORES, "engine.disk_cache.stores")
}
pub(crate) fn store_errors() -> &'static obs::Counter {
    vctr(&STORE_ERRORS, "engine.disk_cache.store_errors")
}
pub(crate) fn recomputes() -> &'static obs::Counter {
    vctr(&RECOMPUTES, "engine.disk_cache.recomputes")
}

/// Handle on one cache directory.
#[derive(Debug, Clone)]
pub(crate) struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    pub(crate) fn new(dir: PathBuf) -> DiskCache {
        // Register every disk counter up front so cache-enabled runs
        // always report the full set — a warm run shows
        // `engine.disk_cache.recomputes` as 0 rather than omitting it.
        hits();
        corrupt();
        stale();
        stores();
        store_errors();
        recomputes();
        DiskCache { dir }
    }

    fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.{EXT}"))
    }

    /// Loads and verifies an artifact. `None` means "recompute": the
    /// file is absent, fails verification (counted in
    /// `engine.disk_cache.corrupt`), or was captured without span
    /// recording while recording is now enabled (counted in `.stale` —
    /// replaying it could not reproduce the span tree).
    pub(crate) fn load<T: Deserialize>(
        &self,
        kind: &str,
        key: u64,
    ) -> Option<(T, obs::CapturedTelemetry)> {
        let path = self.path(kind, key);
        let raw = std::fs::read_to_string(&path).ok()?;
        match parse_artifact::<T>(&raw, kind, key) {
            Ok((value, tel)) => {
                if obs::enabled() && !tel.enabled {
                    stale().incr();
                    return None;
                }
                hits().incr();
                Some((value, tel))
            }
            Err(_) => {
                corrupt().incr();
                None
            }
        }
    }

    /// Serializes and atomically publishes an artifact. Best-effort:
    /// failures increment `engine.disk_cache.store_errors` and are
    /// otherwise swallowed.
    pub(crate) fn store<T: Serialize>(
        &self,
        kind: &str,
        key: u64,
        value: &T,
        tel: &obs::CapturedTelemetry,
    ) {
        let body = serde_json::to_string(&body_value(value, tel)).unwrap_or_default();
        let checksum = nic_sim::fingerprint_bytes(body.as_bytes());
        let contents = format!("claracache {VERSION} {kind} {key:016x} {checksum:016x}\n{body}");
        let path = self.path(kind, key);
        let tmp = path.with_extension(format!("{EXT}.tmp.{}", std::process::id()));
        let published = std::fs::create_dir_all(&self.dir).is_ok()
            && std::fs::write(&tmp, contents).is_ok()
            && std::fs::rename(&tmp, &path).is_ok();
        if published {
            stores().incr();
        } else {
            std::fs::remove_file(&tmp).ok();
            store_errors().incr();
        }
    }

    /// Checks every artifact in the directory against its header and
    /// checksum without deserializing the payloads.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Io`] when the directory exists but cannot
    /// be read; a missing directory is an empty (valid) cache.
    pub(crate) fn verify(&self) -> Result<CacheVerifySummary, ClaraError> {
        let mut summary = CacheVerifySummary::default();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(source) if source.kind() == std::io::ErrorKind::NotFound => {
                return Ok(summary);
            }
            Err(source) => {
                return Err(ClaraError::Io {
                    path: self.dir.clone(),
                    source,
                })
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(EXT))
            .collect();
        paths.sort();
        for path in paths {
            summary.scanned += 1;
            match check_file(&path) {
                Ok(()) => summary.valid += 1,
                Err(detail) => summary.corrupt.push((path, detail)),
            }
        }
        Ok(summary)
    }
}

/// What [`crate::engine::Engine::verify_disk_cache`] found.
#[derive(Debug, Clone, Default)]
pub struct CacheVerifySummary {
    /// Artifact files examined.
    pub scanned: usize,
    /// Files whose header and checksum verified.
    pub valid: usize,
    /// Files that failed, with a human-readable reason each.
    pub corrupt: Vec<(PathBuf, String)>,
}

impl CacheVerifySummary {
    /// The first corruption as a [`ClaraError::CacheCorrupt`], if any.
    pub fn into_error(mut self) -> Option<ClaraError> {
        if self.corrupt.is_empty() {
            return None;
        }
        let (path, detail) = self.corrupt.remove(0);
        Some(ClaraError::CacheCorrupt { path, detail })
    }
}

/// Splits an artifact into its verified header fields and body, or a
/// reason it cannot be trusted.
fn split_verified(raw: &str) -> Result<(&str, u64, &str), String> {
    let (header, body) = raw
        .split_once('\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 5 || fields[0] != "claracache" {
        return Err("not a claracache artifact".to_string());
    }
    if fields[1] != VERSION {
        return Err(format!(
            "unsupported format version `{}` (this build reads {VERSION})",
            fields[1]
        ));
    }
    let key = u64::from_str_radix(fields[3], 16).map_err(|_| "unparseable key".to_string())?;
    let checksum =
        u64::from_str_radix(fields[4], 16).map_err(|_| "unparseable checksum".to_string())?;
    let actual = nic_sim::fingerprint_bytes(body.as_bytes());
    if actual != checksum {
        return Err(format!(
            "checksum mismatch (header {checksum:016x}, body {actual:016x})"
        ));
    }
    Ok((fields[2], key, body))
}

fn parse_artifact<T: Deserialize>(
    raw: &str,
    want_kind: &str,
    want_key: u64,
) -> Result<(T, obs::CapturedTelemetry), String> {
    let (kind, key, body) = split_verified(raw)?;
    if kind != want_kind || key != want_key {
        return Err(format!(
            "artifact is {kind}-{key:016x}, expected {want_kind}-{want_key:016x}"
        ));
    }
    let v = serde_json::parse_value(body).map_err(|e| e.to_string())?;
    let value = T::from_value(v.get("value").ok_or("missing `value`")?).map_err(|e| e.to_string())?;
    let tel = telemetry_from_value(&v)?;
    Ok((value, tel))
}

fn check_file(path: &Path) -> Result<(), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let (_, _, body) = split_verified(&raw)?;
    serde_json::parse_value(body).map_err(|e| e.to_string())?;
    Ok(())
}

// ---- telemetry <-> Value -----------------------------------------------
//
// `clara-obs` is dependency-free by design, so its captured-telemetry
// types get hand-written conversions here instead of serde derives.

fn span_to_value(s: &obs::CapturedSpan) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(s.name.clone())),
        ("detail".to_string(), Value::Str(s.detail.clone())),
        (
            "children".to_string(),
            Value::Seq(s.children.iter().map(span_to_value).collect()),
        ),
    ])
}

fn span_from_value(v: &Value) -> Result<obs::CapturedSpan, String> {
    let name: String = serde::from_field(v, "name").map_err(|e| e.to_string())?;
    let detail: String = serde::from_field(v, "detail").map_err(|e| e.to_string())?;
    let children = match v.get("children") {
        Some(Value::Seq(items)) => items
            .iter()
            .map(span_from_value)
            .collect::<Result<Vec<_>, _>>()?,
        Some(other) => return Err(format!("span children: expected sequence, got {}", other.kind())),
        None => return Err("span missing `children`".to_string()),
    };
    Ok(obs::CapturedSpan {
        name,
        detail,
        children,
    })
}

fn body_value<T: Serialize>(value: &T, tel: &obs::CapturedTelemetry) -> Value {
    Value::Map(vec![
        ("enabled".to_string(), Value::Bool(tel.enabled)),
        (
            "counters".to_string(),
            Value::Seq(
                tel.counters
                    .iter()
                    .map(|(name, delta)| {
                        Value::Seq(vec![Value::Str(name.clone()), Value::UInt(*delta)])
                    })
                    .collect(),
            ),
        ),
        (
            "span".to_string(),
            tel.span.as_ref().map_or(Value::Null, span_to_value),
        ),
        ("value".to_string(), value.to_value()),
    ])
}

fn telemetry_from_value(v: &Value) -> Result<obs::CapturedTelemetry, String> {
    let enabled: bool = serde::from_field(v, "enabled").map_err(|e| e.to_string())?;
    let counters: Vec<(String, u64)> =
        serde::from_field(v, "counters").map_err(|e| e.to_string())?;
    let span = match v.get("span") {
        Some(Value::Null) | None => None,
        Some(s) => Some(span_from_value(s)?),
    };
    Ok(obs::CapturedTelemetry {
        counters,
        span,
        enabled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("clara-diskcache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample_tel() -> obs::CapturedTelemetry {
        obs::CapturedTelemetry {
            counters: vec![("nfcc.modules_compiled".to_string(), 1)],
            span: Some(obs::CapturedSpan {
                name: "nfcc-compile".to_string(),
                detail: "m".to_string(),
                children: vec![obs::CapturedSpan {
                    name: "regalloc".to_string(),
                    detail: String::new(),
                    children: Vec::new(),
                }],
            }),
            enabled: true,
        }
    }

    #[test]
    fn store_then_load_round_trips_value_and_telemetry() {
        let dc = DiskCache::new(tmp_dir("roundtrip"));
        let value: Vec<u64> = vec![3, 1, 4, 1, 5];
        dc.store("compile", 0xabcd, &value, &sample_tel());
        let (back, tel) = dc
            .load::<Vec<u64>>("compile", 0xabcd)
            .expect("stored artifact loads");
        assert_eq!(back, value);
        assert_eq!(tel, sample_tel());
        // Absent key: plain miss, not corruption.
        let corrupt_before = corrupt().value();
        assert!(dc.load::<Vec<u64>>("compile", 0xffff).is_none());
        assert_eq!(corrupt().value(), corrupt_before);
        std::fs::remove_dir_all(&dc.dir).ok();
    }

    #[test]
    fn truncated_checksum_and_version_failures_recompute() {
        let dc = DiskCache::new(tmp_dir("corrupt"));
        let value = 99u64;
        dc.store("profile", 7, &value, &obs::CapturedTelemetry::default());
        let path = dc.path("profile", 7);
        let original = std::fs::read_to_string(&path).unwrap();

        // Truncated body.
        std::fs::write(&path, &original[..original.len() - 4]).unwrap();
        let before = corrupt().value();
        assert!(dc.load::<u64>("profile", 7).is_none());
        assert_eq!(corrupt().value(), before + 1);

        // Flipped body byte (checksum mismatch); the header keeps its
        // original checksum.
        let (header, body) = original.split_once('\n').unwrap();
        std::fs::write(&path, format!("{header}\n{}", body.replace("99", "98"))).unwrap();
        assert!(dc.load::<u64>("profile", 7).is_none());
        assert_eq!(corrupt().value(), before + 2);

        // Version mismatch.
        std::fs::write(&path, original.replace("claracache v1", "claracache v0")).unwrap();
        assert!(dc.load::<u64>("profile", 7).is_none());
        assert_eq!(corrupt().value(), before + 3);

        // verify() sees the same corruption and names the file.
        let summary = dc.verify().expect("directory readable");
        assert_eq!(summary.scanned, 1);
        assert_eq!(summary.valid, 0);
        assert_eq!(summary.corrupt.len(), 1);
        let err = summary.into_error().expect("corrupt entry becomes error");
        assert!(matches!(err, ClaraError::CacheCorrupt { .. }));

        // Restoring the original bytes restores the artifact.
        std::fs::write(&path, &original).unwrap();
        assert_eq!(dc.load::<u64>("profile", 7).map(|(v, _)| v), Some(99));
        std::fs::remove_dir_all(&dc.dir).ok();
    }

    #[test]
    fn verify_of_missing_directory_is_empty() {
        let dc = DiskCache::new(tmp_dir("absent"));
        let summary = dc.verify().expect("missing dir is an empty cache");
        assert_eq!((summary.scanned, summary.valid), (0, 0));
        assert!(summary.corrupt.is_empty());
    }
}
