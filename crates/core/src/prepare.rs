//! Program preparation (paper Figure 3 / Section 3.1).
//!
//! Clara first transforms the input NF into a uniform IR, extracts its
//! control-flow graph, and annotates each instruction as compute, memory
//! (stateless vs stateful), or framework API — the classification of
//! Figure 5. In this reproduction the NF is *already* NIR (the `click`
//! crate's frontends produced it), so preparation is the analysis half.

use nf_ir::{abstraction, ApiCall, BlockId, Cfg, Inst, InstClass, Module};

/// One analyzed basic block.
#[derive(Debug, Clone)]
pub struct PreparedBlock {
    /// Block id in the handler.
    pub id: BlockId,
    /// Abstract token sequence (vocabulary-compacted instructions).
    pub tokens: Vec<nf_ir::AbstractToken>,
    /// Compute instructions in the block.
    pub compute: u32,
    /// Stateless (stack) memory instructions.
    pub stack_mem: u32,
    /// Stateful (global) memory instructions.
    pub stateful_mem: u32,
    /// Packet-data memory instructions.
    pub packet_mem: u32,
    /// Framework API calls in this block.
    pub api_calls: Vec<ApiCall>,
    /// Whether the block belongs to a loop body.
    pub in_loop: bool,
}

/// The prepared form of an NF module.
#[derive(Debug, Clone)]
pub struct PreparedModule {
    /// Source module name.
    pub name: String,
    /// Per-block analyses (handler function).
    pub blocks: Vec<PreparedBlock>,
    /// The handler's CFG.
    pub cfg: Cfg,
    /// The full set of framework APIs used (for reverse porting).
    pub api_set: Vec<ApiCall>,
}

/// Prepares a module: CFG extraction, per-block annotation, API set.
///
/// # Panics
///
/// Panics if the module has no functions.
pub fn prepare_module(module: &Module) -> PreparedModule {
    let func = module.handler().expect("module has a handler");
    let cfg = Cfg::build(func);
    let loop_blocks: std::collections::HashSet<BlockId> = cfg.loop_blocks().into_iter().collect();

    let mut api_set: Vec<ApiCall> = Vec::new();
    let blocks = func
        .blocks
        .iter()
        .map(|b| {
            let mut pb = PreparedBlock {
                id: b.id,
                tokens: abstraction::abstract_block(b),
                compute: 0,
                stack_mem: 0,
                stateful_mem: 0,
                packet_mem: 0,
                api_calls: Vec::new(),
                in_loop: loop_blocks.contains(&b.id),
            };
            for inst in &b.insts {
                match inst.class() {
                    InstClass::Compute => pb.compute += 1,
                    InstClass::StackMem => pb.stack_mem += 1,
                    InstClass::StatefulMem => pb.stateful_mem += 1,
                    InstClass::PacketMem => pb.packet_mem += 1,
                    InstClass::Api => {
                        if let Inst::Call { api, .. } = inst {
                            pb.api_calls.push(api.clone());
                            if !api_set.contains(api) {
                                api_set.push(api.clone());
                            }
                        }
                    }
                }
            }
            pb
        })
        .collect();

    PreparedModule {
        name: module.name.clone(),
        blocks,
        cfg,
        api_set,
    }
}

/// Prepares a whole corpus on the engine's worker pool, in corpus order.
pub fn prepare_corpus(modules: &[Module]) -> Vec<PreparedModule> {
    crate::engine::par_map("prepare", modules, |_, m| prepare_module(m))
}

impl PreparedModule {
    /// Total IR memory instructions that become NIC memory commands
    /// (stateful + packet accesses) — the count Clara reports directly
    /// (Section 3.2: "simply counting the number of memory instructions
    /// already leads to an accuracy of 96.4%–100%").
    pub fn counted_mem(&self) -> u32 {
        self.blocks
            .iter()
            .map(|b| b.stateful_mem + b.packet_mem)
            .sum()
    }

    /// Blocks that belong to loops (accelerator-candidate regions).
    pub fn loop_block_ids(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| b.in_loop)
            .map(|b| b.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use click_model::elements;

    #[test]
    fn prepares_every_corpus_element() {
        for e in click_model::corpus() {
            let p = prepare_module(&e.module);
            assert_eq!(p.blocks.len(), e.module.handler().unwrap().blocks.len());
            assert!(!p.api_set.is_empty(), "{} uses no APIs?", e.name());
            // Tokens include the terminator.
            for b in &p.blocks {
                assert!(!b.tokens.is_empty());
            }
        }
    }

    #[test]
    fn loop_blocks_flagged_for_cmsketch() {
        let e = elements::cmsketch();
        let p = prepare_module(&e.module);
        assert!(
            p.loop_block_ids().len() >= 4,
            "cmsketch has two CRC loops: {:?}",
            p.loop_block_ids()
        );
    }

    #[test]
    fn api_set_deduplicates() {
        let e = elements::mazunat();
        let p = prepare_module(&e.module);
        // No duplicate ApiCall values (same API on different globals is
        // legitimately distinct — MazuNAT finds in two maps).
        for (i, a) in p.api_set.iter().enumerate() {
            assert!(
                !p.api_set[i + 1..].contains(a),
                "duplicate {a:?} in api_set"
            );
        }
    }

    #[test]
    fn counted_mem_matches_module_stats() {
        let e = elements::aggcounter();
        let p = prepare_module(&e.module);
        let stats = nf_ir::ModuleStats::of_module(&e.module);
        assert_eq!(
            p.counted_mem() as usize,
            stats.stateful_mem + stats.packet_mem
        );
    }
}
