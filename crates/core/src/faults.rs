//! Deterministic, seeded fault injection for the engine.
//!
//! A [`FaultPlan`] makes chosen engine tasks panic, error, or stall — the
//! test substrate for the engine's panic isolation, retry, and deadline
//! machinery. Injection decisions are a pure hash of
//! `(seed, stage, task index, attempt)`, so the *same* tasks fault on
//! every run regardless of worker count or scheduling: a faulted run
//! whose failures stay within the retry budget produces bit-identical
//! results to a fault-free run, which `tests/engine_determinism.rs` pins.
//!
//! Plans come from [`crate::engine::EngineOptions`] or the
//! `CLARA_FAULTS=<seed>:<rate>[:<depth>]` environment override (parsed in
//! `crates/core/src/engine.rs`, the workspace's single env-read site).

use std::sync::Once;

/// What an injected fault does to the selected task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt panics (exercises `catch_unwind` isolation).
    Panic,
    /// The attempt fails with a typed error before running.
    Error,
    /// The attempt sleeps [`FaultPlan::stall_ms`] first, then runs
    /// normally (exercises stage deadlines; harmless without one).
    Stall,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Stall => write!(f, "stall"),
        }
    }
}

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Fraction of `(stage, index)` tasks selected to fault, in `[0, 1]`.
    pub rate: f64,
    /// How many consecutive attempts of a selected task fault before it
    /// is allowed to succeed. A depth within the engine's retry budget
    /// degrades nothing; a depth beyond it makes the task fail
    /// permanently.
    pub depth: u32,
    /// Sleep for [`FaultKind::Stall`] injections, in milliseconds.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// A plan faulting roughly `rate` of all tasks once each.
    pub fn new(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            depth: 1,
            stall_ms: 2,
        }
    }

    /// Parses the `CLARA_FAULTS` format: `<seed>:<rate>[:<depth>]`
    /// (e.g. `7:0.3` or `7:1.0:9`). Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let mut parts = s.trim().split(':');
        let seed = parts.next()?.trim().parse::<u64>().ok()?;
        let rate = parts.next()?.trim().parse::<f64>().ok()?;
        if !rate.is_finite() {
            return None;
        }
        let depth = match parts.next() {
            Some(d) => d.trim().parse::<u32>().ok()?,
            None => 1,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(FaultPlan {
            depth,
            ..FaultPlan::new(seed, rate)
        })
    }

    /// Decides whether attempt `attempt` of task `(stage, index)` faults,
    /// and how. Pure: the same arguments always return the same answer.
    pub fn decide(&self, stage: &str, index: usize, attempt: u32) -> Option<FaultKind> {
        let mut buf = Vec::with_capacity(stage.len() + 16);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(stage.as_bytes());
        buf.extend_from_slice(&(index as u64).to_le_bytes());
        let h = nic_sim::fingerprint_bytes(&buf);
        let threshold = (self.rate.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        if h % 1_000_000 >= threshold || attempt >= self.depth {
            return None;
        }
        Some(match (h >> 32) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Error,
            _ => FaultKind::Stall,
        })
    }
}

/// Panic payload used by [`FaultKind::Panic`] injections, so the panic
/// hook can tell injected panics apart from genuine ones.
#[derive(Debug)]
pub struct InjectedPanic;

/// Chains a panic hook that silences [`InjectedPanic`] payloads (they
/// are caught and retried by the engine; printing a backtrace-style
/// message for each would drown real diagnostics) while delegating every
/// other panic to the previous hook. Installed at most once per process.
pub(crate) fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_two_and_three_part_forms() {
        let p = FaultPlan::parse("7:0.25").expect("two-part form");
        assert_eq!((p.seed, p.depth), (7, 1));
        assert!((p.rate - 0.25).abs() < 1e-12);
        let p = FaultPlan::parse(" 9 : 1.0 : 4 ").expect("three-part form");
        assert_eq!((p.seed, p.depth), (9, 4));
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("7").is_none());
        assert!(FaultPlan::parse("7:x").is_none());
        assert!(FaultPlan::parse("7:0.5:1:9").is_none());
        assert!(FaultPlan::parse("7:NaN").is_none());
    }

    #[test]
    fn decide_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan {
            depth: 2,
            ..FaultPlan::new(42, 0.5)
        };
        let mut faulted = 0usize;
        for i in 0..400 {
            let a = plan.decide("stage-x", i, 0);
            let b = plan.decide("stage-x", i, 0);
            assert_eq!(a, b, "decision must be pure");
            if let Some(k) = a {
                faulted += 1;
                // Selected tasks fault for exactly `depth` attempts.
                assert_eq!(plan.decide("stage-x", i, 1), Some(k));
                assert_eq!(plan.decide("stage-x", i, 2), None);
            }
        }
        // ~50% of tasks selected; allow generous slack for a 400-sample
        // draw from a fixed hash.
        assert!((100..300).contains(&faulted), "faulted {faulted}/400");
    }

    #[test]
    fn rate_extremes_select_none_or_all() {
        let none = FaultPlan::new(1, 0.0);
        let all = FaultPlan::new(1, 1.0);
        for i in 0..64 {
            assert_eq!(none.decide("s", i, 0), None);
            assert!(all.decide("s", i, 0).is_some());
        }
    }
}
