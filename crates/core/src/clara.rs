//! The Clara facade: train once, analyze any NF.
//!
//! Facade API conventions:
//!
//! - configuration is built from the [`ClaraConfig::full`]/
//!   [`ClaraConfig::fast`] presets or the fluent
//!   [`ClaraConfig::builder`]; the struct itself is `#[non_exhaustive]`
//!   so fields can be added without breaking downstream builds;
//! - user-input failures surface as [`ClaraError`], never panics;
//! - [`Clara::save`]/[`Clara::load`] write a versioned JSON envelope so
//!   trained pipelines persist across bench runs and reject files from
//!   incompatible builds;
//! - with a `CLARA_REPORT` sink configured, [`Clara::train`] and
//!   [`Clara::analyze`] record a [`clara_obs`] span tree and write a
//!   JSON run report when they finish.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use clara_obs as obs;
use nf_ir::{BlockId, GlobalId, Module};
use nic_sim::{Accel, CoalescePlan, MemLevel, NicConfig, PortConfig, WorkloadProfile};
use serde::{Deserialize, Serialize, Value};
use trafgen::Trace;

use crate::algid::{AlgoClass, AlgoIdentifier, ClassifierKind};
use crate::coalesce;
use crate::engine;
use crate::error::ClaraError;
use crate::placement;
use crate::predict::{
    memory_count_accuracy, InstructionPredictor, PredictTrainConfig, PredictorKind,
};
use crate::prepare::prepare_module;
use crate::scaleout::{ScaleoutKind, ScaleoutModel};
use tinyml::quant::Precision;

/// Format version written by [`Clara::save`]. Version 2 added the
/// quantized (Q16.16) model companions and the default-precision field.
pub const MODEL_FORMAT_VERSION: u64 = 2;

/// Oldest format version [`Clara::load`] still reads. Version-1
/// envelopes carry only f64 weights; their quantized companions are
/// rebuilt deterministically on load.
pub const MIN_MODEL_FORMAT_VERSION: u64 = 1;

/// Training budget for the whole Clara pipeline.
///
/// Construct via the presets ([`ClaraConfig::full`], [`ClaraConfig::fast`])
/// or the fluent builder:
///
/// ```
/// use clara_core::ClaraConfig;
/// let cfg = ClaraConfig::builder().predict_programs(240).seed(7).build();
/// assert_eq!(cfg.predict_programs, 240);
/// assert_eq!(cfg.seed, 7);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClaraConfig {
    /// Synthesized programs for instruction-prediction training.
    pub predict_programs: usize,
    /// Labeled variants per class for algorithm identification.
    pub algid_per_class: usize,
    /// Synthesized programs for scale-out training.
    pub scaleout_programs: usize,
    /// Neural-model training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    /// NIC hardware configuration.
    pub nic: NicConfig,
    /// Engine behaviour: workers, retries, deadlines, fault injection,
    /// persistent cache. Installed process-wide when training starts.
    pub engine: engine::EngineOptions,
    /// Default inference precision for the trained pipeline (callers can
    /// still override per call/request).
    pub precision: Precision,
}

impl ClaraConfig {
    /// Full-quality configuration (benchmarks, release builds).
    pub fn full(seed: u64) -> ClaraConfig {
        ClaraConfig {
            predict_programs: 240,
            algid_per_class: 40,
            scaleout_programs: 60,
            epochs: 35,
            seed,
            nic: NicConfig::default(),
            engine: engine::EngineOptions::default(),
            precision: Precision::F64,
        }
    }

    /// Reduced configuration for tests and examples.
    pub fn fast(seed: u64) -> ClaraConfig {
        ClaraConfig {
            predict_programs: 50,
            algid_per_class: 25,
            scaleout_programs: 16,
            epochs: 15,
            seed,
            nic: NicConfig::default(),
            engine: engine::EngineOptions::default(),
            precision: Precision::F64,
        }
    }

    /// Fluent builder seeded with the [`ClaraConfig::full`] defaults.
    pub fn builder() -> ClaraConfigBuilder {
        ClaraConfigBuilder {
            cfg: ClaraConfig::full(0),
        }
    }

    /// Builder pre-populated from this configuration (tweak a preset).
    pub fn to_builder(&self) -> ClaraConfigBuilder {
        ClaraConfigBuilder { cfg: self.clone() }
    }
}

/// Fluent builder for [`ClaraConfig`] (the only way to assemble a custom
/// configuration now that the struct is `#[non_exhaustive]`).
#[derive(Debug, Clone)]
pub struct ClaraConfigBuilder {
    cfg: ClaraConfig,
}

impl ClaraConfigBuilder {
    /// Sets the instruction-prediction corpus size.
    #[must_use]
    pub fn predict_programs(mut self, n: usize) -> Self {
        self.cfg.predict_programs = n;
        self
    }

    /// Sets the labeled variants per algorithm class.
    #[must_use]
    pub fn algid_per_class(mut self, n: usize) -> Self {
        self.cfg.algid_per_class = n;
        self
    }

    /// Sets the scale-out training corpus size.
    #[must_use]
    pub fn scaleout_programs(mut self, n: usize) -> Self {
        self.cfg.scaleout_programs = n;
        self
    }

    /// Sets the neural-model training epochs.
    #[must_use]
    pub fn epochs(mut self, n: usize) -> Self {
        self.cfg.epochs = n;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets the NIC hardware configuration.
    #[must_use]
    pub fn nic(mut self, nic: NicConfig) -> Self {
        self.cfg.nic = nic;
        self
    }

    /// Sets the engine options (workers, retries, stage deadline, fault
    /// injection, persistent cache directory).
    #[must_use]
    pub fn engine(mut self, opts: engine::EngineOptions) -> Self {
        self.cfg.engine = opts;
        self
    }

    /// Sets the default inference precision (`F64` reference semantics
    /// or the `Q16` fixed-point fast path).
    #[must_use]
    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ClaraConfig {
        self.cfg
    }
}

impl Default for ClaraConfigBuilder {
    fn default() -> Self {
        ClaraConfig::builder()
    }
}

/// A fully trained Clara instance.
#[derive(Serialize, Deserialize)]
pub struct Clara {
    /// Instruction predictor (LSTM+FC).
    pub predictor: InstructionPredictor,
    /// Algorithm identifier (SVM over SPE features).
    pub algid: AlgoIdentifier,
    /// Scale-out core-count model (GBDT).
    pub scaleout: ScaleoutModel,
    /// NIC configuration used for training and analysis.
    pub nic: NicConfig,
    /// Default inference precision (from [`ClaraConfig::precision`] at
    /// train time; `F64` for version-1 model files). Entry points without
    /// an explicit precision use this.
    pub precision: Precision,
}

/// The offloading insights Clara generates for one NF + workload.
#[derive(Debug, Clone)]
pub struct Insights {
    /// Predicted NIC compute instructions per packet-handler invocation.
    pub predicted_compute: f64,
    /// Counted memory accesses (IR loads/stores to state/packet data).
    pub counted_mem: u32,
    /// Memory-counting fidelity vs the vendor compiler (percent).
    pub mem_count_accuracy: f64,
    /// Identified accelerator opportunity and its loop region.
    pub accel: Option<(AlgoClass, Vec<BlockId>)>,
    /// Suggested core count for the profiled workload.
    pub suggested_cores: u32,
    /// Suggested state placement.
    pub placement: BTreeMap<GlobalId, MemLevel>,
    /// Suggested variable packing.
    pub coalesce: CoalescePlan,
    /// The host-side workload profile the suggestions are based on.
    pub profile: WorkloadProfile,
}

/// The lightweight performance-parameter bundle served per request by
/// `clara serve` and returned by [`Clara::predict_one`]/
/// [`Clara::predict_batch`]: the paper's §3 predictions without the §4
/// porting strategies (no placement ILP, no coalescing clustering).
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted NIC compute instructions per packet-handler invocation.
    pub predicted_compute: f64,
    /// Counted memory accesses (IR loads/stores to state/packet data).
    pub counted_mem: u32,
    /// Suggested core count for the profiled workload.
    pub suggested_cores: u32,
    /// Modeled throughput at the suggested core count, in Mpps. Unlike
    /// the compute/memory halves, this depends on the target device, so
    /// cross-backend prediction deltas are visible per request.
    pub predicted_throughput_mpps: f64,
    /// Modeled per-packet latency at the suggested core count, in µs.
    pub predicted_latency_us: f64,
}

impl Insights {
    /// Converts the insights into a concrete port configuration
    /// (the "Clara porting" of Section 5.1).
    pub fn port_config(&self) -> PortConfig {
        let mut port = PortConfig::naive()
            .with_csum_accel()
            .with_coalesce(self.coalesce.clone());
        port = placement::apply_placement(port, &self.placement);
        if let Some((class, region)) = &self.accel {
            let accel = match class {
                AlgoClass::Crc | AlgoClass::Crypto => Some(Accel::Crc),
                AlgoClass::Lpm => Some(Accel::Lpm),
                AlgoClass::None => None,
            };
            if let Some(a) = accel {
                port = port.accelerate(region.iter().copied(), a);
            }
        }
        port
    }
}

impl Clara {
    /// Trains the full pipeline from synthesized corpora.
    ///
    /// The corpus compiles and the corpus × workload profiling matrix
    /// fan out across [`crate::engine`]'s worker pool
    /// ([`crate::engine::EngineOptions::workers`] / `CLARA_THREADS`
    /// workers); results are bit-identical to a serial run. Engine tasks
    /// that fail — panics, injected faults — retry within the configured
    /// budget; faulted runs whose failures all retry out are likewise
    /// bit-identical to a fault-free run.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Degraded`] when any engine task exhausted
    /// its retry budget (or hit a stage deadline): the pipeline is then
    /// incomplete and no `Clara` is produced, but the run report (when a
    /// sink is configured) is still written with the failure counters.
    pub fn train(cfg: &ClaraConfig) -> Result<Clara, ClaraError> {
        engine::configure(&cfg.engine);
        let sink = obs::sink_from_env();
        if sink.is_some() {
            obs::enable();
        }
        let root = obs::span!(
            "clara-train",
            "predict={} algid={} scaleout={} epochs={} seed={}",
            cfg.predict_programs,
            cfg.algid_per_class,
            cfg.scaleout_programs,
            cfg.epochs,
            cfg.seed
        );
        // Branches may run on spawned threads; parenting them explicitly
        // under the root handle keeps the span tree identical to a
        // serial run. Each branch reports (model, failures, tasks) so a
        // degraded run can be surfaced with exact counts.
        let rh = root.handle();
        type Branch<M> = (Option<M>, Vec<engine::TaskFailure>, usize);
        // Instruction prediction: synthesized program/assembly pairs.
        let train_predictor = || -> Branch<InstructionPredictor> {
            let _branch = obs::span_under(rh, "train-predict-branch");
            let train_modules = nf_synth::synth_corpus(cfg.predict_programs, true, cfg.seed);
            let (samples, mut failures, mut total) =
                crate::predict::try_block_samples(&train_modules);
            total += 1;
            let fit = engine::try_time_stage("train-predict", || {
                InstructionPredictor::train(
                    PredictorKind::ClaraLstm,
                    &samples,
                    &PredictTrainConfig {
                        epochs: cfg.epochs,
                        seed: cfg.seed,
                        ..Default::default()
                    },
                )
            });
            match fit {
                Ok(p) => (Some(p), failures, total),
                Err(f) => {
                    failures.push(f);
                    (None, failures, total)
                }
            }
        };
        // Algorithm identification.
        let train_algid = || -> Branch<AlgoIdentifier> {
            let _branch = obs::span_under(rh, "train-algid-branch");
            let fit = engine::try_time_stage("train-algid", || {
                let corpus = crate::algid::labeled_corpus(cfg.algid_per_class, cfg.seed ^ 0xa1);
                AlgoIdentifier::train(&corpus, ClassifierKind::ClaraSvm, cfg.seed)
            });
            match fit {
                Ok(a) => (Some(a), Vec::new(), 1),
                Err(f) => (None, vec![f], 1),
            }
        };
        // Scale-out analysis.
        let train_scaleout = || -> Branch<ScaleoutModel> {
            let _branch = obs::span_under(rh, "train-scaleout-branch");
            let (so_data, mut failures, mut total) = crate::scaleout::try_training_set(
                cfg.scaleout_programs,
                cfg.seed ^ 0x50,
                &cfg.nic,
            );
            total += 1;
            let fit = engine::try_time_stage("train-scaleout", || {
                ScaleoutModel::train(ScaleoutKind::ClaraGbdt, &so_data, &cfg.nic, cfg.seed)
            });
            match fit {
                Ok(so) => (Some(so), failures, total),
                Err(f) => {
                    failures.push(f);
                    (None, failures, total)
                }
            }
        };
        // The three models are independent; with more than one engine
        // worker they train concurrently (each branch also fans out
        // internally). Either path assembles the same three results, so
        // the worker count never changes the trained pipeline.
        let ((predictor, pf, pt), (algid, af, at), (scaleout, sf, st)) =
            if engine::threads() > 1 {
                std::thread::scope(|s| {
                    let a = s.spawn(train_algid);
                    let so = s.spawn(train_scaleout);
                    let p = train_predictor();
                    (p, a.join().expect("algid"), so.join().expect("scaleout"))
                })
            } else {
                (train_predictor(), train_algid(), train_scaleout())
            };
        let failed = pf.len() + af.len() + sf.len();
        let total = pt + at + st;
        drop(root);
        // The report is written even for degraded runs — it is where the
        // engine.task_failures / engine.retries counters land, and a
        // degraded run is exactly when they matter.
        if let Some(raw) = sink {
            write_report(&raw, "clara_train.json");
        }
        match (predictor, algid, scaleout) {
            (Some(predictor), Some(algid), Some(scaleout)) if failed == 0 => Ok(Clara {
                predictor,
                algid,
                scaleout,
                nic: cfg.nic.clone(),
                precision: cfg.precision,
            }),
            _ => Err(ClaraError::Degraded { failed, total }),
        }
    }

    /// Serializes the trained pipeline to a versioned JSON envelope
    /// (`{format_version, nic_config, models}`), so it can be reloaded
    /// by any build that reads the same [`MODEL_FORMAT_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ClaraError> {
        let path = path.as_ref();
        let envelope = Value::Map(vec![
            (
                "format_version".to_string(),
                MODEL_FORMAT_VERSION.to_value(),
            ),
            ("nic_config".to_string(), self.nic.to_value()),
            ("precision".to_string(), self.precision.to_value()),
            (
                "models".to_string(),
                Value::Map(vec![
                    ("predictor".to_string(), self.predictor.to_value()),
                    ("algid".to_string(), self.algid.to_value()),
                    ("scaleout".to_string(), self.scaleout.to_value()),
                ]),
            ),
        ]);
        let json = serde_json::to_string(&envelope).map_err(|e| ClaraError::Format {
            path: Some(path.to_path_buf()),
            detail: e.to_string(),
        })?;
        std::fs::write(path, json).map_err(|source| ClaraError::Io {
            path: path.to_path_buf(),
            source,
        })
    }

    /// Loads a pipeline previously written by [`Clara::save`].
    ///
    /// Accepts every version in
    /// [`MIN_MODEL_FORMAT_VERSION`]`..=`[`MODEL_FORMAT_VERSION`].
    /// Version-1 envelopes (pre-quantization) load as f64 models with
    /// their Q16.16 companions rebuilt from the f64 weights — a pure
    /// function of the weights, so the rebuilt companions are identical
    /// to what training would have saved.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::Io`] when the file cannot be read,
    /// [`ClaraError::Format`] when it is not a Clara model envelope, and
    /// [`ClaraError::UnsupportedVersion`] when it was written by an
    /// incompatible format version.
    pub fn load(path: impl AsRef<Path>) -> Result<Clara, ClaraError> {
        let path = path.as_ref();
        let format = |detail: String| ClaraError::Format {
            path: Some(path.to_path_buf()),
            detail,
        };
        let json = std::fs::read_to_string(path).map_err(|source| ClaraError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let v = serde_json::parse_value(&json).map_err(|e| format(e.to_string()))?;
        let found = match v.get("format_version") {
            Some(Value::Int(i)) if *i >= 0 => *i as u64,
            Some(Value::UInt(u)) => *u,
            _ => {
                return Err(format(
                    "missing `format_version` — not a Clara model file (or written by a \
                     pre-versioning build)"
                        .to_string(),
                ))
            }
        };
        if !(MIN_MODEL_FORMAT_VERSION..=MODEL_FORMAT_VERSION).contains(&found) {
            return Err(ClaraError::UnsupportedVersion {
                found,
                supported: MODEL_FORMAT_VERSION,
            });
        }
        let models = v
            .get("models")
            .ok_or_else(|| format("missing `models` section".to_string()))?;
        let field = |name: &str| {
            models
                .get(name)
                .ok_or_else(|| format(format!("missing `models.{name}` section")))
        };
        let mut clara = Clara {
            predictor: InstructionPredictor::from_value(field("predictor")?)
                .map_err(|e| format(e.to_string()))?,
            algid: AlgoIdentifier::from_value(field("algid")?)
                .map_err(|e| format(e.to_string()))?,
            scaleout: ScaleoutModel::from_value(field("scaleout")?)
                .map_err(|e| format(e.to_string()))?,
            nic: NicConfig::from_value(
                v.get("nic_config")
                    .ok_or_else(|| format("missing `nic_config` section".to_string()))?,
            )
            .map_err(|e| format(e.to_string()))?,
            // Absent in version-1 envelopes; `from_value(Null)` yields
            // the legacy F64 default.
            precision: Precision::from_value(v.get("precision").unwrap_or(&Value::Null))
                .map_err(|e| format(e.to_string()))?,
        };
        // Version-1 files predate the quantized companions; rebuild them
        // from the f64 weights (no-op for version-2 files).
        clara.predictor.ensure_quantized();
        clara.scaleout.ensure_quantized();
        Ok(clara)
    }

    /// Predicts the performance parameters of one NF + workload — the
    /// single-item form of [`Clara::predict_batch`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Clara::predict_batch`]'s per-item results.
    pub fn predict_one(&self, module: &Module, trace: &Trace) -> Result<Prediction, ClaraError> {
        self.predict_batch(&[(module, trace)])
            .pop()
            .expect("one item in, one result out")
    }

    /// [`Clara::predict_one`] against a specific device backend.
    ///
    /// # Errors
    ///
    /// Same contract as [`Clara::predict_batch`]'s per-item results.
    pub fn predict_one_on(
        &self,
        module: &Module,
        trace: &Trace,
        backend: &dyn clara_hal::Backend,
    ) -> Result<Prediction, ClaraError> {
        self.predict_one_on_prec(module, trace, backend, self.precision)
    }

    /// [`Clara::predict_one_on`] at an explicit precision.
    ///
    /// # Errors
    ///
    /// Same contract as [`Clara::predict_batch`]'s per-item results.
    pub fn predict_one_on_prec(
        &self,
        module: &Module,
        trace: &Trace,
        backend: &dyn clara_hal::Backend,
        precision: Precision,
    ) -> Result<Prediction, ClaraError> {
        self.predict_batch_on_prec(&[(module, trace)], backend, precision)
            .pop()
            .expect("one item in, one result out")
    }

    /// The trace-independent half of a prediction (verification, LSTM
    /// compute estimate, memory count), memoized process-wide by
    /// (predictor, module, precision) — the precision joins the key so a
    /// server holding both paths warm never serves one precision's
    /// estimate for the other. Memoized values are pure deterministic
    /// functions of the key, so a hit is bit-identical to recomputation;
    /// hit/miss counters are volatile because racing batch workers may
    /// both miss the same key.
    fn module_half(
        &self,
        predictor_fp: u64,
        module: &Module,
        precision: Precision,
    ) -> Result<(f64, u32), ClaraError> {
        type HalfMemo = Mutex<HashMap<(u64, u64, Precision), (f64, u32)>>;
        static MEMO: OnceLock<HalfMemo> = OnceLock::new();
        let key = (predictor_fp, engine::value_fingerprint(module), precision);
        let memo = MEMO.get_or_init(Mutex::default);
        if let Some(&hit) = memo.lock().expect("memo poisoned").get(&key) {
            obs::volatile_counter("clara.predict_memo.hits").incr();
            return Ok(hit);
        }
        obs::volatile_counter("clara.predict_memo.misses").incr();
        nf_ir::verify::verify_module(module).map_err(|e| ClaraError::InvalidModule {
            name: module.name.clone(),
            detail: e.to_string(),
        })?;
        let value = (
            self.predictor.predict_module_compute_prec(module, precision),
            prepare_module(module).counted_mem(),
        );
        memo.lock().expect("memo poisoned").insert(key, value);
        Ok(value)
    }

    /// Predicts performance parameters for a whole batch of
    /// `(module, trace)` pairs in **one** engine stage.
    ///
    /// This is the serving-path entry point: the batch fans out across
    /// the worker pool as a single `predict-batch` [`crate::engine`]
    /// stage (instead of one facade call per request), and every item
    /// reuses one request-scoped [`engine::Engine`] handle so compiles
    /// and profiles are shared through the process-wide caches. Results
    /// come back in input order and are bit-identical to calling
    /// [`Clara::predict_one`] per item serially.
    ///
    /// # Errors
    ///
    /// Each item fails independently: [`ClaraError::EmptyTrace`] for a
    /// packet-less trace, [`ClaraError::InvalidModule`] when IR
    /// verification fails, [`ClaraError::Prediction`] for an unusable
    /// model estimate, and [`ClaraError::Degraded`] when the item's
    /// engine task failed permanently (panic past the retry budget or a
    /// stage deadline).
    pub fn predict_batch(
        &self,
        items: &[(&Module, &Trace)],
    ) -> Vec<Result<Prediction, ClaraError>> {
        let backend_fp = engine::value_fingerprint(&self.nic);
        let predictor_fp = self.predictor_fingerprint();
        self.predict_batch_with(items, &self.nic, backend_fp, self.precision, predictor_fp)
    }

    /// [`Clara::predict_batch`] against a specific device backend: the
    /// trained models are reused as-is (compute and memory predictions
    /// are device-independent), while profiling, the scale-out estimate,
    /// and the modeled operating point use the backend's device
    /// configuration — and its manifest fingerprint keys the engine
    /// caches, so two devices never share a cached profile.
    pub fn predict_batch_on(
        &self,
        items: &[(&Module, &Trace)],
        backend: &dyn clara_hal::Backend,
    ) -> Vec<Result<Prediction, ClaraError>> {
        self.predict_batch_on_prec(items, backend, self.precision)
    }

    /// [`Clara::predict_batch_on`] at an explicit precision: `Q16` routes
    /// model inference (compute estimate and core suggestion) through the
    /// fixed-point twins; counted memory, profiling, and the performance
    /// model are precision-independent.
    pub fn predict_batch_on_prec(
        &self,
        items: &[(&Module, &Trace)],
        backend: &dyn clara_hal::Backend,
        precision: Precision,
    ) -> Vec<Result<Prediction, ClaraError>> {
        let predictor_fp = self.predictor_fingerprint();
        self.predict_batch_with(items, backend.nic(), backend.fingerprint(), precision, predictor_fp)
    }

    /// Content fingerprint of the trained predictor weights — the part
    /// of the trace-independent prediction memo key that never changes
    /// for a given instance. Hashing the full weight tensors costs
    /// milliseconds, which is noise on a one-shot CLI run but dominates
    /// a warm sub-millisecond serving request; a resident server should
    /// call this **once** and reuse the value through
    /// [`Clara::predict_batch_on_prec_cached`].
    pub fn predictor_fingerprint(&self) -> u64 {
        engine::value_fingerprint(&self.predictor)
    }

    /// [`Clara::predict_batch_on_prec`] with a precomputed
    /// [`Clara::predictor_fingerprint`]: the serving-path entry point.
    /// Passing a fingerprint that was not produced from this instance's
    /// predictor poisons the process-wide memo with misattributed
    /// entries, so callers must cache it per instance.
    pub fn predict_batch_on_prec_cached(
        &self,
        items: &[(&Module, &Trace)],
        backend: &dyn clara_hal::Backend,
        precision: Precision,
        predictor_fp: u64,
    ) -> Vec<Result<Prediction, ClaraError>> {
        self.predict_batch_with(items, backend.nic(), backend.fingerprint(), precision, predictor_fp)
    }

    fn predict_batch_with(
        &self,
        items: &[(&Module, &Trace)],
        nic: &NicConfig,
        backend_fp: u64,
        precision: Precision,
        // The trace-independent half of a prediction (IR verification,
        // LSTM compute estimate, memory count) is a pure function of
        // (trained predictor, module) — memoized process-wide under this
        // fingerprint of the predictor weights, which covers the whole
        // batch (and, for a resident server, its whole lifetime).
        predictor_fp: u64,
    ) -> Vec<Result<Prediction, ClaraError>> {
        let eng = engine::Engine::new();
        let naive = PortConfig::naive();
        let outcome = engine::try_par_map("predict-batch", items, |_, &(module, trace)| {
            if trace.pkts.is_empty() {
                return Err(ClaraError::EmptyTrace);
            }
            let (predicted_compute, counted_mem) =
                self.module_half(predictor_fp, module, precision)?;
            let profile = eng.profile_cached_for(module, trace, &naive, nic, backend_fp);
            // Scale-out is trained once and parameterized by the device
            // at inference time; the clamp keeps suggestions honest for
            // devices with fewer cores than the training default.
            let suggested_cores = self
                .scaleout
                .predict_prec(&profile, nic, &naive, precision)?
                .min(nic.cores);
            let perf = nic_sim::solve_perf(&profile, nic, &naive, suggested_cores);
            Ok(Prediction {
                predicted_compute,
                counted_mem,
                suggested_cores,
                predicted_throughput_mpps: perf.throughput_mpps,
                predicted_latency_us: perf.latency_us,
            })
        });
        outcome
            .results
            .into_iter()
            .map(|r| match r {
                Some(item) => item,
                // The task itself died (panic past the retry budget or a
                // stage deadline) — surface it as a degraded single-task
                // run so the caller sees the same shape `analyze` uses.
                None => Err(ClaraError::Degraded { failed: 1, total: 1 }),
            })
            .collect()
    }

    /// Analyzes an unported NF against a workload trace, producing the
    /// full insight bundle.
    ///
    /// # Errors
    ///
    /// Returns [`ClaraError::EmptyTrace`] for a packet-less trace,
    /// [`ClaraError::InvalidModule`] when the module fails IR
    /// verification, [`ClaraError::Prediction`] when a trained model
    /// produces an unusable estimate, and [`ClaraError::Degraded`] when
    /// the profiling task failed permanently (exhausted retries or hit a
    /// stage deadline).
    pub fn analyze(&self, module: &Module, trace: &Trace) -> Result<Insights, ClaraError> {
        self.analyze_prec(module, trace, self.precision)
    }

    /// [`Clara::analyze`] at an explicit inference precision (same
    /// default device).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Clara::analyze`].
    pub fn analyze_prec(
        &self,
        module: &Module,
        trace: &Trace,
        precision: Precision,
    ) -> Result<Insights, ClaraError> {
        let backend_fp = engine::value_fingerprint(&self.nic);
        self.analyze_with(module, trace, &self.nic, backend_fp, precision)
    }

    /// [`Clara::analyze`] against a specific device backend: identical
    /// code path and span tree, but the profiling run, placement
    /// capacities, scale-out estimate, and coalescing evaluation all use
    /// the backend's device configuration, and its manifest fingerprint
    /// keys the engine caches. Analyzing on the default backend is
    /// bit-identical to [`Clara::analyze`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Clara::analyze`].
    pub fn analyze_on(
        &self,
        module: &Module,
        trace: &Trace,
        backend: &dyn clara_hal::Backend,
    ) -> Result<Insights, ClaraError> {
        self.analyze_on_prec(module, trace, backend, self.precision)
    }

    /// [`Clara::analyze_on`] at an explicit precision (see
    /// [`Clara::predict_batch_on_prec`] for what the precision covers).
    ///
    /// # Errors
    ///
    /// Same contract as [`Clara::analyze`].
    pub fn analyze_on_prec(
        &self,
        module: &Module,
        trace: &Trace,
        backend: &dyn clara_hal::Backend,
        precision: Precision,
    ) -> Result<Insights, ClaraError> {
        self.analyze_with(module, trace, backend.nic(), backend.fingerprint(), precision)
    }

    fn analyze_with(
        &self,
        module: &Module,
        trace: &Trace,
        nic: &NicConfig,
        backend_fp: u64,
        precision: Precision,
    ) -> Result<Insights, ClaraError> {
        if trace.pkts.is_empty() {
            return Err(ClaraError::EmptyTrace);
        }
        nf_ir::verify::verify_module(module).map_err(|e| ClaraError::InvalidModule {
            name: module.name.clone(),
            detail: e.to_string(),
        })?;
        let sink = obs::sink_from_env();
        if sink.is_some() {
            obs::enable();
        }
        let root = obs::span!("clara-analyze", "nf={} pkts={}", module.name, trace.pkts.len());
        let prepared = {
            let _s = obs::span("analyze-prepare");
            prepare_module(module)
        };
        let predicted_compute = {
            let _s = obs::span("analyze-predict-compute");
            self.predictor.predict_module_compute_prec(module, precision)
        };
        let counted_mem = prepared.counted_mem();
        let accel = {
            let _s = obs::span("analyze-algid");
            let (class, region) = self.algid.identify(module);
            if class == AlgoClass::None || region.is_empty() {
                None
            } else {
                Some((class, region))
            }
        };
        // Host-side profiling for the workload-specific insights, memoized
        // so repeat analyses of the same NF + trace reuse the run. This
        // is the one engine task in the analyze path, so it runs under
        // the fault-tolerance machinery (retries, deadline, injection).
        let naive = PortConfig::naive();
        let profile = match engine::try_time_stage("analyze-profile", || {
            engine::Engine::new().profile_cached_for(module, trace, &naive, nic, backend_fp)
        }) {
            Ok(p) => p,
            Err(_) => {
                drop(root);
                if let Some(raw) = sink {
                    write_report(&raw, "clara_analyze.json");
                }
                return Err(ClaraError::Degraded { failed: 1, total: 1 });
            }
        };
        let placement = {
            let _s = obs::span("analyze-placement");
            placement::plan::suggest_placement(module, &profile, nic).unwrap_or_default()
        };
        let coalesce = {
            let _s = obs::span("analyze-coalesce");
            coalesce::suggest_coalescing(module, trace, 7)
        };
        let suggested_cores = {
            let _s = obs::span("analyze-scaleout");
            self.scaleout
                .predict_prec(&profile, nic, &naive, precision)?
                .min(nic.cores)
        };
        drop(root);
        if let Some(raw) = sink {
            write_report(&raw, "clara_analyze.json");
        }
        Ok(Insights {
            predicted_compute,
            counted_mem,
            mem_count_accuracy: memory_count_accuracy(module),
            accel,
            suggested_cores,
            placement,
            coalesce,
            profile,
        })
    }
}

/// Best-effort run-report write for the facade's `CLARA_REPORT` sink
/// (telemetry must never fail the pipeline).
fn write_report(raw_sink: &str, default_name: &str) {
    let path = obs::resolve_sink(raw_sink, default_name);
    if let Err(e) = obs::RunReport::capture().write(&path) {
        eprintln!("warning: could not write run report to {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafgen::WorkloadSpec;

    #[test]
    fn end_to_end_insights_for_cmsketch() {
        let clara = Clara::train(&ClaraConfig::fast(1)).expect("train");
        let e = click_model::elements::cmsketch();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 300, 2);
        let insights = clara.analyze(&e.module, &trace).expect("analysis succeeds");

        assert!(insights.predicted_compute > 0.0);
        assert!(insights.counted_mem > 0);
        assert!(insights.mem_count_accuracy > 90.0);
        let (class, region) = insights.accel.as_ref().expect("cmsketch has CRC loops");
        assert_eq!(*class, AlgoClass::Crc);
        assert!(!region.is_empty());
        assert!((1..=60).contains(&insights.suggested_cores));

        // The Clara port must beat the naive port on the simulator.
        let port = insights.port_config();
        let cfg = NicConfig::default();
        let naive_pt = nic_sim::simulate(&e.module, &trace, &PortConfig::naive(), &cfg, 20);
        let clara_pt = nic_sim::simulate(&e.module, &trace, &port, &cfg, 20);
        assert!(
            clara_pt.throughput_mpps > naive_pt.throughput_mpps,
            "clara {} vs naive {}",
            clara_pt.throughput_mpps,
            naive_pt.throughput_mpps
        );
        assert!(clara_pt.latency_us < naive_pt.latency_us);
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let clara = Clara::train(&ClaraConfig::fast(5)).expect("train");
        let dir = std::env::temp_dir().join("clara_model_test.json");
        clara.save(&dir).expect("saves");
        let loaded = Clara::load(&dir).expect("loads");
        std::fs::remove_file(&dir).ok();

        let e = click_model::elements::iplookup(256);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 6);
        let a = clara.analyze(&e.module, &trace).expect("analysis succeeds");
        let b = loaded.analyze(&e.module, &trace).expect("analysis succeeds");
        assert_eq!(a.predicted_compute, b.predicted_compute);
        assert_eq!(a.suggested_cores, b.suggested_cores);
        assert_eq!(a.accel, b.accel);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn predict_batch_matches_analyze_and_serial_predict_one() {
        let clara = Clara::train(&ClaraConfig::fast(8)).expect("train");
        let elems = [
            click_model::elements::cmsketch(),
            click_model::elements::iplookup(128),
            click_model::elements::tcpack(),
        ];
        let traces: Vec<Trace> = (0..elems.len())
            .map(|i| Trace::generate(&WorkloadSpec::large_flows(), 150, 10 + i as u64))
            .collect();
        let items: Vec<(&nf_ir::Module, &Trace)> = elems
            .iter()
            .zip(traces.iter())
            .map(|(e, t)| (&e.module, t))
            .collect();
        let batch = clara.predict_batch(&items);
        assert_eq!(batch.len(), items.len());
        for ((e, t), p) in elems.iter().zip(traces.iter()).zip(batch.iter().map(|r| {
            r.as_ref().expect("batch item succeeds")
        })) {
            let one = clara.predict_one(&e.module, t).expect("predict_one succeeds");
            assert_eq!(&one, p, "batch and single-item predictions must agree");
            let insights = clara.analyze(&e.module, t).expect("analyze succeeds");
            assert_eq!(p.predicted_compute, insights.predicted_compute);
            assert_eq!(p.counted_mem, insights.counted_mem);
            assert_eq!(p.suggested_cores, insights.suggested_cores);
        }
        // Per-item failures stay per-item: an empty trace fails its slot
        // without poisoning the rest of the batch.
        let empty = Trace::generate(&WorkloadSpec::large_flows(), 0, 1);
        let mixed = clara.predict_batch(&[(&elems[0].module, &empty), items[1]]);
        assert!(matches!(mixed[0], Err(ClaraError::EmptyTrace)));
        assert!(mixed[1].is_ok());
    }

    #[test]
    fn stateless_nf_gets_no_placement_or_accel() {
        let clara = Clara::train(&ClaraConfig::fast(3)).expect("train");
        let e = click_model::elements::tcpack();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 100, 4);
        let insights = clara.analyze(&e.module, &trace).expect("analysis succeeds");
        assert!(insights.placement.is_empty());
        assert!(insights.coalesce.clusters.is_empty());
        assert!(insights.accel.is_none(), "{:?}", insights.accel);
        let empty = Trace::generate(&WorkloadSpec::large_flows(), 0, 4);
        assert!(matches!(
            clara.analyze(&e.module, &empty),
            Err(ClaraError::EmptyTrace)
        ));
    }
}
