//! The Clara facade: train once, analyze any NF.

use std::collections::BTreeMap;
use std::path::Path;

use nf_ir::{BlockId, GlobalId, Module};
use nic_sim::{Accel, CoalescePlan, MemLevel, NicConfig, PortConfig, WorkloadProfile};
use serde::{Deserialize, Serialize};
use trafgen::Trace;

use crate::algid::{AlgoClass, AlgoIdentifier, ClassifierKind};
use crate::coalesce;
use crate::engine;
use crate::placement;
use crate::predict::{
    block_samples, memory_count_accuracy, InstructionPredictor, PredictTrainConfig, PredictorKind,
};
use crate::prepare::prepare_module;
use crate::scaleout::{ScaleoutKind, ScaleoutModel};

/// Training budget for the whole Clara pipeline.
#[derive(Debug, Clone)]
pub struct ClaraConfig {
    /// Synthesized programs for instruction-prediction training.
    pub predict_programs: usize,
    /// Labeled variants per class for algorithm identification.
    pub algid_per_class: usize,
    /// Synthesized programs for scale-out training.
    pub scaleout_programs: usize,
    /// Neural-model training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    /// NIC hardware configuration.
    pub nic: NicConfig,
}

impl ClaraConfig {
    /// Full-quality configuration (benchmarks, release builds).
    pub fn full(seed: u64) -> ClaraConfig {
        ClaraConfig {
            predict_programs: 240,
            algid_per_class: 40,
            scaleout_programs: 60,
            epochs: 35,
            seed,
            nic: NicConfig::default(),
        }
    }

    /// Reduced configuration for tests and examples.
    pub fn fast(seed: u64) -> ClaraConfig {
        ClaraConfig {
            predict_programs: 50,
            algid_per_class: 25,
            scaleout_programs: 16,
            epochs: 15,
            seed,
            nic: NicConfig::default(),
        }
    }
}

/// A fully trained Clara instance.
#[derive(Serialize, Deserialize)]
pub struct Clara {
    /// Instruction predictor (LSTM+FC).
    pub predictor: InstructionPredictor,
    /// Algorithm identifier (SVM over SPE features).
    pub algid: AlgoIdentifier,
    /// Scale-out core-count model (GBDT).
    pub scaleout: ScaleoutModel,
    /// NIC configuration used for training and analysis.
    pub nic: NicConfig,
}

/// The offloading insights Clara generates for one NF + workload.
#[derive(Debug, Clone)]
pub struct Insights {
    /// Predicted NIC compute instructions per packet-handler invocation.
    pub predicted_compute: f64,
    /// Counted memory accesses (IR loads/stores to state/packet data).
    pub counted_mem: u32,
    /// Memory-counting fidelity vs the vendor compiler (percent).
    pub mem_count_accuracy: f64,
    /// Identified accelerator opportunity and its loop region.
    pub accel: Option<(AlgoClass, Vec<BlockId>)>,
    /// Suggested core count for the profiled workload.
    pub suggested_cores: u32,
    /// Suggested state placement.
    pub placement: BTreeMap<GlobalId, MemLevel>,
    /// Suggested variable packing.
    pub coalesce: CoalescePlan,
    /// The host-side workload profile the suggestions are based on.
    pub profile: WorkloadProfile,
}

impl Insights {
    /// Converts the insights into a concrete port configuration
    /// (the "Clara porting" of Section 5.1).
    pub fn port_config(&self) -> PortConfig {
        let mut port = PortConfig::naive()
            .with_csum_accel()
            .with_coalesce(self.coalesce.clone());
        port = placement::apply_placement(port, &self.placement);
        if let Some((class, region)) = &self.accel {
            let accel = match class {
                AlgoClass::Crc | AlgoClass::Crypto => Some(Accel::Crc),
                AlgoClass::Lpm => Some(Accel::Lpm),
                AlgoClass::None => None,
            };
            if let Some(a) = accel {
                port = port.accelerate(region.iter().copied(), a);
            }
        }
        port
    }
}

impl Clara {
    /// Trains the full pipeline from synthesized corpora.
    ///
    /// The corpus compiles and the corpus × workload profiling matrix
    /// fan out across [`crate::engine`]'s worker pool (`CLARA_THREADS`
    /// workers); results are bit-identical to a serial run.
    pub fn train(cfg: &ClaraConfig) -> Clara {
        // Instruction prediction: synthesized program/assembly pairs.
        let train_predictor = || {
            let train_modules = nf_synth::synth_corpus(cfg.predict_programs, true, cfg.seed);
            let samples = block_samples(&train_modules);
            engine::time_stage("train-predict", || {
                InstructionPredictor::train(
                    PredictorKind::ClaraLstm,
                    &samples,
                    &PredictTrainConfig {
                        epochs: cfg.epochs,
                        seed: cfg.seed,
                        ..Default::default()
                    },
                )
            })
        };
        // Algorithm identification.
        let train_algid = || {
            engine::time_stage("train-algid", || {
                let corpus = crate::algid::labeled_corpus(cfg.algid_per_class, cfg.seed ^ 0xa1);
                AlgoIdentifier::train(&corpus, ClassifierKind::ClaraSvm, cfg.seed)
            })
        };
        // Scale-out analysis.
        let train_scaleout = || {
            let so_data =
                crate::scaleout::training_set(cfg.scaleout_programs, cfg.seed ^ 0x50, &cfg.nic);
            engine::time_stage("train-scaleout", || {
                ScaleoutModel::train(ScaleoutKind::ClaraGbdt, &so_data, &cfg.nic, cfg.seed)
            })
        };
        // The three models are independent; with more than one engine
        // worker they train concurrently (each branch also fans out
        // internally). Either path assembles the same three results, so
        // the worker count never changes the trained pipeline.
        let (predictor, algid, scaleout) = if engine::threads() > 1 {
            std::thread::scope(|s| {
                let a = s.spawn(train_algid);
                let so = s.spawn(train_scaleout);
                let p = train_predictor();
                (p, a.join().expect("algid"), so.join().expect("scaleout"))
            })
        } else {
            (train_predictor(), train_algid(), train_scaleout())
        };
        Clara {
            predictor,
            algid,
            scaleout,
            nic: cfg.nic.clone(),
        }
    }

    /// Serializes the trained pipeline to a JSON file (train once, reuse
    /// across runs).
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a pipeline previously written by [`Clara::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Clara> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// Analyzes an unported NF against a workload trace, producing the
    /// full insight bundle.
    pub fn analyze(&self, module: &Module, trace: &Trace) -> Insights {
        let prepared = prepare_module(module);
        let predicted_compute = self.predictor.predict_module_compute(module);
        let counted_mem = prepared.counted_mem();
        let accel = {
            let (class, region) = self.algid.identify(module);
            if class == AlgoClass::None || region.is_empty() {
                None
            } else {
                Some((class, region))
            }
        };
        // Host-side profiling for the workload-specific insights, memoized
        // so repeat analyses of the same NF + trace reuse the run.
        let naive = PortConfig::naive();
        let profile = engine::profile_cached(module, trace, &naive, &self.nic);
        let placement =
            placement::suggest_placement(module, &profile, &self.nic).unwrap_or_default();
        let coalesce = coalesce::suggest_coalescing(module, trace, 7);
        let suggested_cores = self.scaleout.predict(&profile, &self.nic, &naive);
        Insights {
            predicted_compute,
            counted_mem,
            mem_count_accuracy: memory_count_accuracy(module),
            accel,
            suggested_cores,
            placement,
            coalesce,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trafgen::WorkloadSpec;

    #[test]
    fn end_to_end_insights_for_cmsketch() {
        let clara = Clara::train(&ClaraConfig::fast(1));
        let e = click_model::elements::cmsketch();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 300, 2);
        let insights = clara.analyze(&e.module, &trace);

        assert!(insights.predicted_compute > 0.0);
        assert!(insights.counted_mem > 0);
        assert!(insights.mem_count_accuracy > 90.0);
        let (class, region) = insights.accel.as_ref().expect("cmsketch has CRC loops");
        assert_eq!(*class, AlgoClass::Crc);
        assert!(!region.is_empty());
        assert!((1..=60).contains(&insights.suggested_cores));

        // The Clara port must beat the naive port on the simulator.
        let port = insights.port_config();
        let cfg = NicConfig::default();
        let naive_pt = nic_sim::simulate(&e.module, &trace, &PortConfig::naive(), &cfg, 20);
        let clara_pt = nic_sim::simulate(&e.module, &trace, &port, &cfg, 20);
        assert!(
            clara_pt.throughput_mpps > naive_pt.throughput_mpps,
            "clara {} vs naive {}",
            clara_pt.throughput_mpps,
            naive_pt.throughput_mpps
        );
        assert!(clara_pt.latency_us < naive_pt.latency_us);
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let clara = Clara::train(&ClaraConfig::fast(5));
        let dir = std::env::temp_dir().join("clara_model_test.json");
        clara.save(&dir).expect("saves");
        let loaded = Clara::load(&dir).expect("loads");
        std::fs::remove_file(&dir).ok();

        let e = click_model::elements::iplookup(256);
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 200, 6);
        let a = clara.analyze(&e.module, &trace);
        let b = loaded.analyze(&e.module, &trace);
        assert_eq!(a.predicted_compute, b.predicted_compute);
        assert_eq!(a.suggested_cores, b.suggested_cores);
        assert_eq!(a.accel, b.accel);
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn stateless_nf_gets_no_placement_or_accel() {
        let clara = Clara::train(&ClaraConfig::fast(3));
        let e = click_model::elements::tcpack();
        let trace = Trace::generate(&WorkloadSpec::large_flows(), 100, 4);
        let insights = clara.analyze(&e.module, &trace);
        assert!(insights.placement.is_empty());
        assert!(insights.coalesce.clusters.is_empty());
        assert!(insights.accel.is_none(), "{:?}", insights.accel);
    }
}
