//! NF colocation analysis via pairwise ranking (paper Section 4.5).
//!
//! Colocated NFs interfere through the shared memory subsystem. Clara
//! ranks candidate colocation pairs by "friendliness" with a
//! LambdaMART-style model over contention features: each NF's arithmetic
//! intensity, compute volume, and the pair's intensity ratio. Ground
//! truth comes from colocated runs: the aggregate colocated throughput
//! normalized by the NFs' exclusive-use peaks (or the latency analogue).

use nic_sim::{solve_colocated, solve_perf, NicConfig, PortConfig, WorkloadProfile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tinyml::gbdt::GbdtConfig;
use tinyml::rank::{LambdaMart, RankGroup};

/// The four ranking objectives evaluated in Figure 14a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankObjective {
    /// Aggregate colocated throughput over the sum of solo throughputs.
    TotalThroughput,
    /// Mean of per-NF relative throughput retention.
    AvgThroughput,
    /// Negated aggregate latency inflation.
    TotalLatency,
    /// Negated mean per-NF latency inflation.
    AvgLatency,
}

impl RankObjective {
    /// Display name (as in Figure 14a's x axis).
    pub fn name(self) -> &'static str {
        match self {
            RankObjective::TotalThroughput => "Th.Tot.",
            RankObjective::AvgThroughput => "Th.Avg.",
            RankObjective::TotalLatency => "Lat.Tot.",
            RankObjective::AvgLatency => "Lat.Avg.",
        }
    }

    /// All objectives.
    pub const ALL: [RankObjective; 4] = [
        RankObjective::TotalThroughput,
        RankObjective::AvgThroughput,
        RankObjective::TotalLatency,
        RankObjective::AvgLatency,
    ];
}

/// Contention features of a candidate pair.
pub fn pair_features(
    a: &WorkloadProfile,
    b: &WorkloadProfile,
    cfg: &NicConfig,
    port: &PortConfig,
) -> Vec<f64> {
    let da = a.channel_demand(cfg, port);
    let db = b.channel_demand(cfg, port);
    let mem_a: f64 = da.iter().sum();
    let mem_b: f64 = db.iter().sum();
    let ai_a = a.compute / mem_a.max(1e-9);
    let ai_b = b.compute / mem_b.max(1e-9);
    // Shared-port pressure: what fraction of the (shared) line each NF
    // would use alone on its half of the cores. The port's capacity is
    // set by the smaller packet size of the pair — the same convention
    // the colocated solver uses.
    let half = (cfg.cores / 2).max(1);
    let shared_line = cfg
        .line_rate_mpps(a.mean_pkt_size.min(b.mean_pkt_size))
        .max(1e-9);
    let io_a = solve_perf(a, cfg, port, half).throughput_mpps / shared_line;
    let io_b = solve_perf(b, cfg, port, half).throughput_mpps / shared_line;
    vec![
        ai_a.min(100.0),
        ai_b.min(100.0),
        (ai_a / ai_b.max(1e-9)).min(100.0),
        a.compute / 100.0,
        b.compute / 100.0,
        da[3] + db[3], // Combined EMEM-miss pressure.
        da[4] + db[4], // Combined cache pressure.
        mem_a + mem_b,
        io_a,
        io_b,
        io_a + io_b, // Joint line-rate pressure (>1 = guaranteed contention).
    ]
}

/// Measured colocation quality of a pair under an objective
/// (higher = friendlier).
pub fn measure_pair(
    a: &WorkloadProfile,
    b: &WorkloadProfile,
    cfg: &NicConfig,
    port: &PortConfig,
    objective: RankObjective,
) -> f64 {
    let half = (cfg.cores / 2).max(1);
    let solo_a = solve_perf(a, cfg, port, half);
    let solo_b = solve_perf(b, cfg, port, half);
    let pair = solve_colocated(&[a, b], cfg, &[port, port], &[half, half]);
    match objective {
        RankObjective::TotalThroughput => {
            (pair[0].throughput_mpps + pair[1].throughput_mpps)
                / (solo_a.throughput_mpps + solo_b.throughput_mpps).max(1e-9)
        }
        RankObjective::AvgThroughput => {
            0.5 * (pair[0].throughput_mpps / solo_a.throughput_mpps.max(1e-9)
                + pair[1].throughput_mpps / solo_b.throughput_mpps.max(1e-9))
        }
        RankObjective::TotalLatency => {
            -(pair[0].latency_us + pair[1].latency_us)
                / (solo_a.latency_us + solo_b.latency_us).max(1e-9)
        }
        RankObjective::AvgLatency => {
            -0.5 * (pair[0].latency_us / solo_a.latency_us.max(1e-9)
                + pair[1].latency_us / solo_b.latency_us.max(1e-9))
        }
    }
}

/// Builds ranking groups from a pool of NF workload profiles: each group
/// fixes a random subset of NFs and ranks all pairs within it.
pub fn training_groups(
    profiles: &[WorkloadProfile],
    cfg: &NicConfig,
    objective: RankObjective,
    groups: usize,
    group_nfs: usize,
    seed: u64,
) -> Vec<RankGroup> {
    let port = PortConfig::naive();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(groups);
    let mut idx: Vec<usize> = (0..profiles.len()).collect();
    for _ in 0..groups {
        idx.shuffle(&mut rng);
        let chosen = &idx[..group_nfs.min(idx.len())];
        let mut features = Vec::new();
        let mut relevance = Vec::new();
        for (pos, &i) in chosen.iter().enumerate() {
            for &j in &chosen[pos + 1..] {
                features.push(pair_features(&profiles[i], &profiles[j], cfg, &port));
                relevance.push(measure_pair(
                    &profiles[i],
                    &profiles[j],
                    cfg,
                    &port,
                    objective,
                ));
            }
        }
        if features.len() >= 2 {
            out.push(RankGroup {
                features,
                relevance,
            });
        }
    }
    out
}

/// A trained colocation ranker.
#[derive(Serialize, Deserialize)]
pub struct ColocRanker {
    model: LambdaMart,
    /// The objective this ranker was trained for.
    pub objective: RankObjective,
}

impl ColocRanker {
    /// Trains on ranking groups.
    pub fn train(groups: &[RankGroup], objective: RankObjective) -> ColocRanker {
        ColocRanker {
            model: LambdaMart::fit(
                groups,
                &GbdtConfig {
                    rounds: 150,
                    shrinkage: 0.08,
                    tree: tinyml::tree::TreeConfig {
                        max_depth: 5,
                        min_split: 4,
                        min_leaf: 2,
                    },
                },
            ),
            objective,
        }
    }

    /// Friendliness score of a pair (higher = ranked better).
    pub fn score(
        &self,
        a: &WorkloadProfile,
        b: &WorkloadProfile,
        cfg: &NicConfig,
        port: &PortConfig,
    ) -> f64 {
        self.model.score(&pair_features(a, b, cfg, port))
    }

    /// Top-k accuracy over held-out groups: fraction of groups whose true
    /// best pair appears in the predicted top k.
    pub fn topk_accuracy(&self, groups: &[RankGroup], k: usize) -> f64 {
        if groups.is_empty() {
            return 0.0;
        }
        let hits = groups
            .iter()
            .filter(|g| {
                let scores: Vec<f64> = g.features.iter().map(|f| self.model.score(f)).collect();
                tinyml::metrics::topk_contains_best(&g.relevance, &scores, k)
            })
            .count();
        hits as f64 / groups.len() as f64
    }
}

/// Predicted pairwise interference when two workloads are colocated on
/// one device: each side's relative throughput loss versus running alone
/// on half the cores (the colocated solver's split convention).
///
/// This is the operator-facing form of [`measure_pair`]: instead of a
/// unitless friendliness score it answers "tenant A loses X% next to
/// tenant B", which `clara serve` surfaces per registered tenant pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairInterference {
    /// Throughput loss of the first workload, percent of its solo peak.
    pub a_loss_pct: f64,
    /// Throughput loss of the second workload, percent of its solo peak.
    pub b_loss_pct: f64,
}

/// Predicts the colocation interference of a pair of workload profiles.
pub fn pair_interference(
    a: &WorkloadProfile,
    b: &WorkloadProfile,
    cfg: &NicConfig,
    port: &PortConfig,
) -> PairInterference {
    let half = (cfg.cores / 2).max(1);
    let solo_a = solve_perf(a, cfg, port, half);
    let solo_b = solve_perf(b, cfg, port, half);
    let pair = solve_colocated(&[a, b], cfg, &[port, port], &[half, half]);
    let loss = |solo: f64, colocated: f64| {
        ((1.0 - colocated / solo.max(1e-9)) * 100.0).clamp(0.0, 100.0)
    };
    PairInterference {
        a_loss_pct: loss(solo_a.throughput_mpps, pair[0].throughput_mpps),
        b_loss_pct: loss(solo_b.throughput_mpps, pair[1].throughput_mpps),
    }
}

/// Deterministic representative profile of an NF set, for tenant-level
/// colocation predictions: every module is profiled on the same fixed
/// small trace and the heaviest (largest compute volume) profile stands
/// in for the set. Returns `None` for an empty set.
pub fn representative_profile(
    modules: &[&nf_ir::Module],
    cfg: &NicConfig,
) -> Option<WorkloadProfile> {
    use trafgen::{Trace, WorkloadSpec};
    let port = PortConfig::naive();
    let trace = Trace::generate(&WorkloadSpec::large_flows(), 300, 42);
    modules
        .iter()
        .map(|m| nic_sim::profile_workload(m, &trace, &port, cfg, |_| {}))
        .max_by(|a, b| {
            a.compute
                .partial_cmp(&b.compute)
                .expect("profile compute volumes are finite")
        })
}

/// Profiles a pool of synthesized NFs for ranking experiments.
pub fn synth_profiles(n: usize, cfg: &NicConfig, seed: u64) -> Vec<WorkloadProfile> {
    use trafgen::{Trace, WorkloadSpec};
    let modules = nf_synth::synth_corpus(n, true, seed);
    let port = PortConfig::naive();
    modules
        .iter()
        .enumerate()
        .map(|(i, m)| {
            // Vary flow counts and packet sizes so the pool spans the
            // arithmetic-intensity spectrum (cache-resident to DRAM-bound,
            // IO-bound to memory-bound).
            let flows = [32u32, 512, 4096, 16384][i % 4];
            let size = [64u16, 128, 512, 1400][(i / 4) % 4];
            let spec = WorkloadSpec::small_flows()
                .with_flows(flows)
                .with_pkt_size(size);
            let trace = Trace::generate(&spec, 600, seed ^ i as u64);
            nic_sim::profile_workload(m, &trace, &port, cfg, |_| {})
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranker_beats_random_on_held_out_groups() {
        let cfg = NicConfig::default();
        let profiles = synth_profiles(24, &cfg, 1);
        let train = training_groups(&profiles, &cfg, RankObjective::TotalThroughput, 40, 5, 2);
        let test = training_groups(&profiles, &cfg, RankObjective::TotalThroughput, 20, 5, 99);
        let ranker = ColocRanker::train(&train, RankObjective::TotalThroughput);
        let top1 = ranker.topk_accuracy(&test, 1);
        let top3 = ranker.topk_accuracy(&test, 3);
        // Groups of 5 NFs have C(5,2)=10 candidate pairs: random top-1 is
        // 10%, random top-3 is 30%.
        // Random guessing gets 10% top-1 / 30% top-3 on 10-pair groups.
        assert!(top1 > 0.2, "top-1 {top1}");
        assert!(top3 > 0.5, "top-3 {top3}");
        assert!(top3 >= top1);
    }

    #[test]
    fn friendliness_measure_prefers_compute_bound_partner() {
        let cfg = NicConfig::default();
        let port = PortConfig::naive();
        let mut mem_hog = WorkloadProfile {
            pkts: 100,
            compute: 150.0,
            fixed_accesses: [0.0, 2.0, 0.0, 0.0],
            mean_pkt_size: 128.0,
            ..Default::default()
        };
        mem_hog.global_access.insert(nf_ir::GlobalId(0), 10.0);
        mem_hog.working_set.insert(nf_ir::GlobalId(0), 1 << 30);
        let compute_nf = WorkloadProfile {
            pkts: 100,
            compute: 2000.0,
            fixed_accesses: [0.0, 1.0, 0.0, 0.0],
            mean_pkt_size: 128.0,
            ..Default::default()
        };
        let victim = mem_hog.clone();
        let with_hog = measure_pair(
            &victim,
            &mem_hog,
            &cfg,
            &port,
            RankObjective::TotalThroughput,
        );
        let with_friend = measure_pair(
            &victim,
            &compute_nf,
            &cfg,
            &port,
            RankObjective::TotalThroughput,
        );
        assert!(
            with_friend > with_hog,
            "friend {with_friend} vs hog {with_hog}"
        );
    }

    #[test]
    fn objectives_have_names() {
        for o in RankObjective::ALL {
            assert!(!o.name().is_empty());
        }
    }
}
